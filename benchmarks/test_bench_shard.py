"""Benchmark E-shard: scatter-gather serving over row-range shards.

Serves a **webscale-preset-shaped model** (the 100k-user x 2k-item geometry
of ``SPARSE_SCALE_PRESETS["webscale"]``, the scale PR 4's sparse path made
fittable) through a 4-shard :class:`~repro.serve.shard.ShardedQueryEngine`
and gates the serving economics:

* **batched vs row-at-a-time** — batched top-k on the sharded engine must
  beat per-request querying by >= 1.5x throughput (a regression floor for
  the same economics the unsharded engine gates in ``test_bench_serve.py``;
  the measured ratio — typically ~2x — is published as ``shard_speedup``);
* **merge parity** — every gated or recorded case first asserts the sharded
  results are *byte-identical* to the unsharded engine over the merged
  model: scatter-gather is an execution detail, never a semantics change.

The sharded-vs-unsharded wall-clocks are recorded (not gated): scatter adds
thread fan-out that helps on multi-core serving hosts, while on a single
CPU the honest win is the bounded gather working set — per-shard distance
blocks are reduced to ``q x k`` candidates before the merge, so the peak
per-shard block is ``n_shards``-fold smaller than the monolithic ``q x n``
matrix (both figures are published).

The model factors are synthesized at the preset's geometry rather than
re-fitted here: this suite measures *serving*, and the webscale fit already
has its own end-to-end record in ``test_bench_sparse.py``.
"""

import time

import numpy as np
import pytest

from repro.core.result import IntervalDecomposition
from repro.datasets.ratings import SPARSE_SCALE_PRESETS
from repro.interval.array import IntervalMatrix
from repro.serve.query import QueryEngine
from repro.serve.shard import ShardedQueryEngine, ShardPlanner

PRESET = SPARSE_SCALE_PRESETS["webscale"]
N_USERS, N_ITEMS = PRESET.n_users, PRESET.n_items
RANK, TOP_K, N_SHARDS = 16, 10, 4
N_QUERIES = 256
#: Query-row count of the (quadratic-cost) nearest-neighbour parity case:
#: its q x 100k distance matrix is what the scatter bounds per shard.
N_NEIGHBOR_QUERIES = 32

#: Regression floor, not the reproduced number: the measured ratio
#: (``shard_speedup`` in the snapshot) typically lands between ~1.9x and
#: ~2.6x depending on host load and BLAS threading, so a 2.0x gate flakes
#: on 1-core boxes where the true ratio sits right at 2.0.  The floor
#: catches batching *breaking* (ratio collapsing toward 1x); the snapshot
#: trajectory tracks the real value.
MIN_BATCHED_SPEEDUP = 1.5


def _webscale_decomposition() -> IntervalDecomposition:
    """A target-b model at the webscale preset's geometry (synthetic factors)."""
    rng = np.random.default_rng(20240)
    u = rng.normal(size=(N_USERS, RANK))
    sigma_center = np.sort(rng.uniform(1.0, 10.0, size=RANK))[::-1]
    sigma_radius = rng.uniform(0.0, 0.2, size=RANK)
    sigma = IntervalMatrix(np.diag(sigma_center - sigma_radius),
                           np.diag(sigma_center + sigma_radius), check=False)
    v = rng.normal(size=(N_ITEMS, RANK))
    return IntervalDecomposition(u=u, sigma=sigma, v=v, target="b",
                                 method="synthetic-webscale", rank=RANK)


@pytest.fixture(scope="module")
def engines():
    decomposition = _webscale_decomposition()
    unsharded = QueryEngine(decomposition)
    sharded = ShardedQueryEngine(ShardPlanner(N_SHARDS).split(decomposition))
    return unsharded, sharded


@pytest.fixture(scope="module")
def query_rows():
    """Unseen interval user rows (new users folding in at query time)."""
    rng = np.random.default_rng(99)
    midpoints = rng.uniform(1.0, 5.0, size=(N_QUERIES, N_ITEMS))
    radius = rng.uniform(0.0, 0.5, size=midpoints.shape)
    return IntervalMatrix(midpoints - radius, midpoints + radius)


def _best_of(fn, rounds=3):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, value
    return best, result


def _timed_rows(engine, single_rows, rounds=3):
    """Row-at-a-time pass with per-request latencies (best round kept)."""
    best, results, latencies = float("inf"), None, None
    for _ in range(rounds):
        attempt, attempt_latencies = [], []
        start = time.perf_counter()
        for row in single_rows:
            begin = time.perf_counter()
            attempt.append(engine.top_k_items(row, TOP_K))
            attempt_latencies.append(time.perf_counter() - begin)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, results, latencies = elapsed, attempt, attempt_latencies
    return best, results, latencies


def test_bench_shard_batched_topk(benchmark, engines, query_rows):
    """The gate: batched sharded top-k >= 1.5x row-at-a-time (regression
    floor), byte-identical to the unsharded engine."""
    unsharded, sharded = engines
    single_rows = [query_rows.row(i) for i in range(N_QUERIES)]

    unbatched_seconds, unbatched, latencies = _timed_rows(sharded, single_rows)

    batched = benchmark.pedantic(
        lambda: sharded.top_k_items(query_rows, TOP_K), rounds=3, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    reference_seconds, reference = _best_of(
        lambda: unsharded.top_k_items(query_rows, TOP_K))

    # Merge parity: the scatter-gather answers are the unsharded answers,
    # bit for bit — batched and per-request alike.
    np.testing.assert_array_equal(batched.indices, reference.indices)
    np.testing.assert_array_equal(batched.scores, reference.scores)
    for i, result in enumerate(unbatched):
        np.testing.assert_array_equal(result.indices[0], reference.indices[i])
        np.testing.assert_array_equal(result.scores[0], reference.scores[i])

    benchmark.extra_info["shards"] = N_SHARDS
    benchmark.extra_info["model_shape"] = f"{N_USERS}x{N_ITEMS}"
    benchmark.extra_info["queries"] = N_QUERIES
    benchmark.extra_info["sharded_batched_qps"] = round(
        N_QUERIES / batched_seconds, 1)
    benchmark.extra_info["sharded_unbatched_qps"] = round(
        N_QUERIES / unbatched_seconds, 1)
    benchmark.extra_info["shard_speedup"] = round(
        unbatched_seconds / batched_seconds, 2)
    benchmark.extra_info["topk_sharded_ms"] = round(batched_seconds * 1000.0, 2)
    benchmark.extra_info["topk_unsharded_ms"] = round(
        reference_seconds * 1000.0, 2)
    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    benchmark.extra_info["latency_p50_ms"] = round(p50 * 1000.0, 3)
    benchmark.extra_info["latency_p95_ms"] = round(p95 * 1000.0, 3)
    benchmark.extra_info["latency_p99_ms"] = round(p99 * 1000.0, 3)

    assert batched_seconds * MIN_BATCHED_SPEEDUP <= unbatched_seconds, (
        f"sharded batched top-k is only "
        f"{unbatched_seconds / batched_seconds:.2f}x faster than "
        f"row-at-a-time (gate: {MIN_BATCHED_SPEEDUP}x)"
    )


def test_bench_shard_neighbor_merge_parity(benchmark, engines, query_rows):
    """Cross-shard nearest-neighbour merge over 100k stored rows is
    byte-identical to the monolithic engine; wall-clocks recorded."""
    unsharded, sharded = engines
    queries = IntervalMatrix(query_rows.lower[:N_NEIGHBOR_QUERIES],
                             query_rows.upper[:N_NEIGHBOR_QUERIES],
                             check=False)

    sharded_result = benchmark.pedantic(
        lambda: sharded.nearest_neighbors(queries, TOP_K),
        rounds=2, iterations=1)
    sharded_seconds = benchmark.stats.stats.min
    unsharded_seconds, unsharded_result = _best_of(
        lambda: unsharded.nearest_neighbors(queries, TOP_K), rounds=2)

    np.testing.assert_array_equal(sharded_result.indices,
                                  unsharded_result.indices)
    np.testing.assert_array_equal(sharded_result.scores,
                                  unsharded_result.scores)

    benchmark.extra_info["parity_queries"] = N_NEIGHBOR_QUERIES
    benchmark.extra_info["neighbor_sharded_ms"] = round(
        sharded_seconds * 1000.0, 1)
    benchmark.extra_info["neighbor_unsharded_ms"] = round(
        unsharded_seconds * 1000.0, 1)
    # The scatter's memory story: per-shard distance blocks versus the
    # monolithic q x n matrix (8-byte doubles).
    benchmark.extra_info["scatter_block_mb"] = round(
        N_NEIGHBOR_QUERIES * (N_USERS / N_SHARDS) * 8 / 1e6, 1)
    benchmark.extra_info["monolithic_block_mb"] = round(
        N_NEIGHBOR_QUERIES * N_USERS * 8 / 1e6, 1)
