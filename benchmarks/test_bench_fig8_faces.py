"""Benchmark E-fig8: Figure 8 — face reconstruction, NN classification, clustering."""

from repro.experiments import fig8_faces

CONFIG = fig8_faces.Figure8Config(
    n_subjects=15, images_per_subject=8, resolution=20,
    reconstruction_ranks=(10, 40, 80),
    classification_ranks=(10, 20, 40),
    nmf_iterations=60, seed=41,
)


def test_bench_figure8a_reconstruction(benchmark):
    """Regenerates Figure 8(a): reconstruction RMSE of ISVD vs NMF / I-NMF."""
    result = benchmark.pedantic(
        fig8_faces.run_reconstruction,
        kwargs={"config": CONFIG, "methods": ("NMF", "I-NMF", "ISVD0", "ISVD4-b", "ISVD4-c")},
        rounds=1, iterations=1,
    )
    rows = result.as_dict_rows()
    highest_rank = rows[-1]
    benchmark.extra_info["rmse_isvd4b"] = round(highest_rank["ISVD4-b"], 4)
    benchmark.extra_info["rmse_nmf"] = round(highest_rank["NMF"], 4)
    # Paper claim: the SVD-based schemes reconstruct better than NMF / I-NMF.
    assert highest_rank["ISVD4-b"] <= highest_rank["NMF"] * 1.05
    assert highest_rank["ISVD0"] <= highest_rank["I-NMF"] * 1.05
    print()
    print(result.to_text(precision=4))


def test_bench_figure8b_nn_classification(benchmark):
    """Regenerates Figure 8(b): 1-NN classification F1 of the latent features."""
    result = benchmark.pedantic(
        fig8_faces.run_nn_classification,
        kwargs={"config": CONFIG, "methods": ("NMF", "I-NMF", "ISVD1-b", "ISVD2-b", "ISVD4-b")},
        rounds=1, iterations=1,
    )
    rows = result.as_dict_rows()
    low_rank = rows[0]
    benchmark.extra_info["f1_isvd2b_low_rank"] = round(low_rank["ISVD2-b"], 4)
    benchmark.extra_info["f1_nmf_low_rank"] = round(low_rank["NMF"], 4)
    # Paper claim: the alignment-based ISVD schemes beat NMF and I-NMF.
    assert low_rank["ISVD2-b"] >= low_rank["NMF"] - 0.05
    assert low_rank["ISVD1-b"] >= low_rank["I-NMF"] - 0.05
    print()
    print(result.to_text())


def test_bench_figure8c_clustering(benchmark):
    """Regenerates Figure 8(c): clustering NMI of the latent features."""
    result = benchmark.pedantic(
        fig8_faces.run_clustering,
        kwargs={"config": CONFIG, "methods": ("NMF", "ISVD1-b", "ISVD2-b")},
        rounds=1, iterations=1,
    )
    rows = result.as_dict_rows()
    low_rank = rows[0]
    benchmark.extra_info["nmi_isvd2b_low_rank"] = round(low_rank["ISVD2-b"], 4)
    benchmark.extra_info["nmi_nmf_low_rank"] = round(low_rank["NMF"], 4)
    assert low_rank["ISVD2-b"] >= low_rank["NMF"] - 0.1
    print()
    print(result.to_text())
