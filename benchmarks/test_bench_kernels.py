"""Micro-benchmarks of the interval-algebra kernels underlying every experiment.

These are not tied to a specific table/figure; they track the cost of the
interval matrix product (which dominates ISVD2/3/4 and the target-a
reconstruction) and of the full ISVD variants at the paper's default shape, so
performance regressions in the substrate are visible.
"""

import pytest

from repro.core.isvd import isvd
from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix
from repro.interval.linalg import interval_matmul

MATRIX = make_uniform_interval_matrix(SyntheticConfig(shape=(40, 250), rank=20), rng=7)


def test_bench_interval_matmul(benchmark):
    """Interval Gram-matrix product M^T M at the paper's default shape."""
    result = benchmark(interval_matmul, MATRIX.T, MATRIX)
    assert result.shape == (250, 250)


@pytest.mark.parametrize("method", ["isvd0", "isvd1", "isvd2", "isvd3", "isvd4"])
def test_bench_isvd_methods(benchmark, method):
    """End-to-end decomposition cost of each ISVD variant (default configuration)."""
    target = "c" if method == "isvd0" else "b"
    decomposition = benchmark.pedantic(
        isvd, args=(MATRIX, 20), kwargs={"method": method, "target": target},
        rounds=2, iterations=1,
    )
    assert decomposition.rank == 20
