"""Micro-benchmarks of the interval-algebra kernels underlying every experiment.

These are not tied to a specific table/figure; they track the cost of the
interval matrix product (which dominates ISVD2/3/4 and the target-a
reconstruction) and of the full ISVD variants at the paper's default shape, so
performance regressions in the substrate are visible.

The kernel-comparison cases additionally publish (via ``extra_info``, exported
to the CI reproduced-numbers artifact) the wall-clock of each registered
interval-product kernel — the paper-faithful-but-unsound ``endpoint4``, the
sound-and-tight ``exact``, and Rump's sound midpoint-radius ``rump`` — and
assert the headline claim of the kernel subsystem: ``rump`` buys soundness
within ~1.5x of ``endpoint4`` at 512x512, while ``exact`` documents the real
cost of tightness (its mixed x mixed correction is O(n*m*p) elementwise work,
not BLAS).
"""

import time

import pytest

from repro.core.isvd import isvd
from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix
from repro.interval.kernels import available_kernels, get_kernel
from repro.interval.linalg import interval_matmul
from repro.interval.random import random_interval_matrix

MATRIX = make_uniform_interval_matrix(SyntheticConfig(shape=(40, 250), rank=20), rng=7)

#: Mixed-sign dense-interval operand at the comparison shape: every entry is a
#: genuine interval and many straddle zero, the worst case for ``exact``.
COMPARISON_SHAPE = 512
COMPARISON = random_interval_matrix(
    (COMPARISON_SHAPE, COMPARISON_SHAPE),
    interval_density=1.0, interval_intensity=1.0, rng=11,
)

#: Wall-clock budget for ``rump`` relative to ``endpoint4`` (best-of timings).
RUMP_BUDGET = 1.5


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_interval_matmul(benchmark):
    """Interval Gram-matrix product M^T M at the paper's default shape."""
    result = benchmark(interval_matmul, MATRIX.T, MATRIX)
    assert result.shape == (250, 250)


@pytest.mark.parametrize("kernel", sorted(available_kernels()))
def test_bench_kernel_product(benchmark, kernel):
    """One 512x512 interval product per registered kernel, metadata attached."""
    info = get_kernel(kernel)
    result = benchmark.pedantic(
        interval_matmul, args=(COMPARISON, COMPARISON),
        kwargs={"kernel": kernel}, rounds=3, iterations=1,
    )
    assert result.shape == (COMPARISON_SHAPE, COMPARISON_SHAPE)
    benchmark.extra_info["kernel"] = info.key
    benchmark.extra_info["sound"] = info.sound
    benchmark.extra_info["tight"] = info.tight
    benchmark.extra_info["cost_class"] = info.cost


def test_bench_rump_within_budget_of_endpoint4(benchmark):
    """The headline trade: soundness (rump) within ~1.5x of the paper kernel.

    Compared on best-of wall-clocks so scheduler noise cannot fail the run;
    both numbers and their ratio land in the reproduced-numbers artifact.
    ``exact`` is timed alongside for the record but has no budget — tightness
    is allowed to cost whatever it costs.
    """
    seconds = {
        kernel: _best_of(lambda k=kernel: interval_matmul(COMPARISON, COMPARISON, kernel=k))
        for kernel in available_kernels()
    }
    benchmark.extra_info.update(
        {f"{kernel}_ms": round(value * 1000.0, 3) for kernel, value in seconds.items()}
    )
    ratio = seconds["rump"] / seconds["endpoint4"]
    benchmark.extra_info["rump_over_endpoint4"] = round(ratio, 3)
    benchmark.extra_info["exact_over_endpoint4"] = round(
        seconds["exact"] / seconds["endpoint4"], 3)
    # Keep one measured round in the benchmark table itself.
    benchmark.pedantic(
        interval_matmul, args=(COMPARISON, COMPARISON), kwargs={"kernel": "rump"},
        rounds=1, iterations=1,
    )
    assert ratio <= RUMP_BUDGET, (
        f"rump took {ratio:.2f}x endpoint4 wall-clock (budget {RUMP_BUDGET}x)"
    )


@pytest.mark.parametrize("kernel", ["endpoint4", "rump"])
def test_bench_isvd4_per_kernel(benchmark, kernel):
    """End-to-end ISVD4 cost under each production-viable kernel choice."""
    decomposition = benchmark.pedantic(
        isvd, args=(MATRIX, 20), kwargs={"target": "b", "kernel": kernel},
        rounds=2, iterations=1,
    )
    assert decomposition.rank == 20
    benchmark.extra_info["kernel"] = kernel


@pytest.mark.parametrize("method", ["isvd0", "isvd1", "isvd2", "isvd3", "isvd4"])
def test_bench_isvd_methods(benchmark, method):
    """End-to-end decomposition cost of each ISVD variant (default configuration)."""
    target = "c" if method == "isvd0" else "b"
    decomposition = benchmark.pedantic(
        isvd, args=(MATRIX, 20), kwargs={"method": method, "target": target},
        rounds=2, iterations=1,
    )
    assert decomposition.rank == 20
