"""Ablation bench: greedy (stable-matching) vs Hungarian (optimal) ILSA assignment.

DESIGN.md calls out the alignment-assignment algorithm as a design choice: the
paper formulates both a stable-matching variant (Problem 1, O(r^2)) and an
optimal linear-assignment variant (Problem 2, O(r^3)).  This bench measures
both the runtime of each variant on the ILSA step in isolation and the effect
on end-to-end decomposition accuracy.
"""

import numpy as np
import pytest

from repro.core.accuracy import harmonic_mean_accuracy
from repro.core.ilsa import ilsa
from repro.core.isvd import isvd, truncated_svd
from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix

CONFIG = SyntheticConfig(shape=(60, 150), rank=40)
MATRIX = make_uniform_interval_matrix(CONFIG, rng=97)
V_LOWER = truncated_svd(MATRIX.lower, CONFIG.rank)[2]
V_UPPER = truncated_svd(MATRIX.upper, CONFIG.rank)[2]


@pytest.mark.parametrize("method", ["greedy", "hungarian"])
def test_bench_ilsa_assignment_runtime(benchmark, method):
    """Times one ILSA assignment and records its objective value."""
    result = benchmark(ilsa, V_LOWER, V_UPPER, method)
    benchmark.extra_info["total_similarity"] = round(result.total_similarity, 4)
    assert result.is_permutation()


@pytest.mark.parametrize("method", ["greedy", "hungarian"])
def test_bench_ilsa_assignment_end_to_end(benchmark, method):
    """Effect of the assignment variant on ISVD4-b accuracy."""
    def run():
        decomposition = isvd(MATRIX, CONFIG.rank, method="isvd4", target="b",
                             align_method=method)
        return harmonic_mean_accuracy(MATRIX, decomposition)

    score = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["h_mean"] = round(score, 4)
    assert 0.0 <= score <= 1.0
