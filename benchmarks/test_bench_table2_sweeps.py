"""Benchmark E-tab2: Tables 2(a)-(e) — option-b accuracy under parameter sweeps."""

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import table2_sweeps

CONFIG = table2_sweeps.Table2Config(
    base=SyntheticConfig(shape=(40, 120), rank=20), trials=2, seed=23
)

_SUBTABLES = {
    "a": ("interval density", table2_sweeps.run_interval_density),
    "b": ("interval intensity", table2_sweeps.run_interval_intensity),
    "c": ("matrix density", table2_sweeps.run_matrix_density),
    "d": ("matrix configuration", table2_sweeps.run_matrix_configuration),
    "e": ("target rank", table2_sweeps.run_target_rank),
}


@pytest.mark.parametrize("key", list(_SUBTABLES))
def test_bench_table2(benchmark, key):
    """Regenerates one Table 2 sub-table and records the ISVD4-b column."""
    name, runner = _SUBTABLES[key]
    result = benchmark.pedantic(runner, args=(CONFIG,), rounds=1, iterations=1)
    rows = result.as_dict_rows()
    for row in rows:
        label = str(row[result.headers[0]])
        benchmark.extra_info[f"ISVD4-b@{label}"] = round(row["ISVD4-b"], 4)
        # Paper claim (Table 2): ISVD4-b provides the best accuracy of the
        # option-b family in (essentially) every configuration.
        family_best = max(row[column] for column in
                          ("ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"))
        assert row["ISVD4-b"] >= family_best - 0.02, f"{name}: {label}"
    print()
    print(result.to_text())
