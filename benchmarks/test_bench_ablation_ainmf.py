"""Ablation bench: does ILSA alignment help the NMF-family factorization (AI-NMF)?

The paper applies its alignment idea to SVD (ISVD1-4) and PMF (AI-PMF); AI-NMF
is the analogous extension for the I-NMF baseline (see ``repro.core.inmf``).
This bench compares I-NMF and AI-NMF on the face workload, recording both the
reconstruction RMSE and the min/max latent-factor similarity the alignment is
designed to improve.
"""

import numpy as np
import pytest

from repro.core.ilsa import matched_cosines
from repro.core.inmf import AINMF, INMF
from repro.datasets.faces import make_face_dataset
from repro.eval.metrics import rmse_score

DATASET = make_face_dataset(n_subjects=10, images_per_subject=6, resolution=16, seed=5)
RANK = 15
ITERATIONS = 80

MODELS = {
    "inmf": lambda: INMF(rank=RANK, max_iter=ITERATIONS, seed=5),
    "ainmf": lambda: AINMF(rank=RANK, max_iter=ITERATIONS, align_every=10, seed=5),
}


@pytest.mark.parametrize("name", list(MODELS))
def test_bench_ainmf_vs_inmf(benchmark, name):
    """Fit time, reconstruction RMSE, and latent min/max similarity of each variant."""
    def run():
        model = MODELS[name]()
        model.fit(DATASET.intervals.clip_nonnegative())
        return model

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    reconstruction = model.reconstruct().midpoint()
    benchmark.extra_info["rmse"] = round(rmse_score(DATASET.images, reconstruction), 4)
    similarity = float(np.abs(matched_cosines(model.v_lower, model.v_upper)).mean())
    benchmark.extra_info["latent_min_max_cos"] = round(similarity, 4)
    assert reconstruction.shape == DATASET.images.shape
