"""Benchmark E-engine: the parallel, cached experiment engine.

Runs a Figure-6-sized grid (the paper's default synthetic configuration,
every ISVD variant under every target plus the LP competitor) through
:class:`~repro.experiments.engine.ExperimentEngine` and demonstrates the two
engine properties the refactor exists for:

* a **warm-cache rerun** of the same grid completes measurably faster than
  the cold run (every cell is served from the on-disk NPZ cache);
* a **parallel run** produces records identical to the serial run (per-cell
  seed derivation), so the speed knobs never change the science.
"""

import time

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_trials
from repro.experiments.engine import ExperimentEngine, records_to_json
from repro.experiments.runner import isvd_grid

#: The Figure 6 default workload: 40 x 250 matrices, rank 20, all targets + LP.
CONFIG = SyntheticConfig()
TRIALS = 3
SEED = 11
SPECS = isvd_grid(targets=("a", "b", "c"), include_lp=True)


@pytest.fixture(scope="module")
def matrices():
    return list(generate_trials(CONFIG, trials=TRIALS, seed=SEED))


def test_bench_engine_cache_warm_vs_cold(benchmark, matrices, tmp_path):
    """Warm-cache rerun of a Figure-6-sized grid is measurably faster than cold."""
    engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")

    start = time.perf_counter()
    cold = engine.evaluate_grid(matrices, SPECS, CONFIG.rank, experiment="bench_engine")
    cold_seconds = time.perf_counter() - start

    def warm_run():
        return engine.evaluate_grid(matrices, SPECS, CONFIG.rank, experiment="bench_engine")

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    benchmark.extra_info["cells"] = len(cold.records)
    benchmark.extra_info["cold_s"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_s"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(cold_seconds / max(warm_seconds, 1e-9), 2)

    assert cold.cache_hits() == 0
    assert warm.cache_hits() == len(warm.records)
    # "Measurably faster": the warm run must beat the cold run outright; in
    # practice it is ~5-10x faster since only cache loads and scoring remain.
    assert warm_seconds < cold_seconds
    # The cache must not change any score.
    assert records_to_json(warm.records) == records_to_json(cold.records)


def test_bench_engine_parallel_matches_serial(benchmark, matrices):
    """Parallel fan-out reproduces the serial records exactly."""
    serial = ExperimentEngine(jobs=1).evaluate_grid(
        matrices, SPECS, CONFIG.rank, experiment="bench_engine")

    def parallel_run():
        return ExperimentEngine(jobs=4).evaluate_grid(
            matrices, SPECS, CONFIG.rank, experiment="bench_engine")

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = len(parallel.records)
    assert records_to_json(parallel.records) == records_to_json(serial.records)
