"""Benchmark E-fig5: Figure 5 — factor similarity before/after ISVD4's V recomputation."""

import numpy as np

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import alignment

CONFIG = alignment.AlignmentConfig(
    synthetic=SyntheticConfig(shape=(40, 120), rank=20), trials=2, seed=7
)


def test_bench_figure5_recomputation(benchmark):
    """Regenerates Figure 5 and records the mean V |cos| before/after recomputation."""
    result = benchmark.pedantic(alignment.run_figure5, args=(CONFIG,), rounds=1, iterations=1)
    v_before = np.array(result.column("V |cos| before"), dtype=float)
    v_after = np.array(result.column("V |cos| after"), dtype=float)
    u_before = np.array(result.column("U |cos| before"), dtype=float)
    benchmark.extra_info["mean_v_cos_before"] = round(float(v_before.mean()), 4)
    benchmark.extra_info["mean_v_cos_after"] = round(float(v_after.mean()), 4)
    benchmark.extra_info["mean_u_cos_before"] = round(float(u_before.mean()), 4)
    # Paper claims (Section 4.5): U is already well aligned before recomputation,
    # and recomputing V makes the V factors more similar.
    assert v_after.mean() >= v_before.mean() - 0.05
    print()
    print(result.to_text())
