"""Benchmark-suite configuration.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index) on a reduced workload, so the whole suite
stays laptop-scale.  The benchmark *timings* measure the experiment harness;
the benchmark *extra_info* carries the reproduced numbers (H-means, RMSEs,
F1/NMI scores) so `pytest benchmarks/ --benchmark-only` doubles as the
reproduction run.  Scale the configs up (trials, ranks, dataset sizes) to
approach the paper's settings.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
