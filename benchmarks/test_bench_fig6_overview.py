"""Benchmark E-fig6: Figure 6 — accuracy overview and timing breakdown."""

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import fig6_overview

CONFIG = fig6_overview.Figure6Config(
    synthetic=SyntheticConfig(shape=(40, 120), rank=20), trials=2,
    include_lp=True, targets=("a", "b", "c"),
)


def test_bench_figure6a_accuracy(benchmark):
    """Regenerates Figure 6(a): H-mean accuracy of all method/target combinations."""
    result = benchmark.pedantic(fig6_overview.run_accuracy, args=(CONFIG,),
                                rounds=1, iterations=1)
    scores = {row["method"]: row["H-mean"] for row in result.as_dict_rows()}
    for label in ("ISVD0", "ISVD4-b", "ISVD1-b", "LP-b"):
        benchmark.extra_info[label] = round(scores[label], 4)
    # Paper shape: the option-b family dominates, ISVD4-b is at (or tied for) the
    # top of it, and the LP competitor never wins.
    best_b = max(scores[f"ISVD{i}-b"] for i in (1, 2, 3, 4))
    assert scores["ISVD4-b"] >= best_b - 0.01
    assert scores["ISVD4-b"] >= scores["ISVD0"] - 0.02
    assert scores["LP-b"] <= scores["ISVD4-b"]
    print()
    print(result.to_text())


def test_bench_figure6b_timing(benchmark):
    """Regenerates Figure 6(b): execution time broken down by phase."""
    result = benchmark.pedantic(fig6_overview.run_timings, args=(CONFIG,),
                                rounds=1, iterations=1)
    rows = result.as_dict_rows()
    for row in rows:
        benchmark.extra_info[f"{row['method']}_total_s"] = round(row["total"], 5)
        # Alignment is a small fraction of total cost, as the paper reports.
        if row["method"] != "ISVD0":
            assert row["alignment"] <= max(row["total"], 1e-9)
    print()
    print(result.to_text(precision=5))
