"""Benchmark E-fig7: Figure 7 — reconstruction accuracy on anonymized data."""

import pytest

from repro.experiments import fig7_anonymized

CONFIG = fig7_anonymized.Figure7Config(
    shape=(40, 100), trials=2, rank_fractions=(1.0, 0.5, 0.05), seed=31
)


@pytest.mark.parametrize("profile", ["high", "medium", "low"])
def test_bench_figure7(benchmark, profile):
    """Regenerates one privacy level of Figure 7 and checks the paper's ordering."""
    result = benchmark.pedantic(
        fig7_anonymized.run_profile, args=(profile, CONFIG), rounds=1, iterations=1
    )
    rows = {row["method"]: row for row in result.as_dict_rows()}
    full_rank_column = f"{1.0:.0%} rank H-mean"
    benchmark.extra_info["ISVD4-b_full_rank"] = round(rows["ISVD4-b"][full_rank_column], 4)
    benchmark.extra_info["ISVD0_full_rank"] = round(rows["ISVD0"][full_rank_column], 4)
    # Paper shape for anonymized data: option-b methods (with early alignment,
    # ISVD3/4) give the best full-rank accuracy.
    option_b_best = max(rows[f"ISVD{i}-b"][full_rank_column] for i in (1, 2, 3, 4))
    option_a_best = max(rows[f"ISVD{i}-a"][full_rank_column] for i in (1, 2, 3, 4))
    assert option_b_best >= option_a_best - 0.02
    assert rows["ISVD4-b"][full_rank_column] >= rows["ISVD1-b"][full_rank_column] - 0.02
    print()
    print(result.to_text())
