"""Benchmark E-serve: batched query throughput of the serving subsystem.

Serves a collaborative-filtering model (ISVD4 on a per-rating interval
matrix, the Figure 10 workload) through the :class:`~repro.serve.query.QueryEngine`
and measures queries/second for the same set of single-row top-k queries

* **row-at-a-time** — one engine call per query row (what a naive server
  does per request), versus
* **batched** — all rows stacked into one call (what the micro-batcher
  turns concurrent requests into).

The batched path must win by at least 2x; the engine's batch-size-invariant
kernels guarantee the answers are identical, which is asserted, not assumed.
"""

import time

import numpy as np
import pytest

from repro.core import registry
from repro.datasets.ratings import make_ratings_dataset, rating_interval_matrix
from repro.interval.array import IntervalMatrix
from repro.serve.batching import MicroBatcher
from repro.serve.query import QueryEngine

N_USERS, N_ITEMS, RANK, TOP_K = 200, 400, 8, 10
N_QUERIES = 256


@pytest.fixture(scope="module")
def engine():
    dataset = make_ratings_dataset(preset=None, n_users=N_USERS, n_items=N_ITEMS,
                                   n_categories=12, density=0.25, seed=17)
    matrix = rating_interval_matrix(dataset, alpha=0.5)
    decomposition = registry.get("isvd4").fit(matrix, RANK, target="b")
    return QueryEngine(decomposition)


@pytest.fixture(scope="module")
def query_rows():
    """Unseen interval user rows (new users folding in at query time)."""
    rng = np.random.default_rng(99)
    midpoints = rng.uniform(1.0, 5.0, size=(N_QUERIES, N_ITEMS))
    radius = rng.uniform(0.0, 0.5, size=midpoints.shape)
    return IntervalMatrix(midpoints - radius, midpoints + radius)


def test_bench_serve_batched_topk_vs_row_at_a_time(benchmark, engine, query_rows):
    """One stacked top-k call beats per-row calls by >= 2x throughput."""
    single_rows = [query_rows.row(i) for i in range(N_QUERIES)]

    # Best-of-3 on both sides: the assertion below is a throughput *floor*
    # enforced in CI, so one scheduler blip in a single timing pass must not
    # fail the build.  Measured headroom is ~5x against the 2x floor.
    unbatched_seconds = float("inf")
    unbatched, latencies = None, None
    for _ in range(3):
        attempt, attempt_latencies = [], []
        start = time.perf_counter()
        for row in single_rows:
            begin = time.perf_counter()
            attempt.append(engine.top_k_items(row, TOP_K))
            attempt_latencies.append(time.perf_counter() - begin)
        elapsed = time.perf_counter() - start
        if elapsed < unbatched_seconds:
            unbatched_seconds, unbatched = elapsed, attempt
            latencies = attempt_latencies

    def batched_run():
        return engine.top_k_items(query_rows, TOP_K)

    batched = benchmark.pedantic(batched_run, rounds=3, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    benchmark.extra_info["queries"] = N_QUERIES
    benchmark.extra_info["unbatched_qps"] = round(N_QUERIES / unbatched_seconds, 1)
    benchmark.extra_info["batched_qps"] = round(N_QUERIES / batched_seconds, 1)
    benchmark.extra_info["speedup"] = round(unbatched_seconds / batched_seconds, 2)
    # Tail behaviour of the per-request path (what a client actually sees).
    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    benchmark.extra_info["latency_p50_ms"] = round(p50 * 1000.0, 3)
    benchmark.extra_info["latency_p95_ms"] = round(p95 * 1000.0, 3)
    benchmark.extra_info["latency_p99_ms"] = round(p99 * 1000.0, 3)

    # The batching knob must never change the science: identical answers.
    for i, result in enumerate(unbatched):
        np.testing.assert_array_equal(result.indices[0], batched.indices[i])
        np.testing.assert_array_equal(result.scores[0], batched.scores[i])

    assert batched_seconds * 2 <= unbatched_seconds, (
        f"batched top-k is only {unbatched_seconds / batched_seconds:.2f}x faster"
    )


def test_bench_serve_microbatcher_throughput(benchmark, engine, query_rows):
    """Micro-batched concurrent submissions match direct calls exactly."""
    import threading

    direct = engine.top_k_items(query_rows, TOP_K)

    def run_batch(requests):
        stacked = IntervalMatrix(
            np.vstack([rows.lower for rows in requests]),
            np.vstack([rows.upper for rows in requests]),
            check=False,
        )
        result = engine.top_k_items(stacked, TOP_K)
        return [(result.indices[i], result.scores[i]) for i in range(len(requests))]

    def concurrent_run():
        batcher = MicroBatcher(run_batch, max_batch=32, max_delay=0.002)
        results = [None] * N_QUERIES
        n_workers = 8
        per_worker = N_QUERIES // n_workers

        def worker(offset):
            for i in range(offset, offset + per_worker):
                results[i] = batcher.submit(query_rows.row(i))

        threads = [threading.Thread(target=worker, args=(w * per_worker,))
                   for w in range(n_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return batcher, results

    batcher, results = benchmark.pedantic(concurrent_run, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean

    benchmark.extra_info["queries"] = N_QUERIES
    benchmark.extra_info["qps"] = round(N_QUERIES / seconds, 1)
    benchmark.extra_info["blas_calls"] = batcher.batches_run
    benchmark.extra_info["mean_batch"] = round(N_QUERIES / batcher.batches_run, 1)

    # Stacking concurrent queries saved BLAS calls without changing answers.
    assert batcher.batches_run < N_QUERIES
    for i, (indices, scores) in enumerate(results):
        np.testing.assert_array_equal(indices, direct.indices[i])
        np.testing.assert_array_equal(scores, direct.scores[i])
