"""Benchmark E-fig10: Figure 10 — collaborative filtering with PMF / I-PMF / AI-PMF."""

import numpy as np

from repro.experiments import fig10_cf

CONFIG = fig10_cf.Figure10Config(
    n_users=150, n_items=300, n_categories=19, density=0.15,
    ranks=(10, 40, 80), epochs=25, seed=71,
)


def test_bench_figure10_collaborative_filtering(benchmark):
    """Regenerates Figure 10 and checks the AI-PMF vs I-PMF / PMF relationships."""
    result = benchmark.pedantic(fig10_cf.run, args=(CONFIG,), rounds=1, iterations=1)
    rows = result.as_dict_rows()
    for row in rows:
        benchmark.extra_info[f"rank{row['rank']}_PMF"] = round(row["PMF"], 4)
        benchmark.extra_info[f"rank{row['rank']}_AI-PMF"] = round(row["AI-PMF"], 4)
    # Paper claims: the interval-aware models beat plain PMF at the higher ranks,
    # and AI-PMF tracks or beats I-PMF on average.
    highest = rows[-1]
    assert highest["AI-PMF"] <= highest["PMF"] + 0.02
    mean_ipmf = np.mean([row["I-PMF"] for row in rows])
    mean_aipmf = np.mean([row["AI-PMF"] for row in rows])
    assert mean_aipmf <= mean_ipmf + 0.05
    print()
    print(result.to_text())
