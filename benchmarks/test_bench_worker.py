"""Benchmark E-worker: multi-process shard workers vs in-process threads.

Serves the same webscale-preset-shaped model as ``test_bench_shard.py``
(100k users x 2k items, rank 16, 4 row-range shards), but through the
:class:`~repro.serve.worker.WorkerShardedQueryEngine` — one worker
*process* per shard, npy frames over localhost sockets — and compares it
against the in-process thread-scatter :class:`ShardedQueryEngine`:

* **byte parity, always** — every benchmarked query's worker answers are
  asserted byte-identical to the unsharded :class:`QueryEngine`; the
  process boundary and the wire are execution details, never semantics;
* **throughput gate, on real multicore only** — worker-process batched
  top-k must beat the thread scatter by >= 1.5x *when at least 4 usable
  cores exist*.  Threads time-slice one GIL for everything outside BLAS;
  processes do not.  On a 1-core container the processes time-slice too
  and pay the wire on top, so the gate arms only when the parallelism it
  measures is physically available (both figures are always recorded).

Per-request latency percentiles (p50/p95/p99) of the worker path are
recorded for the serving snapshot.
"""

import tempfile
import time

import numpy as np
import pytest

from repro.core.result import IntervalDecomposition
from repro.datasets.ratings import SPARSE_SCALE_PRESETS
from repro.interval.array import IntervalMatrix
from repro.serve.query import QueryEngine
from repro.serve.shard import (
    ShardedModelStore,
    ShardedQueryEngine,
    ShardPlanner,
    usable_cpu_count,
)
from repro.serve.worker import WorkerShardedQueryEngine

PRESET = SPARSE_SCALE_PRESETS["webscale"]
N_USERS, N_ITEMS = PRESET.n_users, PRESET.n_items
RANK, TOP_K, N_SHARDS = 16, 10, 4
N_QUERIES = 256
#: Row-at-a-time requests in the latency-percentile pass (each pays a full
#: fold-in + socket round-trip, so a smaller count keeps the pass honest
#: without dominating the suite).
N_LATENCY_QUERIES = 128

#: Gate: worker processes over thread scatter, armed on >= 4 usable cores.
MIN_WORKER_SPEEDUP = 1.5
GATE_CORES = 4


def _webscale_decomposition() -> IntervalDecomposition:
    """Same synthetic target-b geometry as ``test_bench_shard.py``."""
    rng = np.random.default_rng(20240)
    u = rng.normal(size=(N_USERS, RANK))
    sigma_center = np.sort(rng.uniform(1.0, 10.0, size=RANK))[::-1]
    sigma_radius = rng.uniform(0.0, 0.2, size=RANK)
    sigma = IntervalMatrix(np.diag(sigma_center - sigma_radius),
                           np.diag(sigma_center + sigma_radius), check=False)
    v = rng.normal(size=(N_ITEMS, RANK))
    return IntervalDecomposition(u=u, sigma=sigma, v=v, target="b",
                                 method="synthetic-webscale", rank=RANK)


@pytest.fixture(scope="module")
def engines():
    decomposition = _webscale_decomposition()
    unsharded = QueryEngine(decomposition)
    threaded = ShardedQueryEngine(ShardPlanner(N_SHARDS).split(decomposition))
    with tempfile.TemporaryDirectory() as directory:
        store = ShardedModelStore(directory)
        store.save_sharded("bench", decomposition, N_SHARDS)
        workers = WorkerShardedQueryEngine(store, "bench")
        try:
            yield unsharded, threaded, workers
        finally:
            workers.close()
            threaded.close()


@pytest.fixture(scope="module")
def query_rows():
    rng = np.random.default_rng(99)
    midpoints = rng.uniform(1.0, 5.0, size=(N_QUERIES, N_ITEMS))
    radius = rng.uniform(0.0, 0.5, size=midpoints.shape)
    return IntervalMatrix(midpoints - radius, midpoints + radius)


def _best_of(fn, rounds=3):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, value
    return best, result


def test_bench_worker_batched_topk(benchmark, engines, query_rows):
    """Worker-process batched top-k vs the in-process thread scatter;
    byte parity asserted on every benchmarked query."""
    unsharded, threaded, workers = engines

    worker_result = benchmark.pedantic(
        lambda: workers.top_k_items(query_rows, TOP_K), rounds=3, iterations=1)
    worker_seconds = benchmark.stats.stats.min

    threads_seconds, threads_result = _best_of(
        lambda: threaded.top_k_items(query_rows, TOP_K))
    reference = unsharded.top_k_items(query_rows, TOP_K)

    # Parity first: whatever the clocks say, the answers must be the
    # unsharded engine's answers, bit for bit, from both backends.
    np.testing.assert_array_equal(worker_result.indices, reference.indices)
    np.testing.assert_array_equal(worker_result.scores, reference.scores)
    np.testing.assert_array_equal(threads_result.indices, reference.indices)
    np.testing.assert_array_equal(threads_result.scores, reference.scores)

    cores = usable_cpu_count()
    gate_active = cores >= GATE_CORES
    benchmark.extra_info["shards"] = N_SHARDS
    benchmark.extra_info["model_shape"] = f"{N_USERS}x{N_ITEMS}"
    benchmark.extra_info["queries"] = N_QUERIES
    benchmark.extra_info["usable_cores"] = cores
    benchmark.extra_info["gate_active"] = gate_active
    benchmark.extra_info["worker_batched_qps"] = round(
        N_QUERIES / worker_seconds, 1)
    benchmark.extra_info["threads_batched_qps"] = round(
        N_QUERIES / threads_seconds, 1)
    benchmark.extra_info["worker_over_threads"] = round(
        threads_seconds / worker_seconds, 2)

    if gate_active:
        assert worker_seconds * MIN_WORKER_SPEEDUP <= threads_seconds, (
            f"worker-process top-k is only "
            f"{threads_seconds / worker_seconds:.2f}x the thread scatter "
            f"on {cores} cores (gate: {MIN_WORKER_SPEEDUP}x)"
        )


def test_bench_worker_request_latency(benchmark, engines, query_rows):
    """Per-request latency percentiles of the worker path (row-at-a-time,
    each request a fold-in plus socket round-trips); parity per row."""
    unsharded, _, workers = engines
    single_rows = [query_rows.row(i) for i in range(N_LATENCY_QUERIES)]
    reference = unsharded.top_k_items(
        IntervalMatrix(query_rows.lower[:N_LATENCY_QUERIES],
                       query_rows.upper[:N_LATENCY_QUERIES], check=False),
        TOP_K)

    def row_pass():
        results, latencies = [], []
        for row in single_rows:
            begin = time.perf_counter()
            results.append(workers.top_k_items(row, TOP_K))
            latencies.append(time.perf_counter() - begin)
        return results, latencies

    results, latencies = benchmark.pedantic(row_pass, rounds=2, iterations=1)
    for i, result in enumerate(results):
        np.testing.assert_array_equal(result.indices[0], reference.indices[i])
        np.testing.assert_array_equal(result.scores[0], reference.scores[i])

    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    benchmark.extra_info["latency_queries"] = N_LATENCY_QUERIES
    benchmark.extra_info["latency_p50_ms"] = round(p50 * 1000.0, 3)
    benchmark.extra_info["latency_p95_ms"] = round(p95 * 1000.0, 3)
    benchmark.extra_info["latency_p99_ms"] = round(p99 * 1000.0, 3)
    benchmark.extra_info["worker_row_qps"] = round(
        N_LATENCY_QUERIES / sum(latencies), 1)
