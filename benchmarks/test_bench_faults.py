"""Benchmark F-faults: the price of failure on the worker serving path.

The fault-tolerance layer turns three failure modes into bounded,
measurable costs, and this suite puts numbers on each one (the ``faults``
section of the perf snapshot):

* ``restart_recovery_ms`` — a SIGKILLed worker's shard answering again:
  detection + respawn + handshake + the retried request, end to end;
* ``stall_p99_ms`` — p99 request latency while a fault makes every
  worker's second request stall for 5s: the call timeout must convert
  those stalls into sub-second retries (gate: p99 far below the stall);
* ``breaker_open_fail_fast_ms`` — a request against an open circuit
  breaker: failing fast is the whole point, so it must cost about a
  millisecond, not a respawn attempt (gate: < 250ms even on noisy CI).

The model is deliberately small — these clocks measure the resilience
machinery, not BLAS.
"""

import tempfile
import time

import numpy as np
import pytest

from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.serve.query import QueryEngine
from repro.serve.resilience import RetryPolicy
from repro.serve.shard import ShardedModelStore
from repro.serve.worker import ShardUnavailableError, WorkerShardedQueryEngine

N_USERS, N_ITEMS, RANK, N_SHARDS, TOP_K = 6000, 200, 8, 3, 5

#: Stall scenario: the injected stall vs the call timeout that defuses it.
STALL_SECONDS = 5.0
CALL_TIMEOUT = 0.3
N_STALL_QUERIES = 16

FAST_RETRY = RetryPolicy(attempts=3, backoff=0.02, max_backoff=0.1,
                         jitter=0.0)


def _decomposition() -> IntervalDecomposition:
    rng = np.random.default_rng(4242)
    u = rng.normal(size=(N_USERS, RANK))
    sigma_center = np.sort(rng.uniform(1.0, 10.0, size=RANK))[::-1]
    sigma_radius = rng.uniform(0.0, 0.2, size=RANK)
    sigma = IntervalMatrix(np.diag(sigma_center - sigma_radius),
                           np.diag(sigma_center + sigma_radius), check=False)
    v = rng.normal(size=(N_ITEMS, RANK))
    return IntervalDecomposition(u=u, sigma=sigma, v=v, target="b",
                                 method="synthetic-faults", rank=RANK)


@pytest.fixture(scope="module")
def model_store():
    decomposition = _decomposition()
    with tempfile.TemporaryDirectory() as directory:
        store = ShardedModelStore(directory)
        store.save_sharded("bench", decomposition, N_SHARDS)
        yield store, decomposition


@pytest.fixture(scope="module")
def query_rows():
    rng = np.random.default_rng(7)
    midpoints = rng.uniform(1.0, 5.0, size=(8, N_ITEMS))
    radius = rng.uniform(0.0, 0.3, size=midpoints.shape)
    return IntervalMatrix(midpoints - radius, midpoints + radius)


def test_bench_restart_recovery(benchmark, model_store, query_rows):
    """Kill a worker, then clock the next query: detection, respawn,
    handshake and the retried request — with byte parity at the end."""
    store, decomposition = model_store
    reference = QueryEngine(decomposition).top_k_items(query_rows, TOP_K)
    engine = WorkerShardedQueryEngine(store, "bench", retry=FAST_RETRY,
                                      breaker_threshold=1000,
                                      monitor_interval=60.0)
    try:
        import os
        import signal

        def kill_then_query():
            victim = engine.supervisor._handles[1]
            os.kill(victim.pid, signal.SIGKILL)
            while victim.process.poll() is None:
                time.sleep(0.002)
            begin = time.perf_counter()
            result = engine.top_k_items(query_rows, TOP_K)
            elapsed = time.perf_counter() - begin
            return result, elapsed

        recoveries = []
        (result, elapsed) = benchmark.pedantic(kill_then_query,
                                               rounds=3, iterations=1)
        recoveries.append(elapsed)
        np.testing.assert_array_equal(result.indices, reference.indices)
        np.testing.assert_array_equal(result.scores, reference.scores)

        benchmark.extra_info["model_shape"] = f"{N_USERS}x{N_ITEMS}"
        benchmark.extra_info["shards"] = N_SHARDS
        benchmark.extra_info["restart_recovery_ms"] = round(
            min(recoveries) * 1000.0, 2)
    finally:
        engine.close()


def test_bench_stall_p99(benchmark, model_store, query_rows):
    """p99 latency while every worker's second request stalls 5s: the call
    timeout must keep the tail far below the stall it absorbs."""
    store, decomposition = model_store
    single = query_rows.row(0)
    reference = QueryEngine(decomposition).top_k_items(single, TOP_K)
    engine = WorkerShardedQueryEngine(
        store, "bench", call_timeout=CALL_TIMEOUT, retry=FAST_RETRY,
        breaker_threshold=1000, monitor_interval=60.0,
        faults=(f"before_reply=stall(seconds={STALL_SECONDS},"
                "op=top_k_items,after=1)"))
    try:
        def stall_pass():
            latencies = []
            for _ in range(N_STALL_QUERIES):
                begin = time.perf_counter()
                result = engine.top_k_items(single, TOP_K)
                latencies.append(time.perf_counter() - begin)
                np.testing.assert_array_equal(result.indices,
                                              reference.indices)
            return latencies

        latencies = benchmark.pedantic(stall_pass, rounds=1, iterations=1)
        p50, p99 = np.percentile(latencies, [50, 99])
        benchmark.extra_info["stall_queries"] = N_STALL_QUERIES
        benchmark.extra_info["stall_seconds"] = STALL_SECONDS
        benchmark.extra_info["call_timeout_s"] = CALL_TIMEOUT
        benchmark.extra_info["stall_p50_ms"] = round(p50 * 1000.0, 2)
        benchmark.extra_info["stall_p99_ms"] = round(p99 * 1000.0, 2)
        # The gate: a 5s stall must never cost 5s — the timeout plus one
        # respawned retry bounds the tail.
        assert p99 < STALL_SECONDS, (
            f"stalled requests reached p99={p99 * 1000:.0f}ms; the "
            f"{CALL_TIMEOUT}s call timeout is not cutting the 5s stall")
    finally:
        engine.close()


def test_bench_breaker_fail_fast(benchmark, model_store, query_rows):
    """A request against an open breaker: no respawn, no socket, just a
    prompt ShardUnavailableError with a retry hint."""
    store, _ = model_store
    engine = WorkerShardedQueryEngine(
        store, "bench", retry=FAST_RETRY, degraded="fail",
        breaker_threshold=2, breaker_window=60.0, breaker_cooldown=600.0,
        monitor_interval=60.0,
        faults="before_reply=crash(op=candidates,shard=0)")
    try:
        # Trip shard 0's breaker with two genuinely failing gathers.
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                engine.nearest_neighbors(query_rows, 3)
        assert engine.supervisor.breaker_state(0) == "open"

        def fail_fast():
            begin = time.perf_counter()
            with pytest.raises(ShardUnavailableError) as exc_info:
                engine.nearest_neighbors(query_rows, 3)
            elapsed = time.perf_counter() - begin
            assert exc_info.value.retry_after > 0.0
            return elapsed

        elapsed = benchmark.pedantic(fail_fast, rounds=5, iterations=1)
        fail_fast_ms = round(elapsed * 1000.0, 3)
        benchmark.extra_info["breaker_open_fail_fast_ms"] = fail_fast_ms
        assert fail_fast_ms < 250.0, (
            f"open-breaker requests take {fail_fast_ms}ms — failing fast "
            "is failing slowly")
    finally:
        engine.close()
