"""Ablation bench: condition-number threshold of the ISVD3/4 pseudo-inverse.

Section 4.4.2.2 guards the inversion of the averaged V factor with a condition
check, falling back to a truncated Moore–Penrose pseudo-inverse.  This bench
sweeps the threshold from "always pseudo-inverse" to "never" and records the
effect on ISVD4-b accuracy, on a workload whose Gram matrix is moderately
ill-conditioned (rank close to the smaller dimension).
"""

import pytest

from repro.core.accuracy import harmonic_mean_accuracy
from repro.core.isvd import isvd
from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix

CONFIG = SyntheticConfig(shape=(40, 45), rank=38)
MATRIX = make_uniform_interval_matrix(CONFIG, rng=101)

THRESHOLDS = {
    "always_pinv": 0.0,       # condition number always exceeds 0 -> pseudo-inverse
    "default": 1e8,
    "never_pinv": 1e16,
}


@pytest.mark.parametrize("label", list(THRESHOLDS))
def test_bench_pinv_threshold(benchmark, label):
    """ISVD4-b accuracy and runtime under different inversion policies."""
    threshold = THRESHOLDS[label]

    def run():
        decomposition = isvd(MATRIX, CONFIG.rank, method="isvd4", target="b",
                             condition_threshold=threshold)
        return harmonic_mean_accuracy(MATRIX, decomposition)

    score = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["h_mean"] = round(score, 4)
    assert 0.0 <= score <= 1.0
