"""Benchmark E-tab3: Table 3 — clustering accuracy and execution time."""

from repro.experiments import table3_clustering

CONFIG = table3_clustering.Table3Config(
    resolutions=(24, 32), n_subjects=15, images_per_subject=8, rank=20, seed=53
)


def test_bench_table3_clustering(benchmark):
    """Regenerates Table 3 and checks its accuracy/time trade-off claims."""
    result = benchmark.pedantic(table3_clustering.run, args=(CONFIG,), rounds=1, iterations=1)
    for row in result.as_dict_rows():
        resolution = row["resolution"]
        isvd_nmi = row[f"ISVD2-b(r={CONFIG.rank}) NMI"]
        benchmark.extra_info[f"{resolution}_scalar_nmi"] = round(row["scalar NMI"], 4)
        benchmark.extra_info[f"{resolution}_interval_nmi"] = round(row["interval NMI"], 4)
        benchmark.extra_info[f"{resolution}_isvd2b_nmi"] = round(isvd_nmi, 4)
        benchmark.extra_info[f"{resolution}_interval_time_s"] = round(row["interval time (s)"], 4)
        benchmark.extra_info[f"{resolution}_isvd2b_kmeans_s"] = round(row["  (k-means s)"], 4)
        # Paper claims: the low-rank ISVD2-b features roughly match the interval-vector
        # accuracy, and their k-means step is much cheaper than clustering the raw
        # interval vectors.
        assert isvd_nmi >= row["interval NMI"] - 0.10
        assert row["  (k-means s)"] <= row["interval time (s)"]
    print()
    print(result.to_text(precision=4))
