#!/usr/bin/env python
"""Build the tracked perf snapshot (``BENCH_<n>.json``) from a benchmark report.

Usage::

    python -m pytest benchmarks -q --benchmark-json=benchmark-report.json
    python benchmarks/make_snapshot.py benchmark-report.json BENCH_5.json

pytest-benchmark's raw report is per-run noise (machine info, timestamps,
every statistical moment); the snapshot distills the *reproduced numbers*
that define the perf trajectory — kernel wall-clocks, serving throughput,
the sparse-vs-dense gram comparison, and the sharded scatter-gather serving
numbers — into a small stable JSON that can
live in the repository and be diffed commit to commit.  CI regenerates it on
every run and uploads it as an artifact; the tracked copy in the repo root is
the reference point from the commit that introduced it.

The script fails when a required key is missing, so a benchmark silently
dropping its ``extra_info`` breaks the build instead of the trajectory.
"""

import json
import sys

#: Snapshot layout: section -> (source benchmark module, extra_info keys).
#: Harvesting is scoped per module because key names collide across suites
#: (test_bench_engine.py publishes its own "speedup", for instance) — an
#: unscoped merge would let whichever benchmark ran last own the headline.
SECTIONS = {
    "kernel": ("test_bench_kernels", (
        "endpoint4_ms", "exact_ms", "rump_ms",
        "rump_over_endpoint4", "exact_over_endpoint4",
    )),
    "serve": ("test_bench_serve", (
        "unbatched_qps", "batched_qps", "speedup",
        "qps", "blas_calls", "mean_batch",
        "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
    )),
    "sparse": ("test_bench_sparse", (
        "shape", "density", "nnz",
        "sparse_gram_ms", "dense_gram_ms_measured", "dense_rows_measured",
        "dense_gram_ms_full_estimate", "sparse_speedup",
        "sparse_endpoint_mb", "dense_endpoint_mb", "sparse_storage_ratio",
    )),
    "shard": ("test_bench_shard", (
        "shards", "model_shape", "queries",
        "sharded_batched_qps", "sharded_unbatched_qps", "shard_speedup",
        "topk_sharded_ms", "topk_unsharded_ms",
        "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
        "parity_queries", "neighbor_sharded_ms", "neighbor_unsharded_ms",
        "scatter_block_mb", "monolithic_block_mb",
    )),
    "worker": ("test_bench_worker", (
        "shards", "model_shape", "queries", "usable_cores", "gate_active",
        "worker_batched_qps", "threads_batched_qps", "worker_over_threads",
        "latency_queries", "worker_row_qps",
        "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
    )),
    "faults": ("test_bench_faults", (
        "shards", "model_shape", "restart_recovery_ms",
        "stall_queries", "stall_seconds", "call_timeout_s",
        "stall_p50_ms", "stall_p99_ms",
        "breaker_open_fail_fast_ms",
    )),
    "precision": ("test_bench_precision", (
        "shape", "rows_measured",
        "gram_f64_ms", "gram_f32_ms", "gram_mixed_ms",
        "f32_speedup", "f32_storage_ratio",
        "sparse_f64_gram_ms", "sparse_f32_gram_ms",
        "sparse_f32_speedup", "sparse_f32_storage_ratio",
    )),
}

#: Section keys whose absence fails the build (the headline numbers).
REQUIRED = {
    "kernel": ("endpoint4_ms", "rump_ms", "rump_over_endpoint4"),
    "serve": ("batched_qps", "speedup", "latency_p95_ms"),
    "sparse": ("sparse_gram_ms", "sparse_speedup", "sparse_storage_ratio"),
    "shard": ("shards", "sharded_batched_qps", "shard_speedup",
              "latency_p95_ms"),
    "worker": ("worker_batched_qps", "worker_over_threads", "usable_cores",
               "latency_p95_ms"),
    "faults": ("restart_recovery_ms", "stall_p99_ms",
               "breaker_open_fail_fast_ms"),
    "precision": ("gram_f32_ms", "f32_speedup", "f32_storage_ratio"),
}


def build_snapshot(report: dict) -> dict:
    """Distill a pytest-benchmark JSON report into the snapshot layout."""
    per_module = {}
    for bench in report.get("benchmarks", ()):
        module = bench.get("fullname", "").split("::")[0]
        module = module.rsplit("/", 1)[-1].removesuffix(".py")
        per_module.setdefault(module, {}).update(bench.get("extra_info", {}))
    snapshot = {}
    for section, (module, keys) in SECTIONS.items():
        extras = per_module.get(module, {})
        missing = [key for key in REQUIRED[section] if key not in extras]
        if missing:
            raise SystemExit(
                f"benchmark report is missing {section} keys {missing} "
                f"(from {module}.py)"
            )
        snapshot[section] = {key: extras[key] for key in keys if key in extras}
    machine = report.get("machine_info", {})
    snapshot["meta"] = {
        "python_version": machine.get("python_version", "unknown"),
        "benchmarks": len(report.get("benchmarks", ())),
    }
    return snapshot


def main(argv):
    if len(argv) != 3:
        raise SystemExit(
            "usage: make_snapshot.py <benchmark-report.json> <snapshot-out.json>"
        )
    with open(argv[1]) as handle:
        report = json.load(handle)
    snapshot = build_snapshot(report)
    with open(argv[2], "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf snapshot written to {argv[2]}")
    for section, values in snapshot.items():
        if section != "meta":
            print(f"  {section}: {values}")


if __name__ == "__main__":
    main(sys.argv)
