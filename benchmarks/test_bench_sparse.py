"""Sparse vs dense interval linear algebra at past-dense-memory scale.

The gate of the PR-4 tentpole: the ISVD Gram step on a 100k x 2k rating
matrix at 1% density must run **>= 5x faster** and hold its endpoints in
**>= 10x less memory** through the sparse path than through the dense path.

The sparse side is measured directly at full scale (the whole point is that
it fits: ~40 MB of CSR endpoints).  The dense side *cannot* be measured
honestly at full scale inside a smoke benchmark — its endpoint pair alone is
3.2 GB and the four Gram products are ~3.2 TFLOP, minutes of wall-clock on a
CI runner — so it is measured on a row subsample and extrapolated linearly:
the Gram product ``MᵀM = Σ_rows mᵀm`` is an exact sum over rows, so both its
FLOPs and its wall-clock scale linearly in the row count (the published
``dense_rows_measured`` records the subsample so the artifact is honest about
what was timed).  The dense storage figure is exact arithmetic
(``2 * n * m * 8`` bytes), not an estimate.

A parity case pins correctness at the same time: on the shared subsample the
sparse and dense Gram endpoints agree to tight tolerance (bit-for-bit parity
on exactly-representable data is covered by tests/test_interval_sparse.py).
"""

import time

import numpy as np
import pytest

from repro.core.isvd import isvd
from repro.datasets.ratings import SPARSE_SCALE_PRESETS, make_sparse_rating_matrix
from repro.interval.linalg import interval_gram

#: Full benchmark geometry (the ISSUE's gate): 100k x 2k at 1% density.
PRESET = SPARSE_SCALE_PRESETS["webscale"]

#: Rows of the dense comparison subsample (wall-clock extrapolates by
#: ``n_users / DENSE_ROWS``; the Gram product is linear in rows).
DENSE_ROWS = 5_000

#: Gates from the issue's acceptance criteria.
MIN_SPEEDUP = 5.0
MIN_STORAGE_RATIO = 10.0

SPARSE = make_sparse_rating_matrix(preset="webscale", seed=2024)
DENSE_SAMPLE = SPARSE.rows(np.arange(DENSE_ROWS)).to_dense()


def _best_of(fn, rounds=2):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_sparse_gram_vs_dense(benchmark):
    """The tentpole gate: >=5x wall-clock, >=10x endpoint storage at webscale."""
    n_users, n_items = SPARSE.shape
    assert (n_users, n_items) == (PRESET.n_users, PRESET.n_items)

    dense_sample_seconds = _best_of(lambda: interval_gram(DENSE_SAMPLE))
    dense_full_estimate = dense_sample_seconds * (n_users / DENSE_ROWS)
    sparse_seconds = _best_of(lambda: interval_gram(SPARSE), rounds=1)
    # Keep one measured round in the benchmark table itself (the sparse path
    # is the production one).
    gram = benchmark.pedantic(interval_gram, args=(SPARSE,), rounds=1, iterations=1)
    assert gram.shape == (n_items, n_items)

    sparse_bytes = SPARSE.endpoint_nbytes()
    dense_bytes = 2 * n_users * n_items * 8  # exact: two float64 endpoint arrays
    speedup = dense_full_estimate / sparse_seconds
    storage_ratio = dense_bytes / sparse_bytes

    benchmark.extra_info["shape"] = f"{n_users}x{n_items}"
    benchmark.extra_info["density"] = round(SPARSE.density, 5)
    benchmark.extra_info["nnz"] = SPARSE.nnz
    benchmark.extra_info["sparse_gram_ms"] = round(sparse_seconds * 1000.0, 1)
    benchmark.extra_info["dense_gram_ms_measured"] = round(
        dense_sample_seconds * 1000.0, 1)
    benchmark.extra_info["dense_rows_measured"] = DENSE_ROWS
    benchmark.extra_info["dense_gram_ms_full_estimate"] = round(
        dense_full_estimate * 1000.0, 1)
    benchmark.extra_info["sparse_speedup"] = round(speedup, 2)
    benchmark.extra_info["sparse_endpoint_mb"] = round(sparse_bytes / 1e6, 1)
    benchmark.extra_info["dense_endpoint_mb"] = round(dense_bytes / 1e6, 1)
    benchmark.extra_info["sparse_storage_ratio"] = round(storage_ratio, 1)

    assert speedup >= MIN_SPEEDUP, (
        f"sparse gram only {speedup:.1f}x faster than the dense path "
        f"(gate: {MIN_SPEEDUP}x)"
    )
    assert storage_ratio >= MIN_STORAGE_RATIO, (
        f"sparse endpoints only {storage_ratio:.1f}x smaller than dense "
        f"(gate: {MIN_STORAGE_RATIO}x)"
    )


def test_bench_sparse_gram_parity(benchmark):
    """Sparse and dense Gram agree on the shared subsample (float tolerance)."""
    sparse_sample = SPARSE.rows(np.arange(DENSE_ROWS))
    result = benchmark.pedantic(interval_gram, args=(sparse_sample,),
                                rounds=1, iterations=1)
    reference = interval_gram(DENSE_SAMPLE)
    assert result.allclose(reference, atol=1e-8, rtol=1e-10)
    benchmark.extra_info["parity_rows"] = DENSE_ROWS


def test_bench_sparse_isvd_end_to_end(benchmark):
    """Full ISVD4 on a sparse matrix whose dense form would be ~1.3 GB.

    Ungated: records that the whole decomposition (gram + eigh + interval U/V
    recovery) completes at a scale the dense path cannot hold comfortably,
    and how long it takes.
    """
    matrix = make_sparse_rating_matrix(preset=None, n_users=20_000, n_items=400,
                                       density=0.02, seed=7)
    decomposition = benchmark.pedantic(
        isvd, args=(matrix, 8), kwargs={"method": "isvd4", "target": "b"},
        rounds=1, iterations=1,
    )
    assert decomposition.rank == 8
    assert decomposition.shape == (20_000, 400)
    benchmark.extra_info["sparse_isvd_shape"] = "20000x400"
    benchmark.extra_info["sparse_isvd_nnz"] = matrix.nnz
