"""Benchmark E-fig9: Figure 9 — reconstruction of user-category rating ranges."""

import pytest

from repro.experiments import fig9_social

CONFIG = fig9_social.Figure9Config(scale=0.35, rank_fractions=(1.0, 0.5, 0.05), seed=61)


@pytest.mark.parametrize("dataset", ["ciao", "epinions", "movielens"])
def test_bench_figure9(benchmark, dataset):
    """Regenerates one Figure 9 dataset table and checks the paper's ordering."""
    result = benchmark.pedantic(
        fig9_social.run_dataset, args=(dataset, CONFIG), rounds=1, iterations=1
    )
    rows = {row["method"]: row for row in result.as_dict_rows()}
    full_rank_header = next(h for h in result.headers if h.startswith("100%") and "H-mean" in h)
    benchmark.extra_info["ISVD4-b_full_rank"] = round(rows["ISVD4-b"][full_rank_header], 4)
    benchmark.extra_info["ISVD1-b_full_rank"] = round(rows["ISVD1-b"][full_rank_header], 4)
    # Paper shape: at full rank, option-b with early alignment (ISVD3/4) leads.
    assert rows["ISVD4-b"][full_rank_header] >= rows["ISVD1-b"][full_rank_header] - 0.02
    option_a_best = max(rows[f"ISVD{i}-a"][full_rank_header] for i in (1, 2, 3, 4))
    assert rows["ISVD4-b"][full_rank_header] >= option_a_best - 0.02
    print()
    print(result.to_text())
