"""float32 precision mode: gram wall-clock and endpoint storage at webscale.

The PR-10 tentpole gate: at the webscale preset geometry (100k x 2k rating
matrix), the dense interval Gram at float32 must run **>= 1.8x faster** than
float64 and hold its endpoints in **~2x less memory** (gated at >= 1.9x —
exactly 2.0 for raw endpoint arrays).

The dense Gram is measured on a row subsample, the same honesty device
test_bench_sparse.py uses: the Gram is an exact sum over rows, so wall-clock
scales linearly in rows and the float32/float64 *ratio* is row-count
invariant — the published ``rows_measured`` records what was timed.  The
mixed policy (float32 storage, float64 accumulation) is recorded ungated: it
buys accuracy, not speed, and the snapshot should say so.

The sparse path is recorded ungated too: CSR index arrays don't shrink with
the value dtype, so its float32 speedup (~1.2x) and storage ratio (~1.5x)
are structurally below the dense gates — publishing the real numbers beats
pretending the gate applies.

Soundness is asserted in the same run: the float32 Gram must contain a
float64-computed member Gram, so the speed being gated is the speed of a
*sound* enclosure, not of a kernel that quietly dropped its inflation.
"""

import time

import numpy as np

from repro.datasets.ratings import SPARSE_SCALE_PRESETS, make_sparse_rating_matrix
from repro.interval.linalg import interval_gram

#: The webscale geometry the gate is defined at: 100k x 2k at 1% density.
PRESET = SPARSE_SCALE_PRESETS["webscale"]

#: Rows of the dense measurement subsample (the f32/f64 ratio is invariant
#: in the row count; see module docstring).
DENSE_ROWS = 5_000

#: Gates from the issue's acceptance criteria.
MIN_F32_SPEEDUP = 1.8
MIN_F32_STORAGE_RATIO = 1.9

SPARSE = make_sparse_rating_matrix(preset="webscale", seed=2024)
DENSE = SPARSE.rows(np.arange(DENSE_ROWS)).to_dense()
DENSE32 = DENSE.astype(np.float32, outward=True)


def _best_of(fn, rounds=2):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fns, rounds=3):
    """Best-of-``rounds`` wall-clock per fn, rounds interleaved across fns.

    The gate is a *ratio* of two measurements, so drift (BLAS threadpool
    state, allocator pressure from earlier suites) must hit both sides
    equally: each fn runs once unmeasured to warm up, then the timed rounds
    alternate f64/f32 instead of timing one dtype's block after the other.
    """
    for fn in fns:
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def test_bench_precision_gram_float32_vs_float64(benchmark):
    """The tentpole gate: >=1.8x wall-clock, ~2x endpoint storage at f32."""
    n_users, n_items = SPARSE.shape
    assert (n_users, n_items) == (PRESET.n_users, PRESET.n_items)

    f64_seconds, f32_seconds = _interleaved_best(
        [lambda: interval_gram(DENSE), lambda: interval_gram(DENSE32)])
    mixed_seconds = _best_of(
        lambda: interval_gram(DENSE32, accum_dtype=np.float64), rounds=1)
    # Keep one measured round in the benchmark table itself (the float32
    # path is the one the gate certifies).
    gram32 = benchmark.pedantic(interval_gram, args=(DENSE32,),
                                rounds=1, iterations=1)
    assert gram32.dtype == np.float32

    # Sound-enclosure spot check in the same run: a float64 member Gram must
    # land inside the float32 result.
    member = np.random.default_rng(0).uniform(DENSE32.lower, DENSE32.upper)
    member_gram = member.T @ member
    assert np.all(gram32.lower.astype(np.float64) <= member_gram)
    assert np.all(gram32.upper.astype(np.float64) >= member_gram)

    f64_bytes = DENSE.lower.nbytes + DENSE.upper.nbytes
    f32_bytes = DENSE32.lower.nbytes + DENSE32.upper.nbytes
    speedup = f64_seconds / f32_seconds
    storage_ratio = f64_bytes / f32_bytes

    benchmark.extra_info["shape"] = f"{n_users}x{n_items}"
    benchmark.extra_info["rows_measured"] = DENSE_ROWS
    benchmark.extra_info["gram_f64_ms"] = round(f64_seconds * 1000.0, 1)
    benchmark.extra_info["gram_f32_ms"] = round(f32_seconds * 1000.0, 1)
    benchmark.extra_info["gram_mixed_ms"] = round(mixed_seconds * 1000.0, 1)
    benchmark.extra_info["f32_speedup"] = round(speedup, 2)
    benchmark.extra_info["f32_storage_ratio"] = round(storage_ratio, 2)

    assert speedup >= MIN_F32_SPEEDUP, (
        f"float32 gram only {speedup:.2f}x faster than float64 "
        f"(gate: {MIN_F32_SPEEDUP}x)"
    )
    assert storage_ratio >= MIN_F32_STORAGE_RATIO, (
        f"float32 endpoints only {storage_ratio:.2f}x smaller than float64 "
        f"(gate: {MIN_F32_STORAGE_RATIO}x)"
    )


def test_bench_precision_sparse_gram(benchmark):
    """Ungated: the sparse path's real float32 numbers at full webscale.

    CSR indices stay 8/4-byte regardless of the value dtype, so neither the
    dense speedup nor the dense storage ratio is reachable here; the
    snapshot records what float32 actually buys on this path.
    """
    sparse32 = SPARSE.astype(np.float32, outward=True)
    f64_seconds = _best_of(lambda: interval_gram(SPARSE), rounds=1)
    f32_seconds = _best_of(lambda: interval_gram(sparse32), rounds=1)
    gram32 = benchmark.pedantic(interval_gram, args=(sparse32,),
                                rounds=1, iterations=1)
    assert gram32.dtype == np.float32

    benchmark.extra_info["sparse_f64_gram_ms"] = round(f64_seconds * 1000.0, 1)
    benchmark.extra_info["sparse_f32_gram_ms"] = round(f32_seconds * 1000.0, 1)
    benchmark.extra_info["sparse_f32_speedup"] = round(
        f64_seconds / f32_seconds, 2)
    benchmark.extra_info["sparse_f32_storage_ratio"] = round(
        SPARSE.endpoint_nbytes() / sparse32.endpoint_nbytes(), 2)
