"""Benchmark E-fig3: Figure 3 — matched cosine similarity before/after ILSA."""

import numpy as np

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import alignment

CONFIG = alignment.AlignmentConfig(
    synthetic=SyntheticConfig(shape=(40, 120), rank=20), trials=3, seed=7
)


def test_bench_figure3_alignment(benchmark):
    """Regenerates Figure 3 and records the mean |cos| before/after alignment."""
    result = benchmark.pedantic(alignment.run_figure3, args=(CONFIG,), rounds=1, iterations=1)
    before = np.array(result.column("|cos| before alignment"), dtype=float)
    after = np.array(result.column("|cos| after alignment"), dtype=float)
    benchmark.extra_info["mean_cos_before"] = round(float(before.mean()), 4)
    benchmark.extra_info["mean_cos_after"] = round(float(after.mean()), 4)
    # Paper claim: the alignment improves the matched similarity, most visibly
    # for the low-singular-value vectors.
    assert after.mean() >= before.mean() - 1e-9
    print()
    print(result.to_text())
