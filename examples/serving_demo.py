"""Serving demo: train on synthetic ratings, publish, serve, query over HTTP.

Run with ``python examples/serving_demo.py``.

The script walks the full online-serving loop:

1. generate a synthetic rating dataset and build the paper's per-rating
   interval matrix (each rating widened by the row/column rating spread);
2. decompose it with ISVD4 and publish the factors to a model store;
3. start the HTTP service on an ephemeral port (in a background thread here;
   operationally this is ``repro serve --store ...``);
4. fold in brand-new users — rows the model was never fitted on — and fetch
   their top-k recommendations and nearest stored users over HTTP;
5. reshard the live model into 4 row-range shards and show the served
   answers do not change by a single bit.
"""

import json
import tempfile
import threading
import urllib.request

import numpy as np

from repro.core import registry
from repro.datasets.ratings import make_ratings_dataset, rating_interval_matrix
from repro.interval.array import IntervalMatrix
from repro.serve import ModelStore, ShardedModelStore, create_server


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def new_user_rows(n_items, n_users=3, seed=7):
    """Interval rating rows for users the model has never seen."""
    rng = np.random.default_rng(seed)
    midpoints = rng.uniform(1.0, 5.0, size=(n_users, n_items))
    radius = rng.uniform(0.0, 0.5, size=midpoints.shape)
    return IntervalMatrix(midpoints - radius, midpoints + radius)


def main() -> None:
    # 1. Train data: the Figure 10 collaborative-filtering workload.
    dataset = make_ratings_dataset(preset="movielens", n_users=120, n_items=200,
                                   n_categories=10, density=0.3, seed=1)
    matrix = rating_interval_matrix(dataset, alpha=0.5)
    print(f"training matrix: {matrix}")

    # 2. Decompose and publish.
    decomposition = registry.get("isvd4").fit(matrix, rank=10, target="b")
    with tempfile.TemporaryDirectory() as directory:
        store = ModelStore(directory)
        record = store.save("movies", decomposition, matrix=matrix)
        print(f"published: {record.name} ({record.method}, target {record.target}, "
              f"rank {record.rank}, shape {record.shape})")

        # 3. Serve (equivalent to: repro serve --store <dir> --port 0).
        server = create_server(store, port=0)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://{host}:{port}"
        print(f"serving on {base}\n")

        health = json.load(urllib.request.urlopen(f"{base}/healthz"))
        print(f"GET /healthz -> {health}")

        # 4. Query: recommendations for unseen users, folded in at query time.
        queries = new_user_rows(dataset.n_items)
        recommendation = post(f"{base}/recommend", {
            "model": "movies", "k": 5,
            "lower": queries.lower.tolist(), "upper": queries.upper.tolist(),
        })
        print("\nPOST /recommend (3 new users, k=5):")
        for user, (items, scores) in enumerate(
                zip(recommendation["items"], recommendation["scores"])):
            pretty = ", ".join(f"item {i} ({s:.2f})" for i, s in zip(items, scores))
            print(f"  new user {user}: {pretty}")

        neighbors = post(f"{base}/neighbors", {
            "model": "movies", "k": 3,
            "lower": queries.lower.tolist(), "upper": queries.upper.tolist(),
        })
        print("\nPOST /neighbors (same users, k=3 most similar stored users):")
        for user, (ids, distances) in enumerate(
                zip(neighbors["neighbors"], neighbors["distances"])):
            pretty = ", ".join(f"user {i} (d={d:.2f})" for i, d in zip(ids, distances))
            print(f"  new user {user}: {pretty}")

        # 5. Shard the model (equivalent to: repro shard movies --shards 4)
        #    and ask again: the server picks up the republished model without
        #    a restart, routes through the scatter-gather engine, and the
        #    responses are byte-identical.
        ShardedModelStore(directory).save_sharded("movies", decomposition, 4,
                                                  matrix=matrix)
        resharded = post(f"{base}/recommend", {
            "model": "movies", "k": 5,
            "lower": queries.lower.tolist(), "upper": queries.upper.tolist(),
        })
        assert resharded == recommendation
        print("\nresharded into 4 row-range shards: served answers unchanged, "
              "bit for bit")

        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
