"""Analyzing anonymized (generalized) data with interval-valued SVD.

Run with ``python examples/anonymized_analysis.py``.

Privacy-preserving publishing replaces precise values with generalization
buckets (k-anonymity style recoding).  This example shows the workflow the
paper motivates in Section 6.3.2:

1. start from a precise data matrix that the analyst never sees;
2. anonymize it at three privacy levels (high / medium / low mixtures of the
   L1..L4 generalization levels);
3. decompose the *anonymized interval matrix* with ISVD and measure how well
   the published intervals are preserved by a low-rank model;
4. show that the naive approach (average every interval, then SVD) loses
   accuracy relative to the alignment-based ISVD4-b as anonymization grows.
"""

import numpy as np

from repro import harmonic_mean_accuracy, isvd
from repro.datasets.anonymized import PRIVACY_PROFILES, generalize_matrix


def main() -> None:
    rng = np.random.default_rng(7)
    # The "true" data the publisher holds: 60 individuals x 150 attributes.
    true_data = rng.uniform(0.0, 1.0, size=(60, 150))

    rank = 20
    print(f"low-rank analysis of anonymized data (rank {rank})")
    print(f"{'privacy':>8s}  {'mean width':>10s}  {'ISVD0':>7s}  {'ISVD1-b':>7s}  {'ISVD4-b':>7s}")
    for profile_name in ("low", "medium", "high"):
        profile = PRIVACY_PROFILES[profile_name]
        published = generalize_matrix(true_data, profile, domain=(0.0, 1.0), rng=rng)

        scores = {}
        for method, target in (("isvd0", "c"), ("isvd1", "b"), ("isvd4", "b")):
            decomposition = isvd(published, rank, method=method, target=target)
            scores[method] = harmonic_mean_accuracy(published, decomposition)

        print(f"{profile_name:>8s}  {published.mean_span():10.4f}  "
              f"{scores['isvd0']:7.3f}  {scores['isvd1']:7.3f}  {scores['isvd4']:7.3f}")

    print("\nInterpretation: the wider the published intervals (higher privacy), the")
    print("bigger the advantage of the alignment-based ISVD4-b over the naive average.")


if __name__ == "__main__":
    main()
