"""Collaborative filtering with interval-valued ratings (the paper's Section 6.5 workload).

Run with ``python examples/collaborative_filtering.py``.

Users rarely rate items with perfect confidence; the paper models that
ambiguity by widening each rating into an interval whose radius reflects the
spread of related ratings (same user or same item).  This example:

1. generates a MovieLens-like rating matrix and holds out 20% of the ratings;
2. builds the per-rating interval matrix from the training ratings;
3. trains PMF (scalar baseline), I-PMF (interval baseline) and AI-PMF (the
   paper's aligned interval model);
4. reports held-out RMSE, plus a reconstruction-based prediction from ISVD on
   the user-genre rating-range matrix.
"""

import numpy as np

from repro import AIPMF, IPMF, IntervalMatrix, PMF, isvd
from repro.datasets.ratings import (
    RatingsDataset,
    make_ratings_dataset,
    rating_interval_matrix,
    user_category_interval_matrix,
)
from repro.eval.cf import rating_prediction_rmse
from repro.core.accuracy import harmonic_mean_accuracy


def main() -> None:
    dataset = make_ratings_dataset(preset="movielens", n_users=250, n_items=500,
                                   density=0.15, seed=5)
    train_mask, test_mask = dataset.holdout_split(test_fraction=0.2, rng=5)
    print(f"{dataset.n_users} users x {dataset.n_items} movies, "
          f"{int(dataset.observed_mask.sum())} ratings "
          f"({int(test_mask.sum())} held out)\n")

    train_ratings = dataset.ratings * train_mask
    train_dataset = RatingsDataset(ratings=train_ratings,
                                   item_categories=dataset.item_categories,
                                   n_categories=dataset.n_categories)
    interval_train = rating_interval_matrix(train_dataset, alpha=0.5)

    rank = 40
    kwargs = dict(rank=rank, learning_rate=0.005, reg_u=0.05, reg_v=0.05,
                  epochs=30, batch_size=64, seed=5)

    print(f"--- rating prediction RMSE at rank {rank} (lower is better) ---")
    for name, model, data in (
        ("PMF", PMF(**kwargs), train_ratings),
        ("I-PMF", IPMF(**kwargs), interval_train),
        ("AI-PMF", AIPMF(**kwargs), interval_train),
    ):
        model.fit(data, mask=train_mask)
        score = rating_prediction_rmse(model, dataset.ratings, test_mask)
        print(f"{name:>7s}: RMSE = {score:.3f}")

    print("\n--- user-genre rating-range analysis (Figure 9 style) ---")
    range_matrix = user_category_interval_matrix(dataset)
    for rank_fraction in (1.0, 0.5):
        r = max(1, int(round(dataset.n_categories * rank_fraction)))
        decomposition = isvd(range_matrix, r, method="isvd4", target="b")
        score = harmonic_mean_accuracy(range_matrix, decomposition)
        print(f"rank {r:2d} ({rank_fraction:.0%} of full): H-mean accuracy = {score:.3f}")

    print("\nInterpretation: the interval-aware models (I-PMF / AI-PMF) predict held-out")
    print("ratings better than scalar PMF, and AI-PMF's alignment keeps the two endpoint")
    print("latent spaces consistent — the paper's Figure 10 behaviour.")


if __name__ == "__main__":
    main()
