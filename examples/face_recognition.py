"""Face recognition with interval-valued features (the paper's Section 6.4 workload).

Run with ``python examples/face_recognition.py``.

The pipeline mirrors the ORL-face experiments:

1. build an interval-valued image collection (each pixel's interval reflects
   its local spatial variability, supplementary F.1);
2. decompose the interval image matrix with ISVD;
3. use the ``U x Sigma`` projections as features for
   (a) 1-nearest-neighbour identification (interval Euclidean distance) and
   (b) K-means clustering scored with NMI;
4. compare against the NMF / I-NMF competitors.
"""

from repro.core.inmf import INMF, NMF
from repro.datasets.faces import make_face_dataset
from repro.eval.kmeans import kmeans_nmi
from repro.eval.knn import nn_classification_f1
from repro import isvd


def main() -> None:
    dataset = make_face_dataset(n_subjects=15, images_per_subject=8, resolution=24, seed=3)
    train_idx, test_idx = dataset.train_test_split(train_fraction=0.5, rng=3)
    rank = 20
    print(f"{dataset.n_images} images of {dataset.n_subjects} people at "
          f"{dataset.resolution}x{dataset.resolution}; rank {rank} features\n")

    results = []

    # --- interval SVD features: U x Sigma projections -----------------------
    for method in ("isvd1", "isvd2", "isvd4"):
        decomposition = isvd(dataset.intervals, rank, method=method, target="b")
        features = decomposition.projection()
        f1 = nn_classification_f1(
            features[train_idx, :], dataset.labels[train_idx],
            features[test_idx, :], dataset.labels[test_idx],
        )
        nmi = kmeans_nmi(features, dataset.labels, seed=3)
        results.append((method.upper() + "-b", f1, nmi))

    # --- NMF / I-NMF competitors: scalar U features --------------------------
    nmf = NMF(rank=rank, max_iter=80, seed=3).fit(dataset.intervals)
    f1 = nn_classification_f1(nmf.features()[train_idx], dataset.labels[train_idx],
                              nmf.features()[test_idx], dataset.labels[test_idx])
    results.append(("NMF", f1, kmeans_nmi(nmf.features(), dataset.labels, seed=3)))

    inmf = INMF(rank=rank, max_iter=80, seed=3).fit(dataset.intervals.clip_nonnegative())
    f1 = nn_classification_f1(inmf.features()[train_idx], dataset.labels[train_idx],
                              inmf.features()[test_idx], dataset.labels[test_idx])
    results.append(("I-NMF", f1, kmeans_nmi(inmf.features(), dataset.labels, seed=3)))

    print(f"{'method':>8s}  {'1-NN F1':>8s}  {'K-means NMI':>11s}")
    for name, f1, nmi in results:
        print(f"{name:>8s}  {f1:8.3f}  {nmi:11.3f}")

    print("\nInterpretation: the aligned interval features (ISVD1/2/4) identify people")
    print("more reliably than the NMF-family features, as reported in the paper's Figure 8.")


if __name__ == "__main__":
    main()
