"""Quickstart: decompose an interval-valued matrix and measure reconstruction accuracy.

Run with ``python examples/quickstart.py``.

The script walks through the library's core loop:

1. build an interval-valued matrix (here: a random matrix whose entries were
   blurred into intervals, mimicking imprecise measurements);
2. decompose it with each ISVD strategy and decomposition target;
3. reconstruct and compare the harmonic-mean accuracy (the paper's Definition 5);
4. inspect the aligned factors.
"""

import numpy as np

from repro import IntervalMatrix, harmonic_mean_accuracy, isvd, reconstruct
from repro.interval.random import intervalize


def build_demo_matrix(seed: int = 0) -> IntervalMatrix:
    """An 80 x 120 scalar matrix whose cells are widened into intervals."""
    rng = np.random.default_rng(seed)
    # A low-rank "signal" plus noise, so low-rank reconstruction is meaningful.
    signal = rng.uniform(0, 1, size=(80, 6)) @ rng.uniform(0, 1, size=(6, 120))
    noisy = signal + rng.normal(scale=0.05, size=signal.shape)
    # Each cell becomes an interval of up to 50% of its magnitude.
    return intervalize(np.clip(noisy, 0, None), interval_density=1.0,
                       interval_intensity=0.5, rng=rng)


def main() -> None:
    matrix = build_demo_matrix()
    print(f"input matrix: {matrix}")
    print(f"mean interval width: {matrix.mean_span():.4f}\n")

    rank = 10
    print(f"--- decomposition accuracy at rank {rank} (higher is better) ---")
    for method in ("isvd0", "isvd1", "isvd2", "isvd3", "isvd4"):
        target = "c" if method == "isvd0" else "b"
        decomposition = isvd(matrix, rank, method=method, target=target)
        score = harmonic_mean_accuracy(matrix, decomposition)
        total_time = sum(decomposition.timings.values())
        print(f"{method.upper():6s} (target {target}): H-mean = {score:.3f}   "
              f"[{total_time * 1000:.1f} ms]")

    print("\n--- decomposition targets of ISVD4 ---")
    for target in ("a", "b", "c"):
        decomposition = isvd(matrix, rank, method="isvd4", target=target)
        print(f"target {target}: {decomposition.describe()}")

    print("\n--- reconstructing with the best method (ISVD4, target b) ---")
    decomposition = isvd(matrix, rank, method="isvd4", target="b")
    reconstruction = reconstruct(decomposition)
    print(f"reconstruction: {reconstruction}")
    singular_values = decomposition.singular_values()
    top3 = [f"[{lo:.2f}, {hi:.2f}]"
            for lo, hi in zip(singular_values.lower[:3], singular_values.upper[:3])]
    print(f"singular value intervals (top 3): {', '.join(top3)}")
    print(f"H-mean accuracy: {harmonic_mean_accuracy(matrix, reconstruction):.3f}")


if __name__ == "__main__":
    main()
