#!/usr/bin/env python
"""Fail on broken *relative* links in the repository's markdown docs.

Usage::

    python tools/check_links.py [ROOT]

Scans ``ROOT/README.md`` plus every ``*.md`` under ``ROOT/docs/`` (ROOT
defaults to the repository root, the parent of this file's directory) for
inline markdown links and images — ``[text](target)`` / ``![alt](target)`` —
and verifies that each relative target resolves to an existing file or
directory.  External links (``http://``, ``https://``, ``mailto:``) and
pure in-page anchors (``#section``) are skipped; a ``#fragment`` suffix on a
relative link is stripped before checking.  Exit status 0 when every link
resolves, 1 otherwise (one diagnostic line per broken link) — the CI
``docs-check`` job gates on it.

Standard library only, by design: the checker must run before any project
dependency is installed.
"""

import re
import sys
from pathlib import Path

#: Inline markdown link/image: ``[text](target)`` or ``[text](target "title")``,
#: with a non-empty target that contains neither whitespace nor a closing
#: parenthesis (optionally wrapped in ``<...>``).  Fenced code blocks are
#: excluded before matching.
_LINK_PATTERN = re.compile(
    r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\"|\s+'[^']*')?\s*\)")
_FENCE_PATTERN = re.compile(r"^(```|~~~)", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_fenced_code(text: str) -> str:
    """Drop fenced code blocks (link syntax inside them is just code)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_PATTERN.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def iter_links(markdown: str):
    """Yield every inline link target outside fenced code blocks."""
    for match in _LINK_PATTERN.finditer(_strip_fenced_code(markdown)):
        yield match.group(1)


def check_file(path: Path, root: Path):
    """Return ``(target, resolved)`` pairs for broken relative links in
    ``path``; relative targets resolve against the file's directory."""
    broken = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        resolved = (root if plain.startswith("/")
                    else path.parent) / plain.lstrip("/")
        if not resolved.exists():
            broken.append((target, resolved))
    return broken


def collect_files(root: Path):
    """The markdown files the repository promises to keep link-clean."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return files


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent
    files = collect_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for target, resolved in check_file(path, root):
            print(f"{path.relative_to(root)}: broken link {target!r} "
                  f"(resolved to {resolved})", file=sys.stderr)
            failures += 1
    checked = ", ".join(str(p.relative_to(root)) for p in files)
    if failures:
        print(f"{failures} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"all relative links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
