"""Table 2: option-b accuracy under varying synthetic-data parameters.

The five sub-tables sweep one parameter each while the others stay at the
paper's defaults:

* (a) interval density, (b) interval intensity, (c) matrix density
  (fraction of zero cells), (d) matrix configuration (shape), (e) target rank.

Each cell is the harmonic-mean reconstruction accuracy of one method (ISVD0
plus the ISVD#-b family), averaged over several random matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.datasets.synthetic import (
    SyntheticConfig,
    density_sweep,
    generate_trials,
    intensity_sweep,
    matrix_density_sweep,
    rank_sweep,
    shape_sweep,
)
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    DEFAULT_METHOD_GRID,
    ExperimentResult,
    MethodSpec,
)


@dataclass
class Table2Config:
    """Configuration for the Table 2 sweeps."""

    base: SyntheticConfig = SyntheticConfig()
    trials: int = 3
    seed: Optional[int] = 23
    methods: Sequence[MethodSpec] = DEFAULT_METHOD_GRID


def _sweep(
    config: Table2Config,
    configurations: List[SyntheticConfig],
    describe: Callable[[SyntheticConfig], str],
    name: str,
    column_name: str,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentResult:
    engine = engine or ExperimentEngine()
    result = ExperimentResult(
        name=name,
        headers=[column_name, *(spec.label for spec in config.methods)],
    )
    for synthetic in configurations:
        matrices = list(generate_trials(synthetic, trials=config.trials, seed=config.seed))
        grid = engine.evaluate_grid(matrices, config.methods, synthetic.rank,
                                    experiment=f"table2[{describe(synthetic)}]")
        scores = grid.scores()
        result.add_row(describe(synthetic), *(scores[s.label] for s in config.methods))
        result.add_records(grid.records)
    result.add_note(f"trials per row: {config.trials}; base config {config.base.describe()}")
    return result


def run_interval_density(config: Optional[Table2Config] = None,
                         engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Table 2(a): varying interval densities."""
    config = config or Table2Config()
    return _sweep(
        config, density_sweep(config.base),
        lambda c: f"{c.interval_density:.0%}",
        "Table 2(a): varying interval densities (H-mean)", "int. density",
        engine=engine,
    )


def run_interval_intensity(config: Optional[Table2Config] = None,
                           engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Table 2(b): varying interval intensities."""
    config = config or Table2Config()
    return _sweep(
        config, intensity_sweep(config.base),
        lambda c: f"{c.interval_intensity:.0%}",
        "Table 2(b): varying interval intensities (H-mean)", "int. intensity",
        engine=engine,
    )


def run_matrix_density(config: Optional[Table2Config] = None,
                       engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Table 2(c): varying matrix densities (fraction of zero cells)."""
    config = config or Table2Config()
    return _sweep(
        config, matrix_density_sweep(config.base),
        lambda c: f"{c.matrix_density:.0%}",
        "Table 2(c): varying matrix densities (H-mean)", "mat. density",
        engine=engine,
    )


def run_matrix_configuration(config: Optional[Table2Config] = None,
                             engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Table 2(d): varying matrix configurations (shapes)."""
    config = config or Table2Config()
    return _sweep(
        config, shape_sweep(config.base),
        lambda c: f"{c.shape[0]}-by-{c.shape[1]}",
        "Table 2(d): varying matrix configurations (H-mean)", "matrix conf.",
        engine=engine,
    )


def run_target_rank(config: Optional[Table2Config] = None,
                    engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Table 2(e): varying target ranks."""
    config = config or Table2Config()
    return _sweep(
        config, rank_sweep(config.base),
        lambda c: str(c.rank),
        "Table 2(e): varying target ranks (H-mean)", "rank",
        engine=engine,
    )


_SUBTABLES: Dict[str, Callable[[Optional[Table2Config]], ExperimentResult]] = {
    "a": run_interval_density,
    "b": run_interval_intensity,
    "c": run_matrix_density,
    "d": run_matrix_configuration,
    "e": run_target_rank,
}


def run(config: Optional[Table2Config] = None,
        subtables: Sequence[str] = ("a", "b", "c", "d", "e"),
        engine: Optional[ExperimentEngine] = None) -> Dict[str, ExperimentResult]:
    """Run the requested Table 2 sub-tables."""
    config = config or Table2Config()
    unknown = set(subtables) - set(_SUBTABLES)
    if unknown:
        raise ValueError(f"unknown Table 2 sub-tables: {sorted(unknown)}")
    engine = engine or ExperimentEngine()
    return {key: _SUBTABLES[key](config, engine=engine) for key in subtables}


def main() -> None:
    """Print all five Table 2 sub-tables."""
    for key, result in run().items():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
