"""Table 3: clustering accuracy and execution time at different resolutions.

Compares three feature representations of the face images for K-means
clustering (K = number of subjects), scored with NMI and timed end to end:

* **scalar vectors** — the raw pixel rows;
* **interval vectors** — the raw interval-valued pixel rows (twice the width);
* **ISVD2-b (r = 20)** — the low-rank interval features (``U x Sigma``) of an
  ISVD2 decomposition with target b; the time column separates decomposition
  time from clustering time, as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.isvd import isvd
from repro.datasets.faces import make_face_dataset
from repro.eval.kmeans import kmeans_nmi
from repro.experiments.runner import ExperimentResult


@dataclass
class Table3Config:
    """Configuration for the clustering accuracy/time comparison."""

    resolutions: Sequence[int] = (24, 32)
    n_subjects: int = 20
    images_per_subject: int = 8
    rank: int = 20
    seed: Optional[int] = 53


def run(config: Optional[Table3Config] = None) -> ExperimentResult:
    """Run the Table 3 comparison for every configured resolution."""
    config = config or Table3Config()
    result = ExperimentResult(
        name="Table 3: clustering NMI and execution time (decomposition + k-means)",
        headers=[
            "resolution",
            "scalar NMI", "scalar time (s)",
            "interval NMI", "interval time (s)",
            f"ISVD2-b(r={config.rank}) NMI", "ISVD2-b time (s)", "  (decomp s)", "  (k-means s)",
        ],
    )
    for resolution in config.resolutions:
        dataset = make_face_dataset(
            n_subjects=config.n_subjects,
            images_per_subject=config.images_per_subject,
            resolution=resolution,
            seed=config.seed,
        )
        labels = dataset.labels

        start = time.perf_counter()
        scalar_nmi = kmeans_nmi(dataset.images, labels, seed=config.seed)
        scalar_time = time.perf_counter() - start

        start = time.perf_counter()
        interval_nmi = kmeans_nmi(dataset.intervals, labels, seed=config.seed)
        interval_time = time.perf_counter() - start

        rank = min(config.rank, min(dataset.intervals.shape))
        start = time.perf_counter()
        decomposition = isvd(dataset.intervals, rank, method="isvd2", target="b")
        decomposition_time = time.perf_counter() - start
        features = decomposition.projection()
        start = time.perf_counter()
        isvd_nmi = kmeans_nmi(features, labels, seed=config.seed)
        kmeans_time = time.perf_counter() - start

        result.add_row(
            f"{resolution}x{resolution}",
            scalar_nmi, scalar_time,
            interval_nmi, interval_time,
            isvd_nmi, decomposition_time + kmeans_time, decomposition_time, kmeans_time,
        )
    result.add_note(
        "paper shape: interval vectors beat scalar vectors but are slow; the low-rank "
        "ISVD2-b features match the interval accuracy at a fraction of the clustering time"
    )
    return result


def main() -> None:
    """Print the Table 3 comparison."""
    print(run().to_text())


if __name__ == "__main__":
    main()
