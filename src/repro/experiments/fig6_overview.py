"""Figure 6: accuracy overview and execution-time breakdown (default config).

Figure 6(a) compares the harmonic-mean reconstruction accuracy of every
ISVD variant under each decomposition target (plus the LP competitor);
Figure 6(b) breaks the execution time down into preprocessing, decomposition,
alignment and recomposition phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.accuracy import harmonic_mean_accuracy
from repro.datasets.synthetic import SyntheticConfig, generate_trials
from repro.experiments.runner import ExperimentResult, MethodSpec, isvd_grid
from repro.interval.array import IntervalMatrix

_PHASES = ("preprocessing", "decomposition", "alignment", "recomposition")


@dataclass
class Figure6Config:
    """Configuration for the Figure 6 experiment."""

    synthetic: SyntheticConfig = SyntheticConfig()
    trials: int = 3
    seed: Optional[int] = 11
    include_lp: bool = True
    targets: Sequence[str] = ("a", "b", "c")


def _evaluate(matrices: List[IntervalMatrix], spec: MethodSpec, rank: int):
    """Average H-mean and per-phase timings of one method over the trials."""
    scores = []
    timings = {phase: [] for phase in _PHASES}
    for matrix in matrices:
        decomposition = spec.decompose(matrix, rank)
        scores.append(harmonic_mean_accuracy(matrix, decomposition))
        for phase in _PHASES:
            timings[phase].append(decomposition.timings.get(phase, 0.0))
    mean_timings = {phase: float(np.mean(values)) for phase, values in timings.items()}
    return float(np.mean(scores)), mean_timings


def run_accuracy(config: Optional[Figure6Config] = None) -> ExperimentResult:
    """Figure 6(a): H-mean accuracy of every method/target combination."""
    config = config or Figure6Config()
    matrices = list(generate_trials(config.synthetic, trials=config.trials, seed=config.seed))
    specs = isvd_grid(targets=config.targets, include_lp=config.include_lp)

    result = ExperimentResult(
        name="Figure 6(a): H-mean reconstruction accuracy (default configuration)",
        headers=["option", "method", "H-mean"],
    )
    for spec in specs:
        score, _ = _evaluate(matrices, spec, config.synthetic.rank)
        result.add_row(spec.option, spec.label, score)
    result.add_note(f"config: {config.synthetic.describe()}, trials={config.trials}")
    result.add_note("paper shape: ISVD#-b best overall, ISVD4-b highest; LP near zero")
    return result


def run_timings(config: Optional[Figure6Config] = None) -> ExperimentResult:
    """Figure 6(b): execution-time breakdown per phase (option b methods)."""
    config = config or Figure6Config()
    matrices = list(generate_trials(config.synthetic, trials=config.trials, seed=config.seed))
    specs = [spec for spec in isvd_grid(targets=("b",), include_lp=False)]
    specs.insert(0, MethodSpec("ISVD0", "isvd0", "c"))

    result = ExperimentResult(
        name="Figure 6(b): execution time breakdown in seconds (default configuration)",
        headers=["method", *(_PHASES), "total"],
    )
    for spec in specs:
        _, timings = _evaluate(matrices, spec, config.synthetic.rank)
        total = sum(timings.values())
        result.add_row(spec.label, *(timings[phase] for phase in _PHASES), total)
    result.add_note("alignment cost is small relative to decomposition, as in the paper")
    return result


def run(config: Optional[Figure6Config] = None) -> Dict[str, ExperimentResult]:
    """Run both parts of the Figure 6 experiment."""
    config = config or Figure6Config()
    return {"accuracy": run_accuracy(config), "timings": run_timings(config)}


def main() -> None:
    """Print both Figure 6 tables."""
    results = run()
    print(results["accuracy"].to_text())
    print()
    print(results["timings"].to_text(precision=4))


if __name__ == "__main__":
    main()
