"""Figure 6: accuracy overview and execution-time breakdown (default config).

Figure 6(a) compares the harmonic-mean reconstruction accuracy of every
ISVD variant under each decomposition target (plus the LP competitor);
Figure 6(b) breaks the execution time down into preprocessing, decomposition,
alignment and recomposition phases.

Both parts route their grids through the experiment engine, so ``run(...,
engine=ExperimentEngine(jobs=N, cache_dir=...))`` fans the cells out in
parallel and reuses cached decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.synthetic import SyntheticConfig, generate_trials
from repro.experiments.engine import TIMING_PHASES, ExperimentEngine
from repro.experiments.runner import ExperimentResult, MethodSpec, isvd_grid


@dataclass
class Figure6Config:
    """Configuration for the Figure 6 experiment."""

    synthetic: SyntheticConfig = SyntheticConfig()
    trials: int = 3
    seed: Optional[int] = 11
    include_lp: bool = True
    targets: Sequence[str] = ("a", "b", "c")


def run_accuracy(config: Optional[Figure6Config] = None,
                 engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Figure 6(a): H-mean accuracy of every method/target combination."""
    config = config or Figure6Config()
    engine = engine or ExperimentEngine()
    matrices = list(generate_trials(config.synthetic, trials=config.trials, seed=config.seed))
    specs = isvd_grid(targets=config.targets, include_lp=config.include_lp)

    grid = engine.evaluate_grid(matrices, specs, config.synthetic.rank,
                                experiment="fig6_accuracy")
    scores = grid.scores()
    result = ExperimentResult(
        name="Figure 6(a): H-mean reconstruction accuracy (default configuration)",
        headers=["option", "method", "H-mean"],
    )
    for spec in specs:
        result.add_row(spec.option, spec.label, scores[spec.label])
    result.add_records(grid.records)
    result.add_note(f"config: {config.synthetic.describe()}, trials={config.trials}")
    result.add_note("paper shape: ISVD#-b best overall, ISVD4-b highest; LP near zero")
    return result


def run_timings(config: Optional[Figure6Config] = None,
                engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Figure 6(b): execution-time breakdown per phase (option b methods)."""
    config = config or Figure6Config()
    engine = engine or ExperimentEngine()
    # Timing rows are the measurement itself: cached decompositions carry no
    # phase timings, and concurrent cells contend for CPU, so this grid always
    # recomputes serially regardless of the engine's cache/jobs settings.
    if engine.cache is not None or engine.jobs != 1:
        engine = ExperimentEngine(jobs=1, base_seed=engine.base_seed)
    matrices = list(generate_trials(config.synthetic, trials=config.trials, seed=config.seed))
    specs = [spec for spec in isvd_grid(targets=("b",), include_lp=False)]
    specs.insert(0, MethodSpec("ISVD0", "isvd0", "c"))

    grid = engine.evaluate_grid(matrices, specs, config.synthetic.rank,
                                experiment="fig6_timings")
    timings = grid.mean_timings(TIMING_PHASES)
    result = ExperimentResult(
        name="Figure 6(b): execution time breakdown in seconds (default configuration)",
        headers=["method", *(TIMING_PHASES), "total"],
    )
    for spec in specs:
        per_phase = timings[spec.label]
        result.add_row(spec.label, *(per_phase[phase] for phase in TIMING_PHASES),
                       sum(per_phase.values()))
    result.add_records(grid.records)
    result.add_note("alignment cost is small relative to decomposition, as in the paper")
    return result


def run(config: Optional[Figure6Config] = None,
        engine: Optional[ExperimentEngine] = None) -> Dict[str, ExperimentResult]:
    """Run both parts of the Figure 6 experiment."""
    config = config or Figure6Config()
    engine = engine or ExperimentEngine()
    return {"accuracy": run_accuracy(config, engine=engine),
            "timings": run_timings(config, engine=engine)}


def main() -> None:
    """Print both Figure 6 tables."""
    results = run()
    print(results["accuracy"].to_text())
    print()
    print(results["timings"].to_text(precision=4))


if __name__ == "__main__":
    main()
