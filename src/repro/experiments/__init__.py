"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment module exposes a ``Config`` dataclass (with laptop-scale
defaults — increase ``trials`` / grid sizes to approach the paper's settings),
a ``run(config)`` function returning an
:class:`~repro.experiments.runner.ExperimentResult`, and a ``main()`` function
that prints the same rows/series the paper reports.

==================  ===========================================================
Module              Paper artifact
==================  ===========================================================
``alignment``       Figures 3 and 5 (cosine similarity before/after ILSA and
                    before/after ISVD4's V recomputation)
``fig6_overview``   Figure 6(a) accuracy overview and 6(b) timing breakdown
``table2_sweeps``   Tables 2(a)-(e) (option-b parameter sweeps)
``fig7_anonymized`` Figure 7(a)-(c) (anonymized data, three privacy levels)
``fig8_faces``      Figure 8(a)-(c) (face reconstruction / NN / clustering)
``table3_clustering`` Table 3 (clustering accuracy and execution time)
``fig9_social``     Figure 9(a)-(c) (Ciao / Epinions / MovieLens reconstruction)
``fig10_cf``        Figure 10 (collaborative filtering RMSE)
==================  ===========================================================
"""

from repro.experiments.engine import (
    DecompositionCache,
    ExperimentEngine,
    ExperimentRecord,
    GridSpec,
    derive_seed,
    records_to_csv,
    records_to_json,
)
from repro.experiments.runner import ExperimentResult, MethodSpec, DEFAULT_METHOD_GRID
from repro.experiments.report import format_table

__all__ = [
    "ExperimentResult",
    "MethodSpec",
    "DEFAULT_METHOD_GRID",
    "format_table",
    "ExperimentEngine",
    "ExperimentRecord",
    "DecompositionCache",
    "GridSpec",
    "derive_seed",
    "records_to_json",
    "records_to_csv",
]
