"""Figure 10: collaborative filtering RMSE of PMF vs I-PMF vs AI-PMF.

A MovieLens-like rating dataset is split into train/test observations; the
per-rating interval matrix (supplementary F.2) is built from the training
ratings only.  PMF trains on the scalar training ratings, I-PMF and AI-PMF on
the interval training matrix; all three are scored by RMSE on the held-out
ratings, across a sweep of decomposition ranks.  The paper's headline claims
are that AI-PMF always beats I-PMF and overtakes PMF at higher ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

import time

from repro.core.ipmf import AIPMF, IPMF, PMF
from repro.datasets.ratings import RatingsDataset, make_ratings_dataset, rating_interval_matrix
from repro.eval.cf import rating_prediction_rmse
from repro.experiments.engine import ExperimentEngine, ExperimentRecord
from repro.experiments.runner import ExperimentResult
from repro.interval.array import IntervalMatrix


@dataclass
class Figure10Config:
    """Configuration for the collaborative-filtering experiment."""

    n_users: int = 200
    n_items: int = 400
    n_categories: int = 19
    density: float = 0.15
    alpha: float = 0.5
    ranks: Sequence[int] = (10, 40, 80, 120)
    epochs: int = 30
    learning_rate: float = 0.005
    regularization: float = 0.05
    batch_size: Optional[int] = 64
    test_fraction: float = 0.2
    seed: Optional[int] = 71


def _prepare(config: Figure10Config):
    """Build the dataset, train/test masks, and the interval training matrix."""
    dataset = make_ratings_dataset(
        preset="movielens",
        n_users=config.n_users,
        n_items=config.n_items,
        n_categories=config.n_categories,
        density=config.density,
        seed=config.seed,
    )
    train_mask, test_mask = dataset.holdout_split(config.test_fraction, rng=config.seed)
    train_ratings = dataset.ratings * train_mask
    train_dataset = RatingsDataset(
        ratings=train_ratings,
        item_categories=dataset.item_categories,
        n_categories=dataset.n_categories,
        name=dataset.name,
    )
    interval_train = rating_interval_matrix(train_dataset, alpha=config.alpha)
    return dataset, train_ratings, train_mask, test_mask, interval_train


def _model_kwargs(config: Figure10Config, rank: int) -> Dict[str, object]:
    return dict(
        rank=rank,
        learning_rate=config.learning_rate,
        reg_u=config.regularization,
        reg_v=config.regularization,
        epochs=config.epochs,
        batch_size=config.batch_size,
        seed=config.seed,
    )


def run(config: Optional[Figure10Config] = None,
        engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Train PMF / I-PMF / AI-PMF across ranks and report held-out RMSE.

    Each rank's three model fits are independent, so the rank sweep fans out
    through the engine's ``map`` when ``engine.jobs > 1``.
    """
    config = config or Figure10Config()
    engine = engine or ExperimentEngine()
    dataset, train_ratings, train_mask, test_mask, interval_train = _prepare(config)

    result = ExperimentResult(
        name="Figure 10: collaborative filtering RMSE (lower is better)",
        headers=["rank", "PMF", "I-PMF", "AI-PMF"],
    )

    models = (
        ("PMF", "pmf", "c", PMF, lambda: train_ratings),
        ("I-PMF", "ipmf", "a", IPMF, lambda: interval_train),
        ("AI-PMF", "aipmf", "a", AIPMF, lambda: interval_train),
    )

    def run_rank(rank: int) -> List[object]:
        rank = min(rank, min(dataset.ratings.shape))
        row: List[object] = [rank]
        records: List[ExperimentRecord] = []
        for label, method, target, cls, training_data in models:
            start = time.perf_counter()
            model = cls(**_model_kwargs(config, rank)).fit(training_data(), mask=train_mask)
            value = rating_prediction_rmse(model, dataset.ratings, test_mask)
            row.append(value)
            records.append(ExperimentRecord(
                experiment="fig10", trial=0, method=method, label=label,
                target=target, rank=rank, seed=config.seed, metric="rmse",
                value=float(value), duration=time.perf_counter() - start,
            ))
        return [row, records]

    for row, records in engine.map(run_rank, config.ranks):
        result.add_row(*row)
        result.add_records(records)
    result.add_note(
        f"{dataset.n_users} users, {dataset.n_items} items, density {dataset.density:.2f}, "
        f"alpha={config.alpha}, {config.epochs} epochs"
    )
    result.add_note("paper shape: AI-PMF <= I-PMF everywhere; AI-PMF beats PMF at higher ranks")
    return result


def main() -> None:
    """Print the Figure 10 RMSE table."""
    print(run().to_text())


if __name__ == "__main__":
    main()
