"""Figures 3 and 5: how alignment and recomputation tighten the latent factors.

* **Figure 3** — cosine similarity between positionally matched min/max basis
  vectors of the default synthetic configuration, before and after ILSA.
* **Figure 5** — cosine similarity between the min/max versions of both factor
  matrices (V and U), before and after ISVD4's recomputation of V.

Both are reported per basis-vector index, ordered by increasing singular value
as in the paper, averaged over several random matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.ilsa import ilsa, matched_cosines
from repro.core.isvd import isvd, truncated_svd
from repro.datasets.synthetic import SyntheticConfig, generate_trials
from repro.experiments.runner import ExperimentResult
from repro.interval.array import IntervalMatrix


@dataclass
class AlignmentConfig:
    """Configuration for the Figure 3 / Figure 5 experiments."""

    synthetic: SyntheticConfig = SyntheticConfig()
    trials: int = 5
    seed: Optional[int] = 7
    align_method: str = "hungarian"


def _per_matrix_fig3(matrix: IntervalMatrix, rank: int, align_method: str):
    """Before/after matched |cos| series for one matrix (Figure 3)."""
    _, _, v_lower = truncated_svd(matrix.lower, rank)
    _, _, v_upper = truncated_svd(matrix.upper, rank)
    before = np.abs(matched_cosines(v_lower, v_upper))
    after = ilsa(v_lower, v_upper, method=align_method).matched_similarity
    return before, after


def run_figure3(config: Optional[AlignmentConfig] = None) -> ExperimentResult:
    """Figure 3: matched cosine similarity before/after ILSA, per vector index."""
    config = config or AlignmentConfig()
    rank = config.synthetic.rank
    befores: List[np.ndarray] = []
    afters: List[np.ndarray] = []
    for matrix in generate_trials(config.synthetic, trials=config.trials, seed=config.seed):
        before, after = _per_matrix_fig3(matrix, rank, config.align_method)
        befores.append(before)
        afters.append(after)
    mean_before = np.mean(befores, axis=0)
    mean_after = np.mean(afters, axis=0)

    result = ExperimentResult(
        name="Figure 3: cosine similarity of matched min/max basis vectors "
             "(index ordered by increasing singular value)",
        headers=["vector index", "|cos| before alignment", "|cos| after alignment"],
    )
    # The paper orders vectors by increasing singular value: index 1 = smallest.
    for position in range(rank):
        source_index = rank - 1 - position
        result.add_row(position + 1,
                       float(mean_before[source_index]),
                       float(mean_after[source_index]))
    result.add_note(
        f"averaged over {config.trials} matrices of config {config.synthetic.describe()}"
    )
    return result


def _per_matrix_fig5(matrix: IntervalMatrix, rank: int):
    """V and U matched |cos| before (ISVD3) and after (ISVD4) recomputation."""
    before_dec = isvd(matrix, rank, method="isvd3", target="a")
    after_dec = isvd(matrix, rank, method="isvd4", target="a")

    def factor_cosines(decomposition, attribute):
        factor = getattr(decomposition, attribute)
        return np.abs(matched_cosines(factor.lower, factor.upper))

    return (
        factor_cosines(before_dec, "v"),
        factor_cosines(before_dec, "u"),
        factor_cosines(after_dec, "v"),
        factor_cosines(after_dec, "u"),
    )


def run_figure5(config: Optional[AlignmentConfig] = None) -> ExperimentResult:
    """Figure 5: min/max factor similarity before/after ISVD4's V recomputation."""
    config = config or AlignmentConfig()
    rank = config.synthetic.rank
    collected = {"v_before": [], "u_before": [], "v_after": [], "u_after": []}
    for matrix in generate_trials(config.synthetic, trials=config.trials, seed=config.seed):
        v_before, u_before, v_after, u_after = _per_matrix_fig5(matrix, rank)
        collected["v_before"].append(v_before)
        collected["u_before"].append(u_before)
        collected["v_after"].append(v_after)
        collected["u_after"].append(u_after)
    means = {key: np.mean(value, axis=0) for key, value in collected.items()}

    result = ExperimentResult(
        name="Figure 5: min/max factor cosine similarity before/after V recomputation",
        headers=["vector index", "V |cos| before", "U |cos| before",
                 "V |cos| after", "U |cos| after"],
    )
    for position in range(rank):
        source_index = rank - 1 - position
        result.add_row(
            position + 1,
            float(means["v_before"][source_index]),
            float(means["u_before"][source_index]),
            float(means["v_after"][source_index]),
            float(means["u_after"][source_index]),
        )
    result.add_note(
        "V |cos| should increase after recomputation while U |cos| stays high "
        "(paper Section 4.5)"
    )
    return result


def main() -> None:
    """Print the Figure 3 and Figure 5 tables."""
    print(run_figure3().to_text())
    print()
    print(run_figure5().to_text())


if __name__ == "__main__":
    main()
