"""Parallel, cached execution engine for the paper's experiment grids.

The experiments all share one shape of work: a grid of *cells*, each cell one
``(trial matrix, method, target, rank)`` decomposition followed by a scoring
function.  This module runs such grids

* **reproducibly** — every cell gets a seed derived deterministically from the
  engine's base seed and the cell coordinates (:func:`derive_seed`), so a
  parallel run produces records identical to a serial run;
* **in parallel** — cells fan out over a thread pool (``jobs`` knob; numpy's
  linear-algebra kernels release the GIL, so threads scale without the pickling
  cost of process pools);
* **with caching** — an on-disk :class:`DecompositionCache` keyed by
  (data fingerprint, method, target, rank[, seed for stochastic methods])
  reuses the NPZ round-trip of :mod:`repro.io`, so re-running a grid skips
  every decomposition already computed.

Results are structured :class:`ExperimentRecord` rows that export to JSON and
CSV (:func:`records_to_json` / :func:`records_to_csv`).
"""

from __future__ import annotations

import csv
import hashlib
import io as _stdio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import io as repro_io
from repro.core import registry
from repro.core.accuracy import harmonic_mean_accuracy
from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.sparse import as_interval_operand, is_sparse_interval

PathLike = Union[str, Path]

#: Phase names recorded by the ISVD timing breakdown (Figure 6(b)).
TIMING_PHASES = ("preprocessing", "decomposition", "alignment", "recomposition")


def derive_seed(base_seed: Optional[int], *parts: object) -> int:
    """Derive a stable 32-bit seed from a base seed and cell coordinates.

    The same inputs always produce the same seed, independent of process,
    platform and execution order — the property that makes parallel runs
    byte-identical to serial ones.
    """
    text = "|".join([str(base_seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class GridSpec:
    """One method/target cell of an experiment grid (registry-keyed).

    :class:`repro.experiments.runner.MethodSpec` satisfies the same attribute
    shape; the engine accepts either interchangeably.
    """

    label: str
    method: str
    target: str


@dataclass
class ExperimentRecord:
    """One scored decomposition cell, as produced by the engine.

    ``to_dict`` omits the runtime diagnostics (wall-clock duration, cache
    hits, per-phase timings) by default so exported records are deterministic
    across re-runs and across ``jobs`` settings.
    """

    experiment: str
    trial: int
    method: str
    label: str
    target: str
    rank: int
    seed: Optional[int]
    metric: str
    value: float
    duration: float = 0.0
    cache_hit: bool = False
    timings: Dict[str, float] = field(default_factory=dict)

    #: Fields included in the canonical (deterministic) export, in order.
    CANONICAL_FIELDS = (
        "experiment", "trial", "method", "label", "target",
        "rank", "seed", "metric", "value",
    )

    def to_dict(self, include_runtime: bool = False) -> Dict[str, object]:
        """Record as a plain dict; runtime diagnostics only on request."""
        payload: Dict[str, object] = {
            name: getattr(self, name) for name in self.CANONICAL_FIELDS
        }
        if include_runtime:
            payload["duration"] = self.duration
            payload["cache_hit"] = self.cache_hit
            payload["timings"] = dict(self.timings)
        return payload


def records_to_json(records: Sequence[ExperimentRecord],
                    path: Optional[PathLike] = None,
                    include_runtime: bool = False) -> str:
    """Serialize records to deterministic JSON; optionally write it to a file."""
    text = json.dumps(
        [record.to_dict(include_runtime=include_runtime) for record in records],
        indent=2, sort_keys=True,
    )
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def records_to_csv(records: Sequence[ExperimentRecord],
                   path: Optional[PathLike] = None,
                   include_runtime: bool = False) -> str:
    """Serialize records to CSV; optionally write it to a file."""
    fields = list(ExperimentRecord.CANONICAL_FIELDS)
    if include_runtime:
        fields += ["duration", "cache_hit"]
    buffer = _stdio.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(fields)
    for record in records:
        payload = record.to_dict(include_runtime=include_runtime)
        writer.writerow([payload[name] for name in fields])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


class DecompositionCache:
    """On-disk cache of decompositions, one compressed NPZ file per cell.

    Keys are SHA-256 digests over (data fingerprint, method, target, rank) —
    plus the seed and any extra fit options for stochastic methods, whose
    output depends on them.  Writes go through a temp file + ``os.replace`` so
    concurrent workers never observe half-written archives.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _option_token(value: object) -> str:
        """Stable string for one fit option (repr truncates large arrays)."""
        if is_sparse_interval(value):
            return f"sparse-interval:{repro_io.interval_fingerprint(value)}"
        if isinstance(value, IntervalMatrix):
            return f"interval:{repro_io.interval_fingerprint(value)}"
        if isinstance(value, np.ndarray):
            digest = hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest()
            return f"ndarray:{value.shape}:{value.dtype}:{digest}"
        return repr(value)

    def key(self, fingerprint: str, method: str, target: str, rank: int,
            seed: Optional[int] = None, options: Optional[Dict] = None) -> str:
        """Digest identifying one decomposition cell."""
        parts = [fingerprint, str(method), str(target), str(rank)]
        if seed is not None:
            parts.append(str(seed))
        if options:
            parts.append(repr(sorted(
                (name, self._option_token(value)) for name, value in options.items()
            )))
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def load(self, key: str) -> Optional[IntervalDecomposition]:
        """Cached decomposition for a key, or None on a miss."""
        path = self._path(key)
        if not path.exists():
            return None
        return repro_io.load_decomposition_npz(path)

    def store(self, key: str, decomposition: IntervalDecomposition) -> None:
        """Persist a decomposition under a key (atomic within the cache dir)."""
        with repro_io.atomic_write(self._path(key)) as tmp:
            repro_io.save_decomposition_npz(decomposition, tmp)

    def __len__(self) -> int:
        # Dot-prefixed names are in-flight temp files, not cache entries.
        return sum(1 for path in self.directory.glob("*.npz")
                   if not path.name.startswith("."))


@dataclass
class GridResult:
    """Records of one grid run plus the aggregations the experiments need."""

    records: List[ExperimentRecord]

    def scores(self) -> Dict[str, float]:
        """Mean metric value per label, in first-appearance (spec) order."""
        by_label: Dict[str, List[float]] = {}
        for record in self.records:
            by_label.setdefault(record.label, []).append(record.value)
        return {label: float(np.mean(values)) for label, values in by_label.items()}

    def mean_timings(self, phases: Sequence[str] = TIMING_PHASES) -> Dict[str, Dict[str, float]]:
        """Mean per-phase wall-clock timings per label (Figure 6(b) layout).

        Cache hits carry no timings (nothing was computed) and contribute
        zeros, like the phases a method skips.
        """
        by_label: Dict[str, List[Dict[str, float]]] = {}
        for record in self.records:
            by_label.setdefault(record.label, []).append(record.timings)
        return {
            label: {
                phase: float(np.mean([t.get(phase, 0.0) for t in timings]))
                for phase in phases
            }
            for label, timings in by_label.items()
        }

    def cache_hits(self) -> int:
        """Number of cells served from the decomposition cache."""
        return sum(1 for record in self.records if record.cache_hit)


#: Scoring function signature: (matrix, decomposition) -> float.
ScoreFn = Callable[[IntervalMatrix, IntervalDecomposition], float]


class ExperimentEngine:
    """Runs experiment grids with seeded, parallel, cached execution.

    Parameters
    ----------
    jobs:
        Number of worker threads for cell fan-out.  ``1`` (default) runs
        serially; ``0`` or negative means one worker per CPU.
    cache_dir:
        Directory for the on-disk decomposition cache, or ``None`` (default)
        to disable caching.
    base_seed:
        Root of the per-cell seed derivation (:func:`derive_seed`).  Two
        engines with the same base seed produce identical records for the
        same grid, regardless of ``jobs`` or cache state.
    kernel:
        Interval-product kernel (:mod:`repro.interval.kernels`) passed to
        every kernel-aware method the engine runs (see
        :attr:`~repro.core.registry.FactorizerInfo.kernel_aware`).  ``None``
        (default) keeps the paper-faithful ``endpoint4`` construction so
        reproduced numbers match the paper; a non-default kernel becomes part
        of each cell's cache key, so cached ``endpoint4`` results are never
        served for a ``rump``/``exact`` run or vice versa.  Selecting the
        default kernel explicitly is normalized to ``None``, so it reuses
        (and feeds) the same cache entries as a default run.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[PathLike] = None,
                 base_seed: int = 0, kernel: Optional[str] = None):
        if jobs < 1:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.cache = DecompositionCache(cache_dir) if cache_dir else None
        self.base_seed = base_seed
        if kernel is not None:
            from repro.interval.kernels import DEFAULT_KERNEL, get_kernel

            kernel = get_kernel(kernel).key  # fail fast on typos, store the key
            if kernel == DEFAULT_KERNEL:
                kernel = None  # byte-identical to a default run: share its cache
        self.kernel = kernel

    # ------------------------------------------------------------------ #
    # Generic parallel primitives
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item, in input order, fanning out over jobs."""
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))

    # ------------------------------------------------------------------ #
    # Single-cell execution
    # ------------------------------------------------------------------ #
    def decompose(
        self,
        matrix: Union[IntervalMatrix, np.ndarray],
        method: str,
        rank: int,
        target: Optional[str] = None,
        seed: Optional[int] = None,
        fingerprint: Optional[str] = None,
        **options: object,
    ) -> Tuple[IntervalDecomposition, bool]:
        """Decompose one matrix through the registry, consulting the cache.

        Returns ``(decomposition, cache_hit)``.  Cached decompositions carry
        factors, target, method and rank but no timings (nothing ran).
        ``fingerprint`` lets grid runs pass a precomputed data fingerprint so
        the matrix is not re-hashed for every spec.  A stochastic method with
        no seed is a fresh random draw each call, so it is never cached.

        Sparse matrices pass through untouched (sparse-aware methods execute
        them in sparse BLAS; others densify at the registry boundary) and
        fingerprint via their CSR representation — a sparse matrix never
        shares cache entries with its dense equivalent, because the two
        representations take different execution paths.
        """
        info = registry.get(method)
        if target is None:
            target = info.default_target
        matrix = as_interval_operand(matrix)
        if self.kernel is not None and info.kernel_aware:
            options.setdefault("kernel", self.kernel)

        cache_key = None
        if self.cache is not None and not (info.stochastic and seed is None):
            if fingerprint is None:
                fingerprint = repro_io.interval_fingerprint(matrix)
            cache_key = self.cache.key(
                fingerprint, info.key, target, rank,
                seed=seed if info.stochastic else None,
                options=dict(options) if options else None,
            )
            cached = self.cache.load(cache_key)
            if cached is not None:
                return cached, True

        decomposition = info.fit(matrix, rank, target=target, seed=seed, **options)
        if cache_key is not None:
            self.cache.store(cache_key, decomposition)
        return decomposition, False

    # ------------------------------------------------------------------ #
    # Grid execution
    # ------------------------------------------------------------------ #
    def evaluate_grid(
        self,
        matrices: Sequence[IntervalMatrix],
        specs: Sequence[GridSpec],
        rank: int,
        experiment: str = "",
        score_fn: ScoreFn = harmonic_mean_accuracy,
        metric: str = "h_mean",
    ) -> GridResult:
        """Score every (trial x method/target) cell of a grid.

        ``specs`` is any sequence of objects with ``label`` / ``method`` /
        ``target`` attributes (:class:`GridSpec`, or the runner's
        ``MethodSpec``).  The requested rank is clipped to each trial matrix,
        matching the behaviour of the serial harness.
        """
        matrices = list(matrices)
        specs = list(specs)
        cells = [(spec, trial) for spec in specs for trial in range(len(matrices))]
        fingerprints = (
            [repro_io.interval_fingerprint(matrix) for matrix in matrices]
            if self.cache is not None else [None] * len(matrices)
        )

        def run_cell(cell: Tuple[GridSpec, int]) -> ExperimentRecord:
            spec, trial = cell
            matrix = matrices[trial]
            effective_rank = min(rank, min(matrix.shape))
            seed = derive_seed(
                self.base_seed, experiment, spec.method, spec.target,
                effective_rank, trial,
            )
            start = time.perf_counter()
            decomposition, cache_hit = self.decompose(
                matrix, spec.method, effective_rank, target=spec.target, seed=seed,
                fingerprint=fingerprints[trial],
            )
            value = float(score_fn(matrix, decomposition))
            return ExperimentRecord(
                experiment=experiment,
                trial=trial,
                method=spec.method,
                label=spec.label,
                target=spec.target,
                rank=effective_rank,
                seed=seed,
                metric=metric,
                value=value,
                duration=time.perf_counter() - start,
                cache_hit=cache_hit,
                timings=dict(decomposition.timings),
            )

        return GridResult(records=self.map(run_cell, cells))
