"""Shared experiment plumbing: method grids, trial averaging, result containers.

Method dispatch goes through the factorizer registry
(:mod:`repro.core.registry`) and grid execution through the experiment engine
(:mod:`repro.experiments.engine`); the helpers here keep the historical
call shapes (``average_hmean``, ``evaluate_grid``) as thin wrappers so the
figure modules and external callers stay source-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import registry
from repro.core.result import IntervalDecomposition
from repro.experiments.engine import ExperimentEngine, ExperimentRecord
from repro.interval.array import IntervalMatrix


@dataclass(frozen=True)
class MethodSpec:
    """One decomposition method/target combination evaluated by an experiment.

    ``method`` is a key of the factorizer registry, so any registered
    algorithm (ISVD variants, LP, NMF/PMF families, interval PCA) can appear
    in an experiment grid.
    """

    label: str
    method: str
    target: str

    def decompose(self, matrix: IntervalMatrix, rank: int,
                  seed: Optional[int] = None) -> IntervalDecomposition:
        """Run the decomposition this spec describes (via the registry)."""
        return registry.get(self.method).fit(matrix, rank, target=self.target, seed=seed)

    @property
    def option(self) -> str:
        """Decomposition target letter (a/b/c), for grouping in reports."""
        return self.target


def isvd_grid(targets: Sequence[str] = ("a", "b", "c"),
              include_lp: bool = False) -> List[MethodSpec]:
    """The method grid of Figure 6 / Figure 7 / Figure 9.

    ISVD0 only exists for target ``c``; ISVD1..4 exist for every requested
    target; the LP competitor is optional (it is slow and scores near zero).
    """
    specs: List[MethodSpec] = []
    for target in targets:
        if target == "c":
            specs.append(MethodSpec("ISVD0", "isvd0", "c"))
        for index in (1, 2, 3, 4):
            specs.append(MethodSpec(f"ISVD{index}-{target}", f"isvd{index}", target))
        if include_lp:
            specs.append(MethodSpec(f"LP-{target}", "lp", target))
    return specs


#: Option-b grid used by the Table 2 sweeps (plus the fast ISVD0 alternative).
DEFAULT_METHOD_GRID: Tuple[MethodSpec, ...] = (
    MethodSpec("ISVD0", "isvd0", "c"),
    MethodSpec("ISVD1-b", "isvd1", "b"),
    MethodSpec("ISVD2-b", "isvd2", "b"),
    MethodSpec("ISVD3-b", "isvd3", "b"),
    MethodSpec("ISVD4-b", "isvd4", "b"),
)


@dataclass
class ExperimentResult:
    """Rows produced by one experiment, plus the header used to print them.

    Engine-backed experiments also attach their per-cell
    :class:`~repro.experiments.engine.ExperimentRecord` rows, which the CLI
    exports to JSON/CSV.
    """

    name: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    records: List[ExperimentRecord] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one result row."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-form note printed after the table."""
        self.notes.append(note)

    def add_records(self, records: Sequence[ExperimentRecord]) -> None:
        """Attach the engine records behind the rows."""
        self.records.extend(records)

    def to_text(self, precision: int = 3) -> str:
        """Render the result as the table printed by ``main()``."""
        from repro.experiments.report import format_table

        text = format_table(self.headers, self.rows, title=self.name, precision=precision)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def as_dict_rows(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready payload: headers, rows, notes and canonical records."""
        return {
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "records": [record.to_dict() for record in self.records],
        }


def average_hmean(
    matrices: Sequence[IntervalMatrix],
    spec: MethodSpec,
    rank: int,
    engine: Optional[ExperimentEngine] = None,
) -> float:
    """Average harmonic-mean reconstruction accuracy of a method over trials."""
    engine = engine or ExperimentEngine()
    return engine.evaluate_grid(matrices, [spec], rank).scores()[spec.label]


def evaluate_grid(
    matrices: Sequence[IntervalMatrix],
    specs: Sequence[MethodSpec],
    rank: int,
    engine: Optional[ExperimentEngine] = None,
    experiment: str = "",
) -> Dict[str, float]:
    """Average H-mean accuracy per method label over a set of trial matrices."""
    engine = engine or ExperimentEngine()
    return engine.evaluate_grid(matrices, specs, rank, experiment=experiment).scores()


def rank_order(scores: Dict[str, float]) -> Dict[str, int]:
    """Rank labels by descending score (1 = best), as in Figures 7 and 9.

    Score ties are broken by label (ascending), so the ordering never depends
    on dict insertion order.
    """
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return {label: position + 1 for position, (label, _) in enumerate(ordered)}
