"""Figure 8: face-image analysis (reconstruction, NN classification, clustering).

The three sub-experiments share one interval-valued face dataset (a synthetic
substitute for ORL, see DESIGN.md) and compare the ISVD family against the NMF
and I-NMF competitors:

* (a) reconstruction RMSE of the original pixel matrix from low-rank factors;
* (b) macro-F1 of 1-NN classification on the ``U x Sigma`` latent features
  (interval Euclidean distance, 50% of each subject's images for training);
* (c) NMI of K-means clustering (K = number of subjects) on the same features.

Every method is dispatched through the factorizer registry, and the
(rank x method) cells fan out through the experiment engine's ``map`` when an
engine with ``jobs > 1`` is passed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import registry
from repro.core.reconstruct import reconstruct
from repro.datasets.faces import FaceDataset, make_face_dataset
from repro.eval.kmeans import kmeans_nmi
from repro.eval.knn import nn_classification_f1
from repro.eval.metrics import rmse_score
from repro.experiments.engine import ExperimentEngine, ExperimentRecord
from repro.experiments.runner import ExperimentResult


@dataclass
class Figure8Config:
    """Configuration for the face experiments (reduced defaults; see DESIGN.md)."""

    n_subjects: int = 20
    images_per_subject: int = 8
    resolution: int = 24
    reconstruction_ranks: Sequence[int] = (10, 50, 100)
    classification_ranks: Sequence[int] = (10, 20, 40)
    nmf_iterations: int = 60
    seed: Optional[int] = 41
    train_fraction: float = 0.5

    def dataset(self) -> FaceDataset:
        """Build the face dataset for this configuration."""
        return make_face_dataset(
            n_subjects=self.n_subjects,
            images_per_subject=self.images_per_subject,
            resolution=self.resolution,
            seed=self.seed,
        )


#: Methods compared in Figure 8 (label -> registry key and target).
_FACE_METHODS: Dict[str, Dict[str, str]] = {
    "NMF": {"method": "nmf", "target": "c"},
    "I-NMF": {"method": "inmf", "target": "a"},
    "ISVD0": {"method": "isvd0", "target": "c"},
    "ISVD1-b": {"method": "isvd1", "target": "b"},
    "ISVD2-b": {"method": "isvd2", "target": "b"},
    "ISVD3-b": {"method": "isvd3", "target": "b"},
    "ISVD4-b": {"method": "isvd4", "target": "b"},
    "ISVD4-c": {"method": "isvd4", "target": "c"},
}


def _fit_method(label: str, dataset: FaceDataset, rank: int, config: Figure8Config,
                engine: Optional[ExperimentEngine] = None):
    """Fit one method via the registry; return ``(reconstruction_midpoint, features)``.

    Going through ``engine.decompose`` means a ``--cache-dir`` engine reuses
    decompositions across the three sub-experiments and across reruns.
    """
    engine = engine or ExperimentEngine()
    options = _FACE_METHODS[label]
    info = registry.get(options["method"])
    rank = min(rank, min(dataset.intervals.shape))
    matrix = dataset.intervals
    fit_options: Dict[str, object] = {}
    if info.requires_nonnegative:
        matrix = matrix.clip_nonnegative()
    if info.cost == "iterative":
        fit_options["max_iter"] = config.nmf_iterations
    decomposition, _ = engine.decompose(matrix, options["method"], rank,
                                        target=options["target"],
                                        seed=config.seed, **fit_options)
    reconstruction = reconstruct(decomposition).midpoint()
    features = decomposition.projection()
    return reconstruction, features


def run_reconstruction(config: Optional[Figure8Config] = None,
                       methods: Optional[Sequence[str]] = None,
                       engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Figure 8(a): reconstruction RMSE per rank (lower is better)."""
    config = config or Figure8Config()
    engine = engine or ExperimentEngine()
    methods = list(methods or ("NMF", "I-NMF", "ISVD0", "ISVD4-b", "ISVD4-c"))
    dataset = config.dataset()

    cells: List[Tuple[int, str]] = [
        (rank, label) for rank in config.reconstruction_ranks for label in methods
    ]

    def score_cell(cell: Tuple[int, str]) -> Tuple[float, float]:
        rank, label = cell
        start = time.perf_counter()
        reconstruction, _ = _fit_method(label, dataset, rank, config, engine=engine)
        value = rmse_score(dataset.images, reconstruction)
        return value, time.perf_counter() - start

    outcomes = engine.map(score_cell, cells)
    values = [value for value, _ in outcomes]

    result = ExperimentResult(
        name="Figure 8(a): face reconstruction RMSE (lower is better)",
        headers=["rank", *methods],
    )
    for i, rank in enumerate(config.reconstruction_ranks):
        result.add_row(rank, *values[i * len(methods):(i + 1) * len(methods)])
    result.add_records(_cell_records("fig8_reconstruction", dataset, config,
                                     cells, outcomes, "rmse"))
    result.add_note("ISVD0 / ISVD4-b / ISVD4-c should beat NMF and I-NMF (paper Section 6.4.1)")
    return result


def _classification_features(label: str, dataset: FaceDataset, rank: int,
                             config: Figure8Config,
                             engine: Optional[ExperimentEngine] = None):
    _, features = _fit_method(label, dataset, rank, config, engine=engine)
    return features


def _cell_records(experiment: str, dataset: FaceDataset, config: Figure8Config,
                  cells: Sequence[Tuple[int, str]],
                  outcomes: Sequence[Tuple[float, float]],
                  metric: str) -> List[ExperimentRecord]:
    """One structured record per (rank, method) cell of a face experiment."""
    records = []
    for (rank, label), (value, duration) in zip(cells, outcomes):
        options = _FACE_METHODS[label]
        records.append(ExperimentRecord(
            experiment=experiment, trial=0, method=options["method"], label=label,
            target=options["target"], rank=min(rank, min(dataset.intervals.shape)),
            seed=config.seed, metric=metric, value=float(value), duration=duration,
        ))
    return records


def run_nn_classification(config: Optional[Figure8Config] = None,
                          methods: Optional[Sequence[str]] = None,
                          engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Figure 8(b): 1-NN classification macro-F1 per rank (higher is better)."""
    config = config or Figure8Config()
    engine = engine or ExperimentEngine()
    methods = list(methods or ("NMF", "I-NMF", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"))
    dataset = config.dataset()
    train_idx, test_idx = dataset.train_test_split(config.train_fraction, rng=config.seed)

    cells: List[Tuple[int, str]] = [
        (rank, label) for rank in config.classification_ranks for label in methods
    ]

    def score_cell(cell: Tuple[int, str]) -> Tuple[float, float]:
        rank, label = cell
        start = time.perf_counter()
        features = _classification_features(label, dataset, rank, config, engine=engine)
        train_features = features[train_idx, :]
        test_features = features[test_idx, :]
        value = nn_classification_f1(
            train_features, dataset.labels[train_idx],
            test_features, dataset.labels[test_idx],
        )
        return value, time.perf_counter() - start

    outcomes = engine.map(score_cell, cells)
    values = [value for value, _ in outcomes]

    result = ExperimentResult(
        name="Figure 8(b): 1-NN classification macro-F1 (higher is better)",
        headers=["rank", *methods],
    )
    for i, rank in enumerate(config.classification_ranks):
        result.add_row(rank, *values[i * len(methods):(i + 1) * len(methods)])
    result.add_records(_cell_records("fig8_nn_classification", dataset, config,
                                     cells, outcomes, "macro_f1"))
    result.add_note("ISVD1/ISVD2 are the paper's best performers at low ranks (Section 6.4.2)")
    return result


def run_clustering(config: Optional[Figure8Config] = None,
                   methods: Optional[Sequence[str]] = None,
                   engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """Figure 8(c): K-means clustering NMI per rank (higher is better)."""
    config = config or Figure8Config()
    engine = engine or ExperimentEngine()
    methods = list(methods or ("NMF", "I-NMF", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"))
    dataset = config.dataset()

    cells: List[Tuple[int, str]] = [
        (rank, label) for rank in config.classification_ranks for label in methods
    ]

    def score_cell(cell: Tuple[int, str]) -> Tuple[float, float]:
        rank, label = cell
        start = time.perf_counter()
        features = _classification_features(label, dataset, rank, config, engine=engine)
        value = kmeans_nmi(features, dataset.labels, seed=config.seed)
        return value, time.perf_counter() - start

    outcomes = engine.map(score_cell, cells)
    values = [value for value, _ in outcomes]

    result = ExperimentResult(
        name="Figure 8(c): clustering NMI (higher is better)",
        headers=["rank", *methods],
    )
    for i, rank in enumerate(config.classification_ranks):
        result.add_row(rank, *values[i * len(methods):(i + 1) * len(methods)])
    result.add_records(_cell_records("fig8_clustering", dataset, config,
                                     cells, outcomes, "nmi"))
    result.add_note("clustering with K = number of subjects, scored with NMI")
    return result


def run(config: Optional[Figure8Config] = None,
        engine: Optional[ExperimentEngine] = None) -> Dict[str, ExperimentResult]:
    """Run all three face experiments."""
    config = config or Figure8Config()
    engine = engine or ExperimentEngine()
    return {
        "reconstruction": run_reconstruction(config, engine=engine),
        "nn_classification": run_nn_classification(config, engine=engine),
        "clustering": run_clustering(config, engine=engine),
    }


def main() -> None:
    """Print the Figure 8(a)-(c) tables."""
    for result in run().values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
