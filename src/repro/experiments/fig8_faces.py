"""Figure 8: face-image analysis (reconstruction, NN classification, clustering).

The three sub-experiments share one interval-valued face dataset (a synthetic
substitute for ORL, see DESIGN.md) and compare the ISVD family against the NMF
and I-NMF competitors:

* (a) reconstruction RMSE of the original pixel matrix from low-rank factors;
* (b) macro-F1 of 1-NN classification on the ``U x Sigma`` latent features
  (interval Euclidean distance, 50% of each subject's images for training);
* (c) NMI of K-means clustering (K = number of subjects) on the same features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.inmf import INMF, NMF
from repro.core.isvd import isvd
from repro.core.reconstruct import reconstruct
from repro.datasets.faces import FaceDataset, make_face_dataset
from repro.eval.kmeans import kmeans_nmi
from repro.eval.knn import nn_classification_f1
from repro.eval.metrics import rmse_score
from repro.experiments.runner import ExperimentResult
from repro.interval.array import IntervalMatrix


@dataclass
class Figure8Config:
    """Configuration for the face experiments (reduced defaults; see DESIGN.md)."""

    n_subjects: int = 20
    images_per_subject: int = 8
    resolution: int = 24
    reconstruction_ranks: Sequence[int] = (10, 50, 100)
    classification_ranks: Sequence[int] = (10, 20, 40)
    nmf_iterations: int = 60
    seed: Optional[int] = 41
    train_fraction: float = 0.5

    def dataset(self) -> FaceDataset:
        """Build the face dataset for this configuration."""
        return make_face_dataset(
            n_subjects=self.n_subjects,
            images_per_subject=self.images_per_subject,
            resolution=self.resolution,
            seed=self.seed,
        )


#: Methods compared in Figure 8 (label -> (kind, options)).
_FACE_METHODS: Dict[str, Dict[str, str]] = {
    "NMF": {"kind": "nmf"},
    "I-NMF": {"kind": "inmf"},
    "ISVD0": {"kind": "isvd", "method": "isvd0", "target": "c"},
    "ISVD1-b": {"kind": "isvd", "method": "isvd1", "target": "b"},
    "ISVD2-b": {"kind": "isvd", "method": "isvd2", "target": "b"},
    "ISVD3-b": {"kind": "isvd", "method": "isvd3", "target": "b"},
    "ISVD4-b": {"kind": "isvd", "method": "isvd4", "target": "b"},
    "ISVD4-c": {"kind": "isvd", "method": "isvd4", "target": "c"},
}


def _fit_method(label: str, dataset: FaceDataset, rank: int, config: Figure8Config):
    """Fit one method and return ``(reconstruction_midpoint, features)``."""
    options = _FACE_METHODS[label]
    rank = min(rank, min(dataset.intervals.shape))
    if options["kind"] == "nmf":
        model = NMF(rank=rank, max_iter=config.nmf_iterations, seed=config.seed)
        model.fit(dataset.intervals)
        return model.reconstruct(), model.features()
    if options["kind"] == "inmf":
        model = INMF(rank=rank, max_iter=config.nmf_iterations, seed=config.seed)
        model.fit(dataset.intervals.clip_nonnegative())
        return model.reconstruct().midpoint(), model.features()
    decomposition = isvd(
        dataset.intervals, rank, method=options["method"], target=options["target"]
    )
    reconstruction = reconstruct(decomposition).midpoint()
    features = decomposition.projection()
    return reconstruction, features


def run_reconstruction(config: Optional[Figure8Config] = None,
                       methods: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 8(a): reconstruction RMSE per rank (lower is better)."""
    config = config or Figure8Config()
    methods = list(methods or ("NMF", "I-NMF", "ISVD0", "ISVD4-b", "ISVD4-c"))
    dataset = config.dataset()

    result = ExperimentResult(
        name="Figure 8(a): face reconstruction RMSE (lower is better)",
        headers=["rank", *methods],
    )
    for rank in config.reconstruction_ranks:
        row: List[object] = [rank]
        for label in methods:
            reconstruction, _ = _fit_method(label, dataset, rank, config)
            row.append(rmse_score(dataset.images, reconstruction))
        result.add_row(*row)
    result.add_note("ISVD0 / ISVD4-b / ISVD4-c should beat NMF and I-NMF (paper Section 6.4.1)")
    return result


def _classification_features(label: str, dataset: FaceDataset, rank: int,
                             config: Figure8Config):
    _, features = _fit_method(label, dataset, rank, config)
    return features


def run_nn_classification(config: Optional[Figure8Config] = None,
                          methods: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 8(b): 1-NN classification macro-F1 per rank (higher is better)."""
    config = config or Figure8Config()
    methods = list(methods or ("NMF", "I-NMF", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"))
    dataset = config.dataset()
    train_idx, test_idx = dataset.train_test_split(config.train_fraction, rng=config.seed)

    result = ExperimentResult(
        name="Figure 8(b): 1-NN classification macro-F1 (higher is better)",
        headers=["rank", *methods],
    )
    for rank in config.classification_ranks:
        row: List[object] = [rank]
        for label in methods:
            features = _classification_features(label, dataset, rank, config)
            if isinstance(features, IntervalMatrix):
                train_features = features[train_idx, :]
                test_features = features[test_idx, :]
            else:
                train_features = features[train_idx]
                test_features = features[test_idx]
            row.append(
                nn_classification_f1(
                    train_features, dataset.labels[train_idx],
                    test_features, dataset.labels[test_idx],
                )
            )
        result.add_row(*row)
    result.add_note("ISVD1/ISVD2 are the paper's best performers at low ranks (Section 6.4.2)")
    return result


def run_clustering(config: Optional[Figure8Config] = None,
                   methods: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 8(c): K-means clustering NMI per rank (higher is better)."""
    config = config or Figure8Config()
    methods = list(methods or ("NMF", "I-NMF", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"))
    dataset = config.dataset()

    result = ExperimentResult(
        name="Figure 8(c): clustering NMI (higher is better)",
        headers=["rank", *methods],
    )
    for rank in config.classification_ranks:
        row: List[object] = [rank]
        for label in methods:
            features = _classification_features(label, dataset, rank, config)
            row.append(kmeans_nmi(features, dataset.labels, seed=config.seed))
        result.add_row(*row)
    result.add_note("clustering with K = number of subjects, scored with NMI")
    return result


def run(config: Optional[Figure8Config] = None) -> Dict[str, ExperimentResult]:
    """Run all three face experiments."""
    config = config or Figure8Config()
    return {
        "reconstruction": run_reconstruction(config),
        "nn_classification": run_nn_classification(config),
        "clustering": run_clustering(config),
    }


def main() -> None:
    """Print the Figure 8(a)-(c) tables."""
    for result in run().values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
