"""Plain-text table rendering for experiment reports.

The paper reports its results as tables and series of numbers; the experiment
modules print the same rows with this small formatter so the reproduction can
be compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Floats are formatted with ``precision`` decimals; ``None`` renders as ``-``.
    """
    formatted_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell],
                  precision: int = 3) -> str:
    """Render an (x, y) series on one line, e.g. for figure-style results."""
    if len(xs) != len(ys):
        raise ValueError("series x and y lengths differ")
    pairs = ", ".join(
        f"{_format_cell(x, precision)}:{_format_cell(y, precision)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
