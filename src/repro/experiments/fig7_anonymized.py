"""Figure 7: reconstruction accuracy on anonymized (generalized) data.

For each privacy profile (high / medium / low anonymization mixtures of the
L1..L4 generalization levels) and each target rank fraction (100%, 50%, 5% of
the full rank), the experiment reports the harmonic-mean accuracy of every
ISVD variant under each decomposition target, together with its rank order
among the methods — the same layout as the paper's Figure 7 tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.anonymized import PRIVACY_PROFILES, make_anonymized_matrix
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    ExperimentResult,
    MethodSpec,
    isvd_grid,
    rank_order,
)
from repro.interval.array import IntervalMatrix
from repro.interval.random import default_rng


@dataclass
class Figure7Config:
    """Configuration for the anonymized-data experiment."""

    shape: Tuple[int, int] = (40, 250)
    trials: int = 3
    seed: Optional[int] = 31
    rank_fractions: Sequence[float] = (1.0, 0.5, 0.05)
    profiles: Sequence[str] = ("high", "medium", "low")
    include_lp: bool = False


def _rank_from_fraction(shape: Tuple[int, int], fraction: float) -> int:
    full_rank = min(shape)
    return max(1, int(round(full_rank * fraction)))


def run_profile(profile: str, config: Optional[Figure7Config] = None,
                engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """One privacy profile's table (Figure 7(a), (b) or (c))."""
    config = config or Figure7Config()
    engine = engine or ExperimentEngine()
    if profile not in PRIVACY_PROFILES:
        raise ValueError(f"unknown privacy profile {profile!r}")
    rng = default_rng(config.seed)
    matrices: List[IntervalMatrix] = [
        make_anonymized_matrix(shape=config.shape, profile=profile, rng=rng)
        for _ in range(config.trials)
    ]
    specs = isvd_grid(targets=("a", "b", "c"), include_lp=config.include_lp)

    headers = ["option", "method"]
    for fraction in config.rank_fractions:
        headers.extend([f"{fraction:.0%} rank H-mean", f"{fraction:.0%} rank order"])
    result = ExperimentResult(
        name=f"Figure 7 ({profile} privacy): H-mean accuracy per rank fraction",
        headers=headers,
    )

    per_fraction_scores: Dict[float, Dict[str, float]] = {}
    per_fraction_orders: Dict[float, Dict[str, int]] = {}
    for fraction in config.rank_fractions:
        rank = _rank_from_fraction(config.shape, fraction)
        grid = engine.evaluate_grid(matrices, specs, rank,
                                    experiment=f"fig7_{profile}")
        scores = grid.scores()
        per_fraction_scores[fraction] = scores
        per_fraction_orders[fraction] = rank_order(scores)
        result.add_records(grid.records)

    for spec in specs:
        row: List[object] = [spec.option, spec.label]
        for fraction in config.rank_fractions:
            row.append(per_fraction_scores[fraction][spec.label])
            row.append(per_fraction_orders[fraction][spec.label])
        result.add_row(*row)
    result.add_note(
        f"profile weights {dict(PRIVACY_PROFILES[profile].weights)}, "
        f"matrix {config.shape[0]}x{config.shape[1]}, trials={config.trials}"
    )
    return result


def run(config: Optional[Figure7Config] = None,
        engine: Optional[ExperimentEngine] = None) -> Dict[str, ExperimentResult]:
    """Run the experiment for every requested privacy profile."""
    config = config or Figure7Config()
    engine = engine or ExperimentEngine()
    return {profile: run_profile(profile, config, engine=engine)
            for profile in config.profiles}


def main() -> None:
    """Print the Figure 7 tables for all privacy profiles."""
    for result in run().values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
