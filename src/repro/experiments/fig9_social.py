"""Figure 9: reconstruction accuracy on user-category rating-range matrices.

For each of the three social-media datasets (synthetic substitutes for Ciao,
Epinions and MovieLens — see DESIGN.md), the user x category interval matrix
of rating ranges is decomposed at 100%, 50% and 5% of its full rank (the
number of categories) with every ISVD variant under each decomposition target;
the harmonic-mean accuracy and the method's rank order are reported, matching
the layout of the paper's Figure 9 tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datasets.ratings import (
    SOCIAL_MEDIA_PRESETS,
    make_ratings_dataset,
    user_category_interval_matrix,
)
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    ExperimentResult,
    isvd_grid,
    rank_order,
)


@dataclass
class Figure9Config:
    """Configuration for the social-media reconstruction experiment."""

    datasets: Sequence[str] = ("ciao", "epinions", "movielens")
    rank_fractions: Sequence[float] = (1.0, 0.5, 0.05)
    seed: Optional[int] = 61
    include_lp: bool = False
    #: Optional scale factor (0, 1] shrinking the preset user/item counts further.
    scale: float = 0.5


def _scaled_dataset(name: str, config: Figure9Config):
    preset = SOCIAL_MEDIA_PRESETS[name]
    n_users = max(preset.n_categories * 2, int(preset.n_users * config.scale))
    n_items = max(preset.n_categories * 2, int(preset.n_items * config.scale))
    return make_ratings_dataset(
        preset=name, n_users=n_users, n_items=n_items, seed=config.seed
    )


def run_dataset(name: str, config: Optional[Figure9Config] = None,
                engine: Optional[ExperimentEngine] = None) -> ExperimentResult:
    """One dataset's table (Figure 9(a), (b) or (c))."""
    config = config or Figure9Config()
    engine = engine or ExperimentEngine()
    if name not in SOCIAL_MEDIA_PRESETS:
        raise ValueError(f"unknown dataset {name!r}; expected one of {sorted(SOCIAL_MEDIA_PRESETS)}")
    dataset = _scaled_dataset(name, config)
    matrix = user_category_interval_matrix(dataset)
    full_rank = dataset.n_categories
    specs = isvd_grid(targets=("a", "b", "c"), include_lp=config.include_lp)

    headers = ["option", "method"]
    ranks = []
    for fraction in config.rank_fractions:
        rank = max(1, int(round(full_rank * fraction)))
        ranks.append(rank)
        headers.extend([f"{fraction:.0%} rank (={rank}) H-mean", f"{fraction:.0%} order"])

    result = ExperimentResult(
        name=f"Figure 9 ({name}): H-mean accuracy of user-category range reconstruction",
        headers=headers,
    )
    per_rank_scores: List[Dict[str, float]] = []
    per_rank_orders: List[Dict[str, int]] = []
    for rank in ranks:
        grid = engine.evaluate_grid([matrix], specs, rank,
                                    experiment=f"fig9_{name}")
        scores = grid.scores()
        per_rank_scores.append(scores)
        per_rank_orders.append(rank_order(scores))
        result.add_records(grid.records)

    for spec in specs:
        row: List[object] = [spec.option, spec.label]
        for scores, orders in zip(per_rank_scores, per_rank_orders):
            row.append(scores[spec.label])
            row.append(orders[spec.label])
        result.add_row(*row)
    result.add_note(
        f"{dataset.n_users} users, {dataset.n_items} items, {full_rank} categories, "
        f"density {dataset.density:.2f} (synthetic substitute, see DESIGN.md)"
    )
    return result


def run(config: Optional[Figure9Config] = None,
        engine: Optional[ExperimentEngine] = None) -> Dict[str, ExperimentResult]:
    """Run the experiment for every configured dataset."""
    config = config or Figure9Config()
    engine = engine or ExperimentEngine()
    return {name: run_dataset(name, config, engine=engine)
            for name in config.datasets}


def main() -> None:
    """Print the Figure 9 tables for all datasets."""
    for result in run().values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
