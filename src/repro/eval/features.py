"""Latent features from any registered factorization method.

The classification/clustering experiments all consume the same feature
representation: the row projections ``U x Sigma`` of a decomposition.  This
helper makes that representation available for *any* key of the factorizer
registry, so the evaluation entry points are not tied to the ISVD family.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core import registry
from repro.interval.array import IntervalMatrix


def latent_features(
    matrix: Union[IntervalMatrix, np.ndarray],
    method: str,
    rank: int,
    target: Optional[str] = None,
    seed: Optional[int] = None,
    **options: object,
) -> IntervalMatrix:
    """Row features ``U x Sigma`` of a registered method's decomposition.

    ``method`` is any key of :mod:`repro.core.registry` (``isvd4``, ``inmf``,
    ``interval-pca``, ...).  The rank is clipped to the matrix, and inputs are
    clipped to non-negative values for methods that require it, so any
    registered key works on any interval matrix.  The result is an interval
    matrix (degenerate for scalar-only methods), which every evaluator in
    :mod:`repro.eval` accepts.
    """
    info = registry.get(method)
    matrix = IntervalMatrix.coerce(matrix)
    if info.requires_nonnegative:
        matrix = matrix.clip_nonnegative()
    rank = min(rank, min(matrix.shape))
    decomposition = info.fit(matrix, rank, target=target, seed=seed, **options)
    return decomposition.projection()
