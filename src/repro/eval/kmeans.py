"""K-means clustering over scalar or interval features.

The clustering-based classification experiments (Figure 8(c), Table 3) run
K-means with K equal to the number of individuals and score the clustering
against the true identities with NMI.  For interval-valued features the
distance is the paper's interval Euclidean distance, which is equivalent to
running ordinary K-means on the stacked ``[lower | upper]`` endpoint features —
that equivalence is what this module exploits (and tests verify).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.eval.knn import _as_endpoint_features
from repro.eval.metrics import normalized_mutual_information
from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng

Features = Union[np.ndarray, IntervalMatrix]


class IntervalKMeans:
    """Lloyd's K-means with k-means++ initialization over (interval) features.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    max_iter:
        Maximum number of Lloyd iterations.
    n_init:
        Number of random restarts; the assignment with the lowest inertia wins.
    tol:
        Center-movement threshold for convergence.
    seed:
        Seed for initialization.
    """

    def __init__(self, n_clusters: int, max_iter: int = 100, n_init: int = 4,
                 tol: float = 1e-6, seed: Optional[int] = None):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.n_init = n_init
        self.tol = tol
        self.seed = seed
        self.labels_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _plus_plus_init(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = points.shape[0]
        centers = np.empty((self.n_clusters, points.shape[1]))
        first = rng.integers(n)
        centers[0] = points[first]
        closest = ((points - centers[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                centers[k] = points[rng.integers(n)]
            else:
                probabilities = closest / total
                centers[k] = points[rng.choice(n, p=probabilities)]
            closest = np.minimum(closest, ((points - centers[k]) ** 2).sum(axis=1))
        return centers

    def _lloyd(self, points: np.ndarray, centers: np.ndarray) -> tuple:
        labels = np.zeros(points.shape[0], dtype=int)
        points_sq = (points**2).sum(axis=1, keepdims=True)
        for _ in range(self.max_iter):
            distances = (
                points_sq
                - 2.0 * points @ centers.T
                + (centers**2).sum(axis=1)
            )
            labels = np.argmin(distances, axis=1)
            # Centroid update as one membership matmul instead of a Python
            # loop over clusters: sums = Mᵀ points with M the one-hot
            # membership matrix; empty clusters keep their previous center,
            # exactly as the per-cluster loop did.
            membership = (labels[:, np.newaxis]
                          == np.arange(self.n_clusters)).astype(points.dtype)
            counts = membership.sum(axis=0)
            sums = membership.T @ points
            new_centers = np.where(
                counts[:, np.newaxis] > 0,
                sums / np.maximum(counts, 1.0)[:, np.newaxis],
                centers,
            )
            movement = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if movement <= self.tol:
                break
        inertia = float(
            ((points - centers[labels]) ** 2).sum()
        )
        return labels, centers, inertia

    # ------------------------------------------------------------------ #
    def fit(self, features: Features) -> "IntervalKMeans":
        """Cluster the rows of a scalar or interval feature matrix."""
        points = _as_endpoint_features(features)
        if points.shape[0] < self.n_clusters:
            raise ValueError(
                f"cannot form {self.n_clusters} clusters from {points.shape[0]} rows"
            )
        rng = default_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            centers = self._plus_plus_init(points, rng)
            labels, centers, inertia = self._lloyd(points, centers)
            if best is None or inertia < best[2]:
                best = (labels, centers, inertia)
        self.labels_, self.cluster_centers_, self.inertia_ = best
        return self

    def fit_predict(self, features: Features) -> np.ndarray:
        """Cluster and return the per-row cluster labels."""
        return self.fit(features).labels_


def kmeans_nmi(
    features: Features,
    labels: np.ndarray,
    n_clusters: Optional[int] = None,
    seed: SeedLike = None,
    method: Optional[str] = None,
    rank: Optional[int] = None,
    target: Optional[str] = None,
) -> float:
    """Cluster the features and score the result against true labels with NMI.

    When ``method`` (a factorizer-registry key) is given, ``features`` is
    treated as the raw interval matrix and replaced by the ``U x Sigma``
    latent features of that method's rank-``rank`` decomposition first.
    """
    labels = np.asarray(labels)
    rng = None if seed is None else default_rng(seed)
    if method is not None:
        from repro.eval.features import latent_features

        if rank is None:
            raise ValueError("rank is required when clustering via a method key")
        # Draw both seeds from one generator so the factorization and the
        # k-means initialization get decorrelated streams.
        fit_seed = None if rng is None else int(rng.integers(2**31 - 1))
        features = latent_features(features, method, rank, target=target, seed=fit_seed)
    if n_clusters is None:
        n_clusters = int(np.unique(labels).size)
    seed_int = None if rng is None else int(rng.integers(2**31 - 1))
    clustering = IntervalKMeans(n_clusters=n_clusters, seed=seed_int).fit_predict(features)
    return normalized_mutual_information(labels, clustering)
