"""Collaborative-filtering evaluation: rating prediction via low-rank models.

Two prediction pipelines are evaluated in the paper:

* PMF-style models (:mod:`repro.core.ipmf`) trained on the observed ratings and
  scored on held-out ratings (Figure 10);
* reconstruction-based prediction, where the interval rating matrix is
  decomposed with an ISVD method, reconstructed at low rank, and the midpoint
  of the reconstructed cell serves as the rating prediction.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.reconstruct import reconstruct
from repro.core.result import IntervalDecomposition
from repro.eval.metrics import rmse_score
from repro.interval.array import IntervalMatrix


def _clip_predictions(predictions: np.ndarray,
                      clip_range: Optional[tuple]) -> np.ndarray:
    """Clip predictions to a validated rating range; ``None`` disables clipping.

    Star-rating domains clip to their scale (the default ``(1, 5)``), while
    unbounded domains — interval features served by the query engine, centred
    ratings — pass ``clip_range=None`` and score raw predictions.
    """
    if clip_range is None:
        return predictions
    low, high = clip_range
    if not (np.isfinite(low) and np.isfinite(high)):
        # NaN bounds would pass a naive `low > high` check (NaN comparisons
        # are False) and then np.clip would turn every prediction into NaN.
        raise ValueError(
            f"invalid clip_range: bounds must be finite, got ({low}, {high}); "
            "pass clip_range=None to disable clipping"
        )
    if low > high:
        raise ValueError(
            f"invalid clip_range: lower bound {low} exceeds upper bound {high}"
        )
    return np.clip(predictions, low, high)


def rating_prediction_rmse(
    model,
    true_ratings: np.ndarray,
    test_mask: np.ndarray,
    clip_range: Optional[tuple] = (1.0, 5.0),
) -> float:
    """RMSE of a fitted PMF-style model on held-out ratings.

    The model must expose ``predict()`` returning a full user x item matrix;
    predictions are clipped to the rating scale before scoring, as is standard
    for star-rating predictors (``clip_range=None`` scores unclipped).
    """
    predictions = _clip_predictions(model.predict(), clip_range)
    true_ratings = np.asarray(true_ratings, dtype=float)
    test_mask = np.asarray(test_mask, dtype=bool)
    if not test_mask.any():
        raise ValueError("test mask selects no ratings")
    return rmse_score(true_ratings, predictions, mask=test_mask)


def reconstruction_rating_rmse(
    decomposition_or_matrix: Union[IntervalDecomposition, IntervalMatrix],
    true_ratings: np.ndarray,
    test_mask: np.ndarray,
    clip_range: Optional[tuple] = (1.0, 5.0),
    method: Optional[str] = None,
    rank: Optional[int] = None,
    target: Optional[str] = None,
    seed: Optional[int] = None,
) -> float:
    """RMSE of reconstruction-based rating prediction.

    Accepts either an :class:`IntervalDecomposition` (reconstructed per its
    target) or an already-reconstructed interval matrix; the midpoint of each
    reconstructed interval is the predicted rating.  When ``method`` (a
    factorizer-registry key) is given, the first argument is instead the raw
    interval rating matrix, which is decomposed at ``rank`` with that method
    and reconstructed before scoring.  ``clip_range=None`` disables the
    star-scale clipping (for non-rating domains).
    """
    if method is not None:
        from repro.core import registry

        matrix = IntervalMatrix.coerce(decomposition_or_matrix)
        if rank is None:
            raise ValueError("rank is required when predicting via a method key")
        rank = min(rank, min(matrix.shape))
        decomposition = registry.get(method).fit(matrix, rank, target=target, seed=seed)
        reconstruction = reconstruct(decomposition)
    elif isinstance(decomposition_or_matrix, IntervalDecomposition):
        reconstruction = reconstruct(decomposition_or_matrix)
    else:
        reconstruction = IntervalMatrix.coerce(decomposition_or_matrix)
    predictions = _clip_predictions(reconstruction.midpoint(), clip_range)
    return rmse_score(np.asarray(true_ratings, dtype=float), predictions,
                      mask=np.asarray(test_mask, dtype=bool))
