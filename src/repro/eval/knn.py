"""1-NN classification with the paper's interval Euclidean distance.

The face-classification experiment (Figure 8(b)) projects every image onto the
latent space (``U x Sigma`` features) and classifies test rows by their nearest
training row.  For interval-valued features the paper uses the distance::

    dist(a, b) = sqrt( sum_k (a_lo[k] - b_lo[k])^2 + (a_hi[k] - b_hi[k])^2 )

which reduces to (sqrt 2 times) the ordinary Euclidean distance for degenerate
intervals.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.eval.metrics import f1_macro
from repro.interval.array import IntervalMatrix

Features = Union[np.ndarray, IntervalMatrix]

__all__ = [
    "IntervalNearestNeighbor",
    "nn_classification_f1",
    "pairwise_interval_distances",
    "pairwise_interval_squared_distances",
    "reference_squared_norms",
]


def _as_endpoint_features(features: Features) -> np.ndarray:
    """Stack lower and upper endpoints side by side as scalar features.

    With this representation the squared Euclidean distance between stacked
    rows equals the paper's interval distance squared, so a single vectorized
    computation covers both scalar and interval features.
    """
    if isinstance(features, IntervalMatrix):
        return np.hstack([features.lower, features.upper])
    features = np.asarray(features)
    if features.dtype != np.float32:
        features = np.asarray(features, dtype=float)
    return np.hstack([features, features])


def pairwise_interval_squared_distances(
        queries: Features, references: Features, matmul=None,
        references_sq: Optional[np.ndarray] = None) -> np.ndarray:
    """Squared interval Euclidean distances between query and reference rows.

    The (clipped-nonnegative) squared form of
    :func:`pairwise_interval_distances`, exposed separately because *square
    root is a monotone map*: top-k selection can run on the squared matrix
    and apply ``sqrt`` only to the few selected entries, saving a full pass
    over a potentially huge ``q x n`` array.  The serving layer's sharded
    nearest-neighbour path selects this way; each entry depends only on its
    own (query, reference) pair, so a column block computed against a
    row-range shard of the references is bit-identical to the matching slice
    of the full matrix.

    ``matmul`` overrides the kernel of the cross-term product (default
    ``numpy.matmul``); the serving layer passes a batch-size-invariant kernel
    so a query row's distances do not depend on how many rows it was stacked
    with.  The squared-norm terms are per-row reductions and invariant as is.

    ``references_sq`` is a fast-path argument for callers that query one
    fixed reference set repeatedly (the serving engine, the NN classifier):
    pass :func:`reference_squared_norms` computed once at fit time and the
    per-row reference norms are not recomputed on every query batch.  The
    array must have one entry per reference row.
    """
    if matmul is None:
        matmul = np.matmul
    query_points = _as_endpoint_features(queries)
    reference_points = _as_endpoint_features(references)
    if query_points.shape[1] != reference_points.shape[1]:
        raise ValueError("query and reference features must have the same width")
    if references_sq is None:
        references_sq = (reference_points**2).sum(axis=1)
    else:
        references_sq = np.asarray(references_sq)
        if references_sq.dtype != np.float32:
            references_sq = np.asarray(references_sq, dtype=float)
        if references_sq.shape != (reference_points.shape[0],):
            raise ValueError(
                f"references_sq must have shape ({reference_points.shape[0]},), "
                f"got {references_sq.shape}"
            )
    squared = (
        (query_points**2).sum(axis=1, keepdims=True)
        - 2.0 * matmul(query_points, reference_points.T)
        + references_sq
    )
    return np.clip(squared, 0.0, None)


def pairwise_interval_distances(queries: Features, references: Features,
                                matmul=None,
                                references_sq: Optional[np.ndarray] = None) -> np.ndarray:
    """Matrix of interval Euclidean distances between query and reference rows.

    ``sqrt`` of :func:`pairwise_interval_squared_distances`; see there for
    the ``matmul`` and ``references_sq`` arguments.
    """
    return np.sqrt(pairwise_interval_squared_distances(
        queries, references, matmul=matmul, references_sq=references_sq))


def reference_squared_norms(references: Features) -> np.ndarray:
    """Per-row squared norms of stacked endpoint features, for caching.

    The value :func:`pairwise_interval_distances` accepts as
    ``references_sq``; compute it once per reference set instead of once per
    query batch.
    """
    points = _as_endpoint_features(references)
    return (points**2).sum(axis=1)


class IntervalNearestNeighbor:
    """A 1-nearest-neighbour classifier over scalar or interval features."""

    def __init__(self) -> None:
        self._features: Optional[np.ndarray] = None
        self._features_sq: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def fit(self, features: Features, labels: np.ndarray) -> "IntervalNearestNeighbor":
        """Store the training rows, their labels, and their squared norms.

        The reference squared norms are fixed once the classifier is fitted,
        so they are cached here instead of being recomputed by every
        :meth:`predict` batch.
        """
        self._features = _as_endpoint_features(features)
        self._labels = np.asarray(labels)
        if self._features.shape[0] != self._labels.shape[0]:
            raise ValueError("number of feature rows and labels must match")
        if self._features.shape[0] == 0:
            raise ValueError("training set must not be empty")
        self._features_sq = (self._features**2).sum(axis=1)
        return self

    def predict(self, features: Features) -> np.ndarray:
        """Label of the nearest training row for each query row."""
        if self._features is None or self._labels is None:
            raise RuntimeError("call fit() before predict()")
        queries = _as_endpoint_features(features)
        squared = (
            (queries**2).sum(axis=1, keepdims=True)
            - 2.0 * queries @ self._features.T
            + self._features_sq
        )
        nearest = np.argmin(squared, axis=1)
        return self._labels[nearest]


def nn_classification_f1(
    train_features: Features,
    train_labels: np.ndarray,
    test_features: Features,
    test_labels: np.ndarray,
) -> float:
    """Macro F1 of 1-NN classification (the Figure 8(b) metric)."""
    classifier = IntervalNearestNeighbor().fit(train_features, train_labels)
    predictions = classifier.predict(test_features)
    return f1_macro(np.asarray(test_labels), predictions)
