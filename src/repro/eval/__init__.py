"""Evaluation substrate: metrics, classification, clustering, collaborative filtering."""

from repro.eval.metrics import f1_macro, normalized_mutual_information, rmse_score
from repro.eval.features import latent_features
from repro.eval.knn import IntervalNearestNeighbor, nn_classification_f1
from repro.eval.kmeans import IntervalKMeans, kmeans_nmi
from repro.eval.cf import rating_prediction_rmse, reconstruction_rating_rmse

__all__ = [
    "f1_macro",
    "normalized_mutual_information",
    "rmse_score",
    "latent_features",
    "IntervalNearestNeighbor",
    "nn_classification_f1",
    "IntervalKMeans",
    "kmeans_nmi",
    "rating_prediction_rmse",
    "reconstruction_rating_rmse",
]
