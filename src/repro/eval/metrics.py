"""Classification, clustering and regression metrics used by the experiments.

All metrics are implemented from scratch on top of numpy (no scikit-learn
dependency): macro-averaged F1 for the NN-classification experiment,
normalized mutual information (NMI) for the clustering experiments, and RMSE
for reconstruction / rating prediction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _validate_labels(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if y_true.shape != y_pred.shape:
        raise ValueError(f"label shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics require at least one label")


def f1_macro(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1 score over the classes present in the true labels.

    Per-class F1 is the harmonic mean of precision and recall; classes never
    predicted and never occurring count as 0 toward the macro average only if
    they appear in the true labels.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _validate_labels(y_true, y_pred)
    classes = np.unique(y_true)
    scores = []
    for label in classes:
        true_positive = float(np.sum((y_pred == label) & (y_true == label)))
        false_positive = float(np.sum((y_pred == label) & (y_true != label)))
        false_negative = float(np.sum((y_pred != label) & (y_true == label)))
        denominator = 2 * true_positive + false_positive + false_negative
        scores.append(0.0 if denominator == 0 else 2 * true_positive / denominator)
    return float(np.mean(scores))


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly predicted labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    _validate_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def normalized_mutual_information(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Normalized mutual information between two labelings.

    ``NMI = I(T; P) / sqrt(H(T) H(P))`` with natural-log entropies; 0 when
    either labeling has zero entropy (a single cluster), matching the common
    convention used for cluster-quality evaluation in the paper.
    """
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    _validate_labels(labels_true, labels_pred)

    true_classes, true_indices = np.unique(labels_true, return_inverse=True)
    pred_classes, pred_indices = np.unique(labels_pred, return_inverse=True)
    contingency = np.zeros((true_classes.size, pred_classes.size))
    np.add.at(contingency, (true_indices, pred_indices), 1.0)

    total = contingency.sum()
    joint = contingency / total
    row_marginal = joint.sum(axis=1, keepdims=True)
    col_marginal = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (row_marginal @ col_marginal), 1.0)
        mutual_information = float(np.sum(np.where(joint > 0, joint * np.log(ratio), 0.0)))

    entropy_true = _entropy(contingency.sum(axis=1))
    entropy_pred = _entropy(contingency.sum(axis=0))
    denominator = np.sqrt(entropy_true * entropy_pred)
    if denominator == 0:
        return 0.0
    return float(np.clip(mutual_information / denominator, 0.0, 1.0))


def rmse_score(y_true: np.ndarray, y_pred: np.ndarray,
               mask: Optional[np.ndarray] = None) -> float:
    """Root-mean-square error, optionally restricted to masked cells."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("rmse requires matching shapes")
    difference = y_true - y_pred
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            raise ValueError("mask selects no cells")
        difference = difference[mask]
    return float(np.sqrt(np.mean(difference**2)))
