"""Command-line interface for the library.

Four sub-commands:

* ``decompose`` — decompose an interval matrix stored on disk (wide CSV, two
  endpoint CSVs, or NPZ) with any registered factorization method, report the
  reconstruction accuracy, and optionally save the factors to an NPZ archive.
* ``experiment`` — run one of the paper's experiments, optionally in parallel
  (``--jobs``) and with an on-disk decomposition cache (``--cache-dir``), and
  print its tables (``--format table``) or emit the structured records as JSON
  or CSV.
* ``generate`` — write a synthetic interval matrix (uniform or anonymized) to
  disk, for trying the tool without any data at hand.
* ``list-methods`` — show every key of the factorizer registry with its
  capability metadata.

Run ``python -m repro --help`` for usage.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core import registry
from repro.core.accuracy import harmonic_mean_accuracy
from repro.experiments.engine import ExperimentEngine
from repro.interval.array import IntervalMatrix
from repro import io as repro_io

#: Experiment registry: name -> callable(engine) returning {label: ExperimentResult}.
def _experiment_registry() -> Dict[str, Callable[[ExperimentEngine], Dict[str, object]]]:
    from repro.experiments import (
        alignment,
        fig6_overview,
        fig7_anonymized,
        fig8_faces,
        fig9_social,
        fig10_cf,
        table2_sweeps,
        table3_clustering,
    )

    return {
        "fig3": lambda engine: {"fig3": alignment.run_figure3()},
        "fig5": lambda engine: {"fig5": alignment.run_figure5()},
        "fig6": lambda engine: fig6_overview.run(engine=engine),
        "table2": lambda engine: table2_sweeps.run(engine=engine),
        "fig7": lambda engine: fig7_anonymized.run(engine=engine),
        "fig8": lambda engine: fig8_faces.run(engine=engine),
        "table3": lambda engine: {"table3": table3_clustering.run()},
        "fig9": lambda engine: fig9_social.run(engine=engine),
        "fig10": lambda engine: {"fig10": fig10_cf.run(engine=engine)},
    }


def _load_matrix(args: argparse.Namespace) -> IntervalMatrix:
    if args.npz:
        return repro_io.load_interval_npz(args.npz)
    if args.lower and args.upper:
        return repro_io.load_endpoint_csvs(args.lower, args.upper)
    if args.csv:
        matrix, _ = repro_io.load_interval_csv(args.csv)
        return matrix
    raise SystemExit("provide --csv, --npz, or both --lower and --upper")


def _cmd_decompose(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args)
    rank = args.rank or min(matrix.shape)
    rank = min(rank, min(matrix.shape))
    info = registry.get(args.method)
    target = args.target or info.default_target
    try:
        decomposition = info.fit(matrix, rank, target=target, seed=args.seed)
    except ValueError as error:  # RegistryError, non-negativity, rank bounds...
        raise SystemExit(str(error))
    accuracy = harmonic_mean_accuracy(matrix, decomposition)
    print(decomposition.describe())
    print(f"input shape: {matrix.shape}, mean interval width: {matrix.mean_span():.6g}")
    print(f"rank: {rank}")
    print(f"H-mean reconstruction accuracy: {accuracy:.4f}")
    if args.output:
        repro_io.save_decomposition_npz(decomposition, args.output)
        print(f"factors written to {args.output}")
    return 0


def _experiment_payload(results: Dict[str, object]) -> Dict[str, object]:
    return {label: result.to_payload() for label, result in results.items()}


def _print_results_csv(results: Dict[str, object]) -> None:
    writer = csv.writer(sys.stdout, lineterminator="\n")
    for label, result in results.items():
        writer.writerow(["experiment", label])
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
        writer.writerow([])


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiments = _experiment_registry()
    if args.name not in experiments:
        raise SystemExit(f"unknown experiment {args.name!r}; choose from {sorted(experiments)}")
    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)
    results = experiments[args.name](engine)
    if args.format == "json":
        print(json.dumps(_experiment_payload(results), indent=2, default=str))
    elif args.format == "csv":
        _print_results_csv(results)
    else:
        for result in results.values():
            print(result.to_text())
            print()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(_experiment_payload(results), handle, indent=2, default=str)
        print(f"rows written to {args.json}", file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets.anonymized import make_anonymized_matrix
    from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix

    if args.kind == "uniform":
        config = SyntheticConfig(
            shape=(args.rows, args.cols),
            interval_density=args.interval_density,
            interval_intensity=args.interval_intensity,
            rank=min(args.rows, args.cols),
        )
        matrix = make_uniform_interval_matrix(config, rng=args.seed)
    else:
        matrix = make_anonymized_matrix(shape=(args.rows, args.cols),
                                        profile=args.profile, rng=args.seed)
    if args.output.endswith(".npz"):
        repro_io.save_interval_npz(matrix, args.output)
    else:
        repro_io.save_interval_csv(matrix, args.output)
    print(f"{args.kind} interval matrix {matrix.shape} written to {args.output}")
    return 0


def _cmd_list_methods(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    rows = [
        [
            info.key,
            info.display_name,
            "/".join(info.targets),
            info.default_target,
            info.cost,
            "yes" if info.stochastic else "no",
            info.summary,
        ]
        for info in registry.infos()
    ]
    print(format_table(
        ["key", "name", "targets", "default", "cost", "stochastic", "summary"],
        rows, title="Registered factorization methods",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interval-valued matrix factorization (ISVD / ILSA / AI-PMF) toolkit.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser("decompose", help="decompose an interval matrix file")
    decompose.add_argument("--csv", help="wide CSV with <col>_lo / <col>_hi column pairs")
    decompose.add_argument("--npz", help="NPZ archive with 'lower' and 'upper' arrays")
    decompose.add_argument("--lower", help="CSV of lower bounds (with --upper)")
    decompose.add_argument("--upper", help="CSV of upper bounds (with --lower)")
    decompose.add_argument("--rank", type=int, default=None, help="target rank (default: full)")
    decompose.add_argument("--method", default="isvd4", choices=registry.available(),
                           help="factorization method (see `repro list-methods`)")
    decompose.add_argument("--target", default=None, choices=["a", "b", "c"],
                           help="decomposition target (default: the method's)")
    decompose.add_argument("--seed", type=int, default=None,
                           help="seed for stochastic methods")
    decompose.add_argument("--output", help="write the factors to this NPZ path")
    decompose.set_defaults(handler=_cmd_decompose)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", help="fig3, fig5, fig6, table2, fig7, fig8, table3, fig9, fig10")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="parallel worker threads (0 = one per CPU)")
    experiment.add_argument("--cache-dir",
                            help="directory for the on-disk decomposition cache "
                                 "(reused by the decomposition grids; timing and "
                                 "model-training experiments always recompute)")
    experiment.add_argument("--format", choices=["table", "json", "csv"], default="table",
                            help="output format printed to stdout")
    experiment.add_argument("--json", help="also write the rows/records to this JSON path")
    experiment.set_defaults(handler=_cmd_experiment)

    generate = subparsers.add_parser("generate", help="write a synthetic interval matrix")
    generate.add_argument("output", help="destination path (.csv or .npz)")
    generate.add_argument("--kind", choices=["uniform", "anonymized"], default="uniform")
    generate.add_argument("--rows", type=int, default=40)
    generate.add_argument("--cols", type=int, default=250)
    generate.add_argument("--interval-density", type=float, default=1.0)
    generate.add_argument("--interval-intensity", type=float, default=1.0)
    generate.add_argument("--profile", choices=["high", "medium", "low"], default="medium")
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(handler=_cmd_generate)

    list_methods = subparsers.add_parser(
        "list-methods", help="list every registered factorization method")
    list_methods.set_defaults(handler=_cmd_list_methods)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
