"""Command-line interface for the library.

Sub-commands:

* ``decompose`` — decompose an interval matrix stored on disk (wide CSV, two
  endpoint CSVs, or NPZ) with any registered factorization method, report the
  reconstruction accuracy, and optionally save the factors to an NPZ archive
  (``--output``) or publish them to a model store (``--save-model``).
* ``experiment`` — run one of the paper's experiments, optionally in parallel
  (``--jobs``) and with an on-disk decomposition cache (``--cache-dir``), and
  print its tables (``--format table``) or emit the structured records as JSON
  or CSV.
* ``generate`` — write a synthetic interval matrix (uniform or anonymized) to
  disk, for trying the tool without any data at hand.
* ``list-methods`` — show every key of the factorizer registry with its
  capability metadata.
* ``models`` — list the models published to a store directory.
* ``shard`` — re-publish a model as row-range shards of ``U`` (or back to
  the single-file format), for scatter-gather serving.
* ``serve`` — run the HTTP JSON service (``/models``, ``/recommend``,
  ``/neighbors``, ``/healthz``) over a model store; sharded and single-file
  models are served transparently.
* ``query`` — send one recommendation / nearest-neighbour query to a running
  ``repro serve`` instance and print the JSON response.

Run ``python -m repro --help`` for usage.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.core import registry
from repro.core.accuracy import harmonic_mean_accuracy
from repro.experiments.engine import ExperimentEngine
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import DEFAULT_KERNEL, available_kernels
from repro.precision import available_precisions
from repro import io as repro_io

#: Default model-store directory for ``decompose --save-model`` / ``models`` /
#: ``serve`` (override with ``--store``).
DEFAULT_STORE = "repro-models"

#: Experiment registry: name -> callable(engine) returning {label: ExperimentResult}.
def _experiment_registry() -> Dict[str, Callable[[ExperimentEngine], Dict[str, object]]]:
    from repro.experiments import (
        alignment,
        fig6_overview,
        fig7_anonymized,
        fig8_faces,
        fig9_social,
        fig10_cf,
        table2_sweeps,
        table3_clustering,
    )

    return {
        "fig3": lambda engine: {"fig3": alignment.run_figure3()},
        "fig5": lambda engine: {"fig5": alignment.run_figure5()},
        "fig6": lambda engine: fig6_overview.run(engine=engine),
        "table2": lambda engine: table2_sweeps.run(engine=engine),
        "fig7": lambda engine: fig7_anonymized.run(engine=engine),
        "fig8": lambda engine: fig8_faces.run(engine=engine),
        "table3": lambda engine: {"table3": table3_clustering.run()},
        "fig9": lambda engine: fig9_social.run(engine=engine),
        "fig10": lambda engine: {"fig10": fig10_cf.run(engine=engine)},
    }


def _load_matrix(args: argparse.Namespace) -> IntervalMatrix:
    if args.npz:
        return repro_io.load_interval_npz(args.npz)
    if args.lower and args.upper:
        return repro_io.load_endpoint_csvs(args.lower, args.upper)
    if args.csv:
        matrix, _ = repro_io.load_interval_csv(args.csv)
        return matrix
    raise SystemExit("provide --csv, --npz, or both --lower and --upper")


#: Sparse inputs above this many logical cells skip the dense accuracy report
#: instead of silently materializing a multi-gigabyte endpoint pair.
_ACCURACY_DENSIFY_LIMIT = 4_000_000


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.interval.sparse import SparseIntervalMatrix, is_sparse_interval

    if args.shards is not None and not args.save_model:
        raise SystemExit("--shards requires --save-model")
    if args.shards is not None and args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.save_model:
        # Fail on a bad name *before* spending minutes on the factorization.
        from repro.serve.store import ModelStore, ModelStoreError

        try:
            ModelStore.check_publish_name(args.save_model)
        except ModelStoreError as error:
            raise SystemExit(str(error))
    matrix = _load_matrix(args)
    if args.shards is not None and args.shards > matrix.shape[0]:
        # The row count is known now; don't spend the whole fit first.
        raise SystemExit(
            f"cannot split {matrix.shape[0]} rows into {args.shards} "
            "non-empty shards"
        )
    if args.sparse and not is_sparse_interval(matrix):
        matrix = SparseIntervalMatrix.from_dense(matrix)
    rank = args.rank or min(matrix.shape)
    rank = min(rank, min(matrix.shape))
    info = registry.get(args.method)
    target = args.target or info.default_target
    fit_options = {}
    if args.interval_kernel is not None:
        if not info.kernel_aware:
            raise SystemExit(
                f"method {info.key!r} does not route interval products through "
                "a pluggable kernel; --interval-kernel applies to "
                + ", ".join(i.key for i in registry.infos() if i.kernel_aware)
            )
        fit_options["kernel"] = args.interval_kernel
    if args.dtype is not None:
        if not info.dtype_aware:
            raise SystemExit(
                f"method {info.key!r} does not support precision policies; "
                "--dtype applies to "
                + ", ".join(i.key for i in registry.infos() if i.dtype_aware)
            )
        fit_options["dtype"] = args.dtype
    try:
        decomposition = info.fit(matrix, rank, target=target, seed=args.seed,
                                 **fit_options)
    except ValueError as error:  # RegistryError, non-negativity, rank bounds...
        raise SystemExit(str(error))
    print(decomposition.describe())
    if is_sparse_interval(matrix):
        print(f"input shape: {matrix.shape}, stored cells: {matrix.nnz} "
              f"(density {matrix.density:.4g}), mean interval width: "
              f"{matrix.mean_span():.6g}")
    else:
        print(f"input shape: {matrix.shape}, mean interval width: {matrix.mean_span():.6g}")
    print(f"rank: {rank}")
    if is_sparse_interval(matrix) and matrix.size > _ACCURACY_DENSIFY_LIMIT:
        print("H-mean reconstruction accuracy: skipped "
              f"(sparse input with {matrix.size} cells would densify; "
              "score offline against a held-out sample instead)")
    else:
        scoring = matrix.to_dense() if is_sparse_interval(matrix) else matrix
        accuracy = harmonic_mean_accuracy(scoring, decomposition)
        print(f"H-mean reconstruction accuracy: {accuracy:.4f}")
    if args.output:
        repro_io.save_decomposition_npz(decomposition, args.output)
        print(f"factors written to {args.output}")
    if args.save_model:
        # --shards 1 means "single-file", exactly like `repro shard --shards 1`.
        if args.shards is not None and args.shards > 1:
            from repro.serve.shard import ShardedModelStore

            try:
                record = ShardedModelStore(args.store).save_sharded(
                    args.save_model, decomposition, args.shards, matrix=matrix)
            except ValueError as error:  # more shards than rows, shards < 1
                raise SystemExit(str(error))
            print(f"model {record.name!r} published to {args.store} in "
                  f"{record.shards} row-range shards ({record.method}, "
                  f"target {record.target}, rank {record.rank})")
        else:
            from repro.serve.store import ModelStore

            record = ModelStore(args.store).save(args.save_model, decomposition,
                                                 matrix=matrix)
            print(f"model {record.name!r} published to {args.store} "
                  f"({record.method}, target {record.target}, rank {record.rank})")
    return 0


def _experiment_payload(results: Dict[str, object]) -> Dict[str, object]:
    return {label: result.to_payload() for label, result in results.items()}


def _print_results_csv(results: Dict[str, object]) -> None:
    writer = csv.writer(sys.stdout, lineterminator="\n")
    for label, result in results.items():
        writer.writerow(["experiment", label])
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
        writer.writerow([])


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiments = _experiment_registry()
    if args.name not in experiments:
        raise SystemExit(f"unknown experiment {args.name!r}; choose from {sorted(experiments)}")
    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir,
                              kernel=args.interval_kernel)
    results = experiments[args.name](engine)
    if args.format == "json":
        print(json.dumps(_experiment_payload(results), indent=2, default=str))
    elif args.format == "csv":
        _print_results_csv(results)
    else:
        for result in results.values():
            print(result.to_text())
            print()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(_experiment_payload(results), handle, indent=2, default=str)
        print(f"rows written to {args.json}", file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.datasets.anonymized import make_anonymized_matrix
    from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix

    def _to_dtype(matrix):
        # Outward rounding on a narrowing cast keeps every generated cell a
        # true enclosure of the float64 value it was sampled as.
        if args.dtype is None or matrix.dtype == np.dtype(args.dtype):
            return matrix
        return matrix.astype(np.dtype(args.dtype), outward=True)

    if args.kind == "ratings":
        from repro.datasets.ratings import make_sparse_rating_matrix

        if not args.output.endswith(".npz"):
            raise SystemExit("sparse ratings matrices require an .npz output path")
        try:
            matrix = make_sparse_rating_matrix(
                preset=args.preset,
                n_users=args.rows,
                n_items=args.cols,
                density=args.density,
                seed=args.seed,
            )
        except ValueError as error:
            raise SystemExit(str(error))
        matrix = _to_dtype(matrix)
        repro_io.save_interval_npz(matrix, args.output)
        print(f"sparse ratings interval matrix {matrix.shape} "
              f"({matrix.nnz} cells, density {matrix.density:.4g}) "
              f"written to {args.output}")
        return 0
    rows = args.rows if args.rows is not None else 40
    cols = args.cols if args.cols is not None else 250
    if args.kind == "uniform":
        config = SyntheticConfig(
            shape=(rows, cols),
            interval_density=args.interval_density,
            interval_intensity=args.interval_intensity,
            rank=min(rows, cols),
        )
        matrix = make_uniform_interval_matrix(config, rng=args.seed)
    else:
        matrix = make_anonymized_matrix(shape=(rows, cols),
                                        profile=args.profile, rng=args.seed)
    matrix = _to_dtype(matrix)
    if args.output.endswith(".npz"):
        repro_io.save_interval_npz(matrix, args.output)
    else:
        repro_io.save_interval_csv(matrix, args.output)
    print(f"{args.kind} interval matrix {matrix.shape} written to {args.output}")
    return 0


def _cmd_list_methods(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table

    rows = [
        [
            info.key,
            info.display_name,
            "/".join(info.targets),
            info.default_target,
            info.cost,
            "yes" if info.stochastic else "no",
            "yes" if info.kernel_aware else "no",
            "yes" if info.dtype_aware else "no",
            info.summary,
        ]
        for info in registry.infos()
    ]
    print(format_table(
        ["key", "name", "targets", "default", "cost", "stochastic", "kernels",
         "dtypes", "summary"],
        rows, title="Registered factorization methods",
    ))
    print()
    from repro.interval.kernels import kernel_infos

    kernel_rows = [
        [
            info.key,
            "yes" if info.sound else "NO",
            "yes" if info.tight else "no",
            "yes" if info.paper_faithful else "no",
            "yes" if info.sparse else "no",
            info.cost,
            info.summary,
        ]
        for info in kernel_infos()
    ]
    print(format_table(
        ["kernel", "sound", "tight", "paper", "sparse", "cost", "summary"],
        kernel_rows, title="Interval-product kernels (--interval-kernel)",
    ))
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.serve.store import ModelStore

    if args.url is not None:
        return _models_from_server(args.url)
    records = ModelStore(args.store).list()
    if not records:
        print(f"no models published in {args.store}")
        return 0
    rows = [
        [
            record.name,
            record.method,
            record.target,
            record.rank,
            "x".join(str(n) for n in record.shape),
            "-" if record.shards is None else record.shards,
            "-" if record.generation is None else record.generation,
            (record.fingerprint or "")[:12],
        ]
        for record in records
    ]
    print(format_table(
        ["name", "method", "target", "rank", "shape", "shards", "gen",
         "fingerprint"],
        rows, title=f"Models in {args.store}",
    ))
    return 0


def _models_from_server(url: str) -> int:
    """Live serving status (worker liveness, restarts, breaker state) from a
    running server's ``/healthz``."""
    import urllib.error
    import urllib.request

    from repro.experiments.report import format_table

    try:
        with urllib.request.urlopen(url.rstrip("/") + "/healthz",
                                    timeout=10.0) as response:
            health = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise SystemExit(f"could not reach {url}: {error}")
    print(f"server status: {health.get('status', 'unknown')} "
          f"({health.get('models', '?')} model(s) in store)")
    serving = health.get("serving") or {}
    if not serving:
        print("no engines loaded yet (the first query loads one)")
        return 0
    rows = []
    for name, entry in sorted(serving.items()):
        workers = entry.get("workers")
        if not workers:
            rows.append([name, entry.get("generation", "-"),
                         entry.get("backend", "-"), "-", "-", "-", "-", "-"])
            continue
        for worker in workers:
            breaker = worker.get("breaker") or {}
            last = worker.get("last_failure") or breaker.get("last_failure")
            rows.append([
                name,
                entry.get("generation", "-"),
                f"shard {worker.get('shard', '?')}",
                "up" if worker.get("alive") else "DOWN",
                worker.get("restarts", 0),
                breaker.get("state", "-"),
                breaker.get("retry_after", "-"),
                (last or "-")[:40],
            ])
    print(format_table(
        ["model", "gen", "backend/shard", "alive", "restarts", "breaker",
         "retry_after", "last_failure"],
        rows, title=f"Serving status of {url}",
    ))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from zipfile import BadZipFile

    from repro.serve.shard import ShardedModelStore
    from repro.serve.store import ModelStoreError

    store = ShardedModelStore(args.store)
    target_name = args.rename_to or args.name
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    try:
        # Fail on a bad target name *before* loading and hashing the shards.
        store.check_publish_name(target_name)
        decomposition, record = store.load_merged(args.name)
    except (ModelStoreError, OSError, BadZipFile, KeyError, ValueError) as error:
        # Beyond store errors: truncated/corrupt archives (BadZipFile,
        # OSError) and factor-incomplete NPZ files (KeyError) surface as a
        # clean one-line exit, matching the serving layer's handling.
        raise SystemExit(str(error))
    try:
        if args.shards == 1:
            # Resharding down to one shard means "make it single-file again".
            if args.generation is not None:
                raise SystemExit(
                    "--generation applies to sharded publishes only "
                    "(--shards >= 2)")
            new_record = store.save(target_name, decomposition,
                                    fingerprint=record.fingerprint)
        else:
            new_record = store.save_sharded(target_name, decomposition,
                                            args.shards,
                                            fingerprint=record.fingerprint,
                                            generation=args.generation)
    except (ModelStoreError, ValueError) as error:
        raise SystemExit(str(error))
    if new_record.shards is None:
        print(f"model {target_name!r} republished single-file in {args.store}")
    else:
        from repro.serve.shard import plan_row_ranges

        ranges = plan_row_ranges(new_record.shape[0], new_record.shards)
        print(f"model {target_name!r} published to {args.store} in "
              f"{new_record.shards} row-range shards of U "
              f"({new_record.shape[0]} rows), generation "
              f"{new_record.generation}:")
        for index, (start, stop) in enumerate(ranges):
            print(f"  shard {index:02d}: rows [{start}, {stop})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    if args.workers < 0:
        raise SystemExit("--workers must be >= 0")
    for flag, value in (("--head-timeout", args.head_timeout),
                        ("--body-timeout", args.body_timeout),
                        ("--request-timeout", args.request_timeout)):
        if value is not None and value <= 0:
            raise SystemExit(f"{flag} must be positive")
    if args.inject_faults is not None:
        from repro.serve.faults import FaultPlan, FaultSpecError

        if not args.workers:
            raise SystemExit("--inject-faults requires --workers (faults "
                             "arm inside worker processes)")
        try:  # a typo'd chaos spec must fail at boot, not silently no-op
            FaultPlan.parse(args.inject_faults)
        except FaultSpecError as error:
            raise SystemExit(f"--inject-faults: {error}")
    # The serving stack logs restarts, breaker transitions and degraded
    # gathers through the logging module; give it a handler.
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s: %(message)s")
    worker_options = {}
    if args.inject_faults is not None:
        worker_options["faults"] = args.inject_faults
    if args.workers:
        # Worker mode: asyncio front end + one process per shard of each
        # sharded model.  (The worker count is per model and fixed by its
        # shard count; the flag's value simply switches the mode on, so
        # `--workers 4` over 4-shard models reads naturally.)
        from repro.serve.async_http import create_async_server

        async_server = create_async_server(
            args.store, host=args.host, port=args.port,
            max_batch=args.max_batch, batch_delay=args.batch_delay / 1000.0,
            verbose=args.verbose, kernel=args.interval_kernel, workers=True,
            head_timeout=args.head_timeout, body_timeout=args.body_timeout,
            request_timeout=args.request_timeout, degraded=args.degraded,
            worker_options=worker_options, dtype=args.dtype,
        )
        models = async_server.app.store.list()
        print(f"serving {len(models)} model(s) from {args.store} "
              f"on http://{args.host}:{args.port} "
              "(async front end, worker processes per shard)")
        for record in models:
            print(f"  {record.name}: {record.method} target {record.target} "
                  f"rank {record.rank}")
        async_server.run()
        return 0
    from repro.serve.http import create_server

    server = create_server(
        args.store, host=args.host, port=args.port,
        max_batch=args.max_batch, batch_delay=args.batch_delay / 1000.0,
        verbose=args.verbose, kernel=args.interval_kernel,
        request_timeout=args.request_timeout, degraded=args.degraded,
        dtype=args.dtype,
    )
    host, port = server.server_address[:2]
    models = server.app.store.list()
    print(f"serving {len(models)} model(s) from {args.store} "
          f"on http://{host}:{port}")
    for record in models:
        print(f"  {record.name}: {record.method} target {record.target} "
              f"rank {record.rank}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        server.app.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    matrix = _load_matrix(args)
    payload = {
        "model": args.model,
        "k": args.k,
        "lower": matrix.lower.tolist(),
        "upper": matrix.upper.tolist(),
    }
    url = args.url.rstrip("/") + "/" + args.op
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            body = json.load(response)
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", errors="replace")
        raise SystemExit(f"server returned {error.code}: {detail}")
    except urllib.error.URLError as error:
        raise SystemExit(f"cannot reach {url}: {error.reason}")
    print(json.dumps(body, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interval-valued matrix factorization (ISVD / ILSA / AI-PMF) toolkit.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser("decompose", help="decompose an interval matrix file")
    decompose.add_argument("--csv", help="wide CSV with <col>_lo / <col>_hi column pairs")
    decompose.add_argument("--npz", help="NPZ archive with 'lower' and 'upper' arrays")
    decompose.add_argument("--lower", help="CSV of lower bounds (with --upper)")
    decompose.add_argument("--upper", help="CSV of upper bounds (with --lower)")
    decompose.add_argument("--rank", type=int, default=None, help="target rank (default: full)")
    decompose.add_argument("--method", default="isvd4", choices=registry.available(),
                           help="factorization method (see `repro list-methods`)")
    decompose.add_argument("--target", default=None, choices=["a", "b", "c"],
                           help="decomposition target (default: the method's)")
    decompose.add_argument("--seed", type=int, default=None,
                           help="seed for stochastic methods")
    decompose.add_argument("--interval-kernel", default=None, choices=available_kernels(),
                           help="interval-product kernel for kernel-aware methods "
                                f"(default: {DEFAULT_KERNEL}, the paper's construction)")
    decompose.add_argument("--dtype", default=None, choices=available_precisions(),
                           help="precision policy for dtype-aware methods: "
                                "float64 (default), float32 (storage and "
                                "accumulation), or mixed (float32 storage, "
                                "float64 accumulation)")
    decompose.add_argument("--sparse", action="store_true",
                           help="run in sparse representation: dense input is "
                                "converted (cells with both endpoints 0 become "
                                "implicit), sparse NPZ input stays sparse; the "
                                "gram-based ISVD methods then execute in sparse "
                                "BLAS without densifying")
    decompose.add_argument("--output", help="write the factors to this NPZ path")
    decompose.add_argument("--save-model", metavar="NAME",
                           help="publish the factors to the model store under this name")
    decompose.add_argument("--store", default=DEFAULT_STORE,
                           help=f"model store directory (default: {DEFAULT_STORE})")
    decompose.add_argument("--shards", type=int, default=None, metavar="N",
                           help="with --save-model: publish as N row-range "
                                "shards of U (item factors replicated); the "
                                "server scatter-gathers across them with "
                                "byte-identical results; 1 means single-file, "
                                "as in `repro shard --shards 1`")
    decompose.set_defaults(handler=_cmd_decompose)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", help="fig3, fig5, fig6, table2, fig7, fig8, table3, fig9, fig10")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="parallel worker threads (0 = one per CPU)")
    experiment.add_argument("--cache-dir",
                            help="directory for the on-disk decomposition cache "
                                 "(reused by the decomposition grids; timing and "
                                 "model-training experiments always recompute)")
    experiment.add_argument("--interval-kernel", default=None, choices=available_kernels(),
                            help="interval-product kernel for kernel-aware methods "
                                 f"(default: {DEFAULT_KERNEL}; reproduced numbers "
                                 "match the paper only with the default)")
    experiment.add_argument("--format", choices=["table", "json", "csv"], default="table",
                            help="output format printed to stdout")
    experiment.add_argument("--json", help="also write the rows/records to this JSON path")
    experiment.set_defaults(handler=_cmd_experiment)

    generate = subparsers.add_parser("generate", help="write a synthetic interval matrix")
    generate.add_argument("output", help="destination path (.csv or .npz; "
                                         "ratings kind requires .npz)")
    generate.add_argument("--kind", choices=["uniform", "anonymized", "ratings"],
                          default="uniform",
                          help="'ratings' writes a sparse per-rating interval "
                               "matrix (CSR NPZ) generated without dense "
                               "temporaries")
    generate.add_argument("--rows", type=int, default=None,
                          help="rows / users (default: 40, or the ratings preset)")
    generate.add_argument("--cols", type=int, default=None,
                          help="columns / items (default: 250, or the ratings preset)")
    generate.add_argument("--density", type=float, default=None,
                          help="observed-cell fraction for --kind ratings "
                               "(default: the preset's)")
    generate.add_argument("--preset", default="demo",
                          help="scale preset for --kind ratings (demo, webscale, "
                               "ciao, epinions, movielens; default: demo)")
    generate.add_argument("--interval-density", type=float, default=1.0)
    generate.add_argument("--interval-intensity", type=float, default=1.0)
    generate.add_argument("--profile", choices=["high", "medium", "low"], default="medium")
    generate.add_argument("--dtype", default=None, choices=["float64", "float32"],
                          help="endpoint storage dtype of the written matrix "
                               "(float32 halves the file; endpoints are "
                               "rounded outward so every cell stays a true "
                               "enclosure)")
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(handler=_cmd_generate)

    list_methods = subparsers.add_parser(
        "list-methods", help="list every registered factorization method")
    list_methods.set_defaults(handler=_cmd_list_methods)

    models = subparsers.add_parser("models", help="list the published models of a store")
    models.add_argument("--store", default=DEFAULT_STORE,
                        help=f"model store directory (default: {DEFAULT_STORE})")
    models.add_argument("--url", default=None, metavar="URL",
                        help="query a *running* server's /healthz instead of "
                             "the store directory: shows per-shard worker "
                             "liveness, restart counts and circuit-breaker "
                             "state")
    models.set_defaults(handler=_cmd_models)

    shard = subparsers.add_parser(
        "shard", help="re-publish a model as row-range shards (or back to "
                      "single-file with --shards 1)")
    shard.add_argument("name", help="published model name")
    shard.add_argument("--shards", type=int, required=True, metavar="N",
                       help="number of row-range shards of U (1 restores the "
                            "single-file format)")
    shard.add_argument("--store", default=DEFAULT_STORE,
                       help=f"model store directory (default: {DEFAULT_STORE})")
    shard.add_argument("--as", dest="rename_to", metavar="NEW_NAME",
                       help="publish the sharded model under this name "
                            "instead of replacing the original")
    shard.add_argument("--generation", type=int, default=None, metavar="G",
                       help="publish under this generation number (must "
                            "exceed the current one; default: current + 1)")
    shard.set_defaults(handler=_cmd_shard)

    serve = subparsers.add_parser(
        "serve", help="serve a model store over HTTP (/recommend, /neighbors, ...)")
    serve.add_argument("--store", default=DEFAULT_STORE,
                       help=f"model store directory (default: {DEFAULT_STORE})")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="most single-row queries stacked into one BLAS call")
    serve.add_argument("--batch-delay", type=float, default=2.0,
                       help="micro-batch window in milliseconds")
    serve.add_argument("--interval-kernel", default=None, choices=available_kernels(),
                       help="interval-product kernel for served fold-in features "
                            f"(default: {DEFAULT_KERNEL})")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request to stderr")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="N > 0 serves sharded models from one worker "
                            "process per shard behind an asyncio front end "
                            "(0, the default, keeps the in-process threaded "
                            "server)")
    serve.add_argument("--head-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds a client may take to deliver the "
                            "request head (async front end; default: 30)")
    serve.add_argument("--body-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="seconds a client may take to deliver the "
                            "request body (async front end; default: 60)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="end-to-end deadline per query; expiry returns "
                            "a 504 (default: unbounded)")
    serve.add_argument("--degraded", choices=["fail", "partial"],
                       default="fail",
                       help="what an unavailable shard does to a neighbour "
                            "query: 'fail' returns 503 with Retry-After "
                            "(default, byte-identical answers only); "
                            "'partial' answers from the live shards and "
                            "flags the response degraded")
    serve.add_argument("--dtype", default=None, choices=["float64", "float32"],
                       help="pin the server to one factor precision: models "
                            "whose sidecar records a different dtype are "
                            "refused with a 409 instead of served (default: "
                            "serve every model at its recorded precision)")
    serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="arm a fault-injection spec in every spawned "
                            "worker (chaos testing; see repro.serve.faults), "
                            "e.g. 'before_reply=crash(op=top_k_items,times=1)'")
    serve.set_defaults(handler=_cmd_serve)

    query = subparsers.add_parser(
        "query", help="query a running `repro serve` instance")
    query.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the server")
    query.add_argument("--model", required=True, help="published model name")
    query.add_argument("--op", choices=["recommend", "neighbors"], default="recommend",
                       help="query type")
    query.add_argument("-k", type=int, default=10, help="results per query row")
    query.add_argument("--csv", help="wide CSV with <col>_lo / <col>_hi column pairs")
    query.add_argument("--npz", help="NPZ archive with 'lower' and 'upper' arrays")
    query.add_argument("--lower", help="CSV of lower bounds (with --upper)")
    query.add_argument("--upper", help="CSV of upper bounds (with --lower)")
    query.set_defaults(handler=_cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
