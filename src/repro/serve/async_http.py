"""Asyncio HTTP front end: slow clients cost a coroutine, not a thread.

The classic :class:`~repro.serve.http.ServingHTTPServer` dedicates one
thread per connection, so a client trickling its request body byte by byte
pins a thread for the duration — a handful of slow (or malicious) clients
can starve everyone else.  :class:`AsyncServingServer` keeps the exact same
routes and the exact same :class:`~repro.serve.http.ServingApp` semantics,
but accepts connections on an asyncio event loop:

* request *parsing* (status line, headers, body) happens on the loop with
  per-phase timeouts — a half-open or trickling connection occupies only a
  coroutine and some buffer space;
* request *execution* runs the blocking :class:`ServingApp` handlers on a
  bounded thread pool (``run_in_executor``).  Only complete, validated
  requests ever reach the pool, so slow clients cannot occupy it.  The
  :class:`~repro.serve.batching.MicroBatcher`'s leader/follower protocol
  works unchanged across the pool's threads: concurrent single-row queries
  still stack into single BLAS calls, and batching still never changes a
  byte of any response.

Responses are byte-compatible with the threaded server (same JSON payloads,
same status codes), so clients — and the parity test suite — cannot tell
the two front ends apart.  With the app's ``workers`` backend enabled, the
event loop feeds worker *processes* through the executor threads, giving
the full multi-process serving path of ``repro serve --workers N``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple, Union

from repro.interval.scalar import IntervalError
from repro.serve.http import MAX_BODY_BYTES, RequestError, ServingApp
from repro.serve.store import ModelStore

#: Upper bound on the request line plus headers (one header line is also
#: bounded by asyncio's default readline limit of 64 KiB).
MAX_HEADER_BYTES = 32 * 1024

#: Default seconds a client may take to deliver the request head / the
#: body (overridable per server: ``head_timeout`` / ``body_timeout``).
#: Long enough for slow mobile links, short enough that a trickling
#: client's buffers are reclaimed; healthy clients are unaffected.
HEAD_TIMEOUT = 30.0
BODY_TIMEOUT = 60.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            408: "Request Timeout", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

logger = logging.getLogger(__name__)


class _BadRequest(Exception):
    """Protocol-level failure; the connection closes after the reply."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class AsyncServingServer:
    """Asyncio front end over a :class:`ServingApp` (same routes, same bytes).

    Parameters
    ----------
    app:
        The shared application state, or a :class:`ModelStore` / store path
        to build one from.
    host, port:
        Bind address; ``port=0`` binds an ephemeral port (``self.address``
        has the real one once started).
    executor_threads:
        Size of the pool running the blocking app handlers.  This bounds
        *executing* requests only — parsing happens on the loop — and sets
        the widest micro-batch a single delay window can collect from
        concurrent connections.
    verbose:
        Log each request to stderr.
    head_timeout, body_timeout:
        Seconds a client may take to deliver the request head / body
        (defaults :data:`HEAD_TIMEOUT` / :data:`BODY_TIMEOUT`).
    """

    def __init__(self, app: Union[ServingApp, ModelStore, str],
                 host: str = "127.0.0.1", port: int = 8080,
                 executor_threads: int = 16, verbose: bool = False,
                 head_timeout: float = HEAD_TIMEOUT,
                 body_timeout: float = BODY_TIMEOUT):
        if head_timeout <= 0 or body_timeout <= 0:
            raise ValueError("head/body timeouts must be positive")
        self.app = app if isinstance(app, ServingApp) else ServingApp(app)
        self.host = host
        self.port = port
        self.verbose = verbose
        self.head_timeout = float(head_timeout)
        self.body_timeout = float(body_timeout)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="repro-async-exec")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set = set()
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away or spoke garbage; nothing to answer
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_one_request(self, reader: asyncio.StreamReader,
                                  writer: asyncio.StreamWriter) -> bool:
        """Parse, dispatch and answer one request; returns keep-alive."""
        try:
            method, path, headers, close_requested = \
                await self._read_head(reader)
        except _BadRequest as error:
            if error.status == 408 and not str(error).startswith("timed out"):
                return False  # clean EOF between requests: just close
            await self._respond(writer, {"error": str(error)}, error.status,
                                close=True)
            return False
        try:
            body = await self._read_body(reader, headers)
        except _BadRequest as error:
            # The body is unread or unreadable either way: the connection
            # cannot be reused, its next bytes are not a request line.
            await self._respond(writer, {"error": str(error)}, error.status,
                                close=True)
            return False
        status, payload, extra_headers = await self._dispatch(method, path, body)
        if self.verbose:
            print(f"async-serve: {method} {path} -> {status}", flush=True)
        await self._respond(writer, payload, status, close=close_requested,
                            extra_headers=extra_headers)
        return not close_requested

    async def _read_head(self, reader: asyncio.StreamReader):
        """Read and parse the request line and headers, bounded in time and
        bytes."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.head_timeout)
        except asyncio.TimeoutError:
            raise _BadRequest("timed out reading the request head", 408)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                raise _BadRequest("connection closed between requests", 408)
            raise _BadRequest("connection closed mid-request", 400)
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large", 413)
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest("request head too large", 413)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {lines[0]!r}")
        method, path, version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        close_requested = (connection == "close"
                           or (version == "HTTP/1.0"
                               and connection != "keep-alive"))
        return method, path, headers, close_requested

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _BadRequest(f"invalid Content-Length {raw_length!r}")
        if "transfer-encoding" in headers:
            raise _BadRequest("chunked request bodies are not supported")
        if length < 0:
            raise _BadRequest(f"invalid Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", 413)
        if length == 0:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=self.body_timeout)
        except asyncio.TimeoutError:
            raise _BadRequest("timed out reading the request body", 408)
        except asyncio.IncompleteReadError:
            raise _BadRequest("connection closed mid-body", 400)

    # ------------------------------------------------------------------ #
    # Dispatch (blocking app work runs on the executor)
    # ------------------------------------------------------------------ #
    async def _dispatch(self, method: str, path: str, body: bytes
                        ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if method == "GET":
            if path == "/healthz":
                return await self._call(self.app.healthz)
            if path == "/models":
                return await self._call(self.app.models)
            return 404, {"error": f"unknown path {path!r}"}, {}
        if method != "POST":
            return 404, {"error": f"unsupported method {method!r}"}, {}
        routes = {"/recommend": self.app.recommend,
                  "/neighbors": self.app.neighbors}
        handler = routes.get(path)
        if handler is None:
            return 404, {"error": f"unknown path {path!r}"}, {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"invalid JSON body: {error}"}, {}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}, {}
        return await self._call(handler, payload)

    async def _call(self, handler, *args
                    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """Run one blocking app handler on the executor, mapping exceptions
        to the same statuses (and ``Retry-After`` headers) the threaded
        server produces."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, lambda: handler(*args))
            return 200, result, {}
        except RequestError as error:
            headers: Dict[str, str] = {}
            if error.retry_after is not None:
                headers["Retry-After"] = \
                    str(max(1, int(-(-error.retry_after // 1))))
            return error.status, {"error": str(error)}, headers
        except (ValueError, IntervalError) as error:
            return 400, {"error": str(error)}, {}
        except Exception as error:  # never drop a connection without a reply
            return 500, {"error": f"internal error: {error}"}, {}

    async def _respond(self, writer: asyncio.StreamWriter,
                       payload: Dict[str, object], status: int,
                       close: bool = False,
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
        try:
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
        except ValueError:
            status = 500
            body = json.dumps(
                {"error": "response contains non-finite values"}).encode()
        reason = _REASONS.get(status, "Unknown")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in (extra_headers or {}).items())
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def _serve(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=128)
        self.address = self._server.sockets[0].getsockname()[:2]
        logger.info("async serving front end listening on %s:%d",
                    *self.address)
        self._started.set()
        try:
            # start_server is already accepting; park until stop() fires.
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Cancel parked connections (e.g. slow clients mid-head) and
            # wait them out, so no coroutine outlives the loop and finds
            # it closed at garbage-collection time.
            pending = [conn for conn in list(self._connections)
                       if not conn.done()]
            for connection in pending:
                connection.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # One extra beat lets the transports' close callbacks run.
            await asyncio.sleep(0)
            await asyncio.sleep(0)

    def run(self) -> None:
        """Serve until cancelled (the blocking CLI entry point).  Reaps the
        app's engines — including worker processes — on the way out."""
        self._loop = asyncio.new_event_loop()
        task = self._loop.create_task(self._serve())
        try:
            self._loop.run_until_complete(task)
        except KeyboardInterrupt:
            # Run the loop just long enough for _serve's finally block to
            # close the listener and cancel parked connections — otherwise
            # the suspended coroutine is GC'd mid-finally ("coroutine
            # ignored GeneratorExit").  A second Ctrl-C still gets through.
            task.cancel()
            try:
                self._loop.run_until_complete(task)
            except (KeyboardInterrupt, asyncio.CancelledError):
                pass
        except asyncio.CancelledError:
            pass
        finally:
            self._shutdown_loop()

    def start_background(self) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns the bound address.

        The test-suite (and embedding) entry point; pair with :meth:`stop`.
        """
        self._loop = asyncio.new_event_loop()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve())
            except asyncio.CancelledError:  # pragma: no cover
                pass
            except RuntimeError:  # loop stopped by stop(); expected
                pass

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-async-serve")
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("async serving front end failed to start")
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop a background server and release everything (idempotent):
        the listener, the executor, and the app's engines — after this, no
        worker process of this server is running."""
        loop, self._loop = self._loop, None
        if loop is not None and loop.is_running() and self._stopping is not None:
            # _serve() owns the orderly teardown: it closes the listener,
            # cancels parked connections and waits them out, then returns —
            # which ends run_until_complete on the server thread.
            loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if loop is not None and not loop.is_running():
            loop.close()
        self._release()

    def _shutdown_loop(self) -> None:
        if self._server is not None:
            self._server.close()
        if self._loop is not None and not self._loop.is_running():
            self._loop.close()
        self._loop = None
        self._release()

    def _release(self) -> None:
        self._executor.shutdown(wait=True)
        self.app.close()
        logger.info("async serving front end stopped")


def create_async_server(
    store: Union[ModelStore, str],
    host: str = "127.0.0.1",
    port: int = 8080,
    max_batch: int = 64,
    batch_delay: float = 0.002,
    verbose: bool = False,
    kernel=None,
    workers: bool = False,
    executor_threads: int = 16,
    head_timeout: float = HEAD_TIMEOUT,
    body_timeout: float = BODY_TIMEOUT,
    request_timeout: Optional[float] = None,
    degraded: str = "fail",
    worker_options: Optional[Dict[str, object]] = None,
    dtype: Optional[str] = None,
) -> AsyncServingServer:
    """Build the asyncio front end over a model store (CLI-facing twin of
    :func:`repro.serve.http.create_server`).

    With ``workers=True``, sharded models are served by one worker process
    per shard; single-file models still serve in-process.  Every response
    stays byte-identical to the threaded server's.  ``head_timeout`` /
    ``body_timeout`` bound the client's delivery of a request;
    ``request_timeout``, ``degraded`` and ``worker_options`` set the
    fault-tolerance policy (see :class:`~repro.serve.http.ServingApp`).
    """
    app = ServingApp(store, max_batch=max_batch, batch_delay=batch_delay,
                     kernel=kernel, workers=workers,
                     request_timeout=request_timeout, degraded=degraded,
                     worker_options=worker_options, dtype=dtype)
    return AsyncServingServer(app, host=host, port=port,
                              executor_threads=executor_threads,
                              verbose=verbose,
                              head_timeout=head_timeout,
                              body_timeout=body_timeout)
