"""Fold-in of unseen interval rows into a fitted model's latent space.

Serving a decomposition means answering queries for rows the model was never
fitted on (a new user's rating ranges, a new face's interval features) without
re-running the factorization.  The classic LSI fold-in does this for scalar
SVD: a new row ``x`` becomes ``u = x V Sigma^{-1}``, the least-squares
solution of ``u (Sigma V^T) ~= x``.  :class:`FoldInProjector` generalizes the
idea to every decomposition the registry can produce:

* the **scalar path** projects through the Moore-Penrose pseudo-inverse of
  the midpoint item map ``Sigma_mid V_mid^T`` — exact for the scalar-factor
  methods and the natural choice wherever scoring happens on midpoints;
* the **interval path** (for interval-factor targets) projects the lower and
  upper endpoints separately through the pseudo-inverses built from the
  lower/upper ``V``/``Sigma`` factors, then sorts the endpoints, yielding a
  valid interval latent row.

Because ``pinv`` restricted to the latent row span is an exact left inverse
of the item map, folding in anything the model can itself produce (a served
reconstruction row) recovers it to numerical tolerance — the property the
test suite checks for every registered method and target.

Sparse query rows (:class:`~repro.interval.sparse.SparseIntervalMatrix`) get
*observed-only* semantics: a cell absent from the sparsity pattern means "the
user never rated this item", not "the user rated it zero", so only the
observed columns enter the least-squares projection — each row solves against
the item map restricted to its own observed columns.  This is the classic
masked fold-in of CF serving, and it is what makes a 20-rating query row
meaningful against a 2 000-item model.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike, get_kernel
from repro.interval.linalg import interval_matmul
from repro.interval.sparse import SparseIntervalMatrix, is_sparse_interval

Rows = Union[np.ndarray, IntervalMatrix, SparseIntervalMatrix]


def batch_invariant_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product whose per-row results do not depend on the batch size.

    BLAS gemm chooses blocking (and therefore accumulation order) from the
    output shape, so the same logical row can differ in the last ulp between
    a ``1 x m`` call and a ``q x m`` call.  The serving layer promises that
    micro-batching never changes an answer, so its hot path uses einsum's
    fixed reduction order — each output row depends only on its own input
    row.  Latent ranks are small, so the BLAS throughput given up is minor.
    """
    return np.einsum("ij,jk->ik", a, b)


class FoldInProjector:
    """Maps unseen interval rows into a decomposition's latent row space.

    All pseudo-inverses are precomputed once at construction (``m x r`` each),
    so folding a batch of rows is a single matrix product.

    Every method accepts ``rows`` as a dense ``(q, m)``
    :class:`IntervalMatrix` / ndarray (a 1-D length-``m`` row is promoted to
    one query row, scalars to degenerate intervals) or a ``(q, m)``
    :class:`~repro.interval.sparse.SparseIntervalMatrix` of partially
    observed rows, where ``m`` is the model's item count.

    ``kernel`` selects the interval-product kernel
    (:mod:`repro.interval.kernels`) for the latent-feature product of
    :meth:`latent_features`; the scalar fold-in paths are kernel-independent.

    ``accum_dtype`` opts into mixed-precision fold-in: pseudo-inverses are
    computed and applied in that dtype (and the masked least squares solves
    in it) while inputs and results stay in the model's storage dtype.  This
    is the serving half of the ``mixed`` precision policy — float32 factors,
    float64 accumulation.  ``None`` (default) accumulates in the storage
    dtype, which for float64 models is exactly the historical behavior.

    **Batch-invariance guarantee.**  Dense projections run through
    :func:`batch_invariant_matmul` and sparse projections solve one least
    squares per row, so each folded row is a pure function of its own input
    row and the model: stacking rows into larger batches (micro-batching,
    shard scatter) never changes any result bit.
    """

    def __init__(self, decomposition: IntervalDecomposition,
                 kernel: KernelLike = None,
                 accum_dtype: Optional[Union[str, np.dtype]] = None):
        self.decomposition = decomposition
        self.kernel = get_kernel(kernel)
        self.rank = decomposition.rank
        self.n_items = int(decomposition.v.shape[0])

        #: Scalar item map ``Sigma_mid V_mid^T`` (r x m) and its pseudo-inverse.
        self.item_map = decomposition.item_map()
        #: Accumulation dtype for the fold-in solves; ``None`` means "the
        #: storage dtype", which keeps the float64 path byte-identical.
        self.accum_dtype = None if accum_dtype is None else np.dtype(accum_dtype)
        if self.accum_dtype is not None and self.accum_dtype == self.item_map.dtype:
            self.accum_dtype = None
        self._pinv_mid = self._pinv(self.item_map)

        sigma_lo, sigma_hi = decomposition.sigma_endpoints()
        v_lo, v_hi = decomposition.v_endpoints()
        if decomposition.is_interval_factors or decomposition.is_interval_core:
            #: Endpoint item maps (r x m), kept for the masked sparse path
            #: whose per-row column restriction cannot reuse a global pinv.
            self._map_lower = sigma_lo @ v_lo.T
            self._map_upper = sigma_hi @ v_hi.T
            self._pinv_lower = self._pinv(self._map_lower)
            self._pinv_upper = self._pinv(self._map_upper)
        else:
            self._map_lower = self._map_upper = self.item_map
            self._pinv_lower = self._pinv_upper = self._pinv_mid

    def _pinv(self, item_map: np.ndarray) -> np.ndarray:
        """Pseudo-inverse in the accumulation dtype (kept there for reuse)."""
        if self.accum_dtype is not None:
            item_map = item_map.astype(self.accum_dtype, copy=False)
        return np.linalg.pinv(item_map)

    def _project(self, values: np.ndarray, pinv: np.ndarray) -> np.ndarray:
        """Dense projection through a precomputed pseudo-inverse.

        Under mixed precision the product runs in ``accum_dtype`` (the pinv
        already lives there) and the result is cast back to storage.
        """
        if self.accum_dtype is None:
            return batch_invariant_matmul(values, pinv)
        out = batch_invariant_matmul(
            values.astype(self.accum_dtype, copy=False), pinv)
        return out.astype(self.item_map.dtype, copy=False)

    # ------------------------------------------------------------------ #
    # Input normalization
    # ------------------------------------------------------------------ #
    def _coerce_rows(self, rows: Rows) -> Union[IntervalMatrix, SparseIntervalMatrix]:
        if not is_sparse_interval(rows):
            rows = IntervalMatrix.coerce(rows)
            if rows.ndim == 1:
                rows = IntervalMatrix(rows.lower[np.newaxis, :], rows.upper[np.newaxis, :],
                                      check=False)
        if rows.ndim != 2 or rows.shape[1] != self.n_items:
            raise ValueError(
                f"expected query rows of width {self.n_items}, got shape {rows.shape}"
            )
        return rows

    def _masked_least_squares(self, rows: SparseIntervalMatrix, values: np.ndarray,
                              item_map: np.ndarray) -> np.ndarray:
        """Per-row least squares restricted to each row's observed columns.

        ``values`` is a data array aligned with the rows' shared CSR pattern.
        Each row solves ``min_u || u @ item_map[:, observed] - values_row ||``;
        a row with no observations folds to the zero latent vector (scoring it
        yields the model's all-zero baseline, the natural cold-start answer).
        """
        indptr = rows.lower.indptr
        indices = rows.lower.indices
        latent = np.zeros((rows.shape[0], self.rank), dtype=item_map.dtype)
        if self.accum_dtype is not None:
            item_map = item_map.astype(self.accum_dtype, copy=False)
            values = values.astype(self.accum_dtype, copy=False)
        for i in range(rows.shape[0]):
            start, stop = indptr[i], indptr[i + 1]
            if start == stop:
                continue
            columns = indices[start:stop]
            design = item_map[:, columns].T
            latent[i] = np.linalg.lstsq(design, values[start:stop], rcond=None)[0]
        return latent

    # ------------------------------------------------------------------ #
    # Projections
    # ------------------------------------------------------------------ #
    def fold_in(self, rows: Rows) -> np.ndarray:
        """Scalar latent coordinates (``q x r``) of the rows' midpoints.

        ``u = x_mid pinv(Sigma_mid V_mid^T)`` — the least-squares latent row
        whose reconstruction best approximates the query row.  Sparse rows
        solve the same least-squares problem restricted to their observed
        columns (unobserved items exert no pull toward a zero rating).
        """
        rows = self._coerce_rows(rows)
        if is_sparse_interval(rows):
            midpoints = 0.5 * (rows.lower.data + rows.upper.data)
            return self._masked_least_squares(rows, midpoints, self.item_map)
        return self._project(rows.midpoint(), self._pinv_mid)

    def fold_in_interval(self, rows: Rows) -> IntervalMatrix:
        """Interval latent coordinates (``q x r``) of the rows.

        Lower and upper endpoints are projected separately through the
        endpoint pseudo-inverses; the results are sorted elementwise so the
        latent row is a valid interval even when a projector column flips the
        ordering (pseudo-inverses may contain negative entries).  Sparse rows
        project each endpoint through the observed-column least squares
        against the matching endpoint item map.
        """
        rows = self._coerce_rows(rows)
        if is_sparse_interval(rows):
            lower = self._masked_least_squares(rows, rows.lower.data, self._map_lower)
            upper = self._masked_least_squares(rows, rows.upper.data, self._map_upper)
        else:
            lower = self._project(rows.lower, self._pinv_lower)
            upper = self._project(rows.upper, self._pinv_upper)
        return IntervalMatrix(np.minimum(lower, upper), np.maximum(lower, upper))

    def latent_features(self, rows: Rows) -> IntervalMatrix:
        """Fold rows in and return ``u x Sigma`` features (``q x r``).

        These live in the same space as the stored rows' features
        (:meth:`~repro.core.result.IntervalDecomposition.projection`), so a
        folded-in query row can be compared against the training rows with
        the paper's interval distance (nearest-neighbour serving).
        """
        u = self.fold_in_interval(rows)
        sigma = self.decomposition.sigma
        if not isinstance(sigma, IntervalMatrix):
            sigma = np.asarray(sigma)
            if sigma.dtype != np.float32:
                sigma = np.asarray(sigma, dtype=float)
            sigma = IntervalMatrix.from_scalar(sigma)
        return interval_matmul(u, sigma, matmul=batch_invariant_matmul,
                               kernel=self.kernel)

    def reconstruct_rows(self, rows: Rows) -> np.ndarray:
        """Served (midpoint) reconstruction of the query rows (``q x m``).

        Fold-in followed by the item map: the model's best rank-``r`` account
        of each query row, used directly as recommendation scores.
        """
        return batch_invariant_matmul(self.fold_in(rows), self.item_map)
