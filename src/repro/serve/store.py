"""Persistent store of fitted decompositions ("models") for online serving.

A :class:`ModelStore` is a directory holding one published model per name,
in one of two on-disk formats (see ``docs/OPERATIONS.md`` for the full
layout):

* **single-file** — ``<name>.npz``: the factors, via the :mod:`repro.io`
  decomposition round-trip (so anything the registry can fit can be served);
* **sharded** — ``<name>.shard-NN-<gen>.npz`` row-range shards of ``U``
  with the item factors replicated per shard, published by
  :class:`~repro.serve.shard.ShardedModelStore`.  ``<gen>`` is the publish
  generation: every reshard writes a fresh set of archives under the next
  generation number and swaps the manifest atomically, keeping the previous
  generation on disk for in-flight readers (legacy models without the
  generation suffix stay loadable).

Either way ``<name>.json`` carries the metadata: method key, decomposition
target, rank, the shape of the training matrix, its
:func:`repro.io.interval_fingerprint`, the creation time, and (sharded
models only) the shard count.  All files are written through
:func:`repro.io.atomic_write` (temp file + ``os.replace``), and the metadata
file is written *last*, so a concurrent reader — the HTTP service lists and
loads models while publishers write — either sees a complete model or does
not see it at all.
"""

from __future__ import annotations

import contextlib
import json
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import io as repro_io
from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix

PathLike = Union[str, Path]

#: Model names are path-safe slugs: no separators, no leading dot.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Names ending like a shard archive stem are reserved: a model literally
#: named ``x.shard-01`` (or ``x.shard-01-002``, the generation-versioned
#: form) would share its ``.npz`` path with shard 1 of a sharded model
#: ``x``, so publishing either would corrupt the other.
_RESERVED_SUFFIX = re.compile(r"\.shard-\d+(-\d+)?$")


class ModelStoreError(ValueError):
    """Raised for invalid model names and missing models."""


@dataclass(frozen=True)
class ModelRecord:
    """Metadata of one published model, as stored in its JSON sidecar.

    ``shards`` is ``None`` for the single-file format and the shard count for
    models published by
    :class:`~repro.serve.shard.ShardedModelStore` — whose factors live in
    ``<name>.shard-NN.npz`` row-range archives instead of ``<name>.npz``.
    ``generation`` is the publish generation of a sharded model: publishes
    since the hitless-reshard release write their archives to
    generation-versioned paths (``<name>.shard-NN-<gen>.npz``) and bump the
    number on every reshard, so a republish never overwrites the files a
    concurrent reader is loading.  ``None`` means the legacy unversioned
    layout (and always accompanies ``shards=None``).  ``dtype`` names the
    endpoint dtype of the factors (``"float64"`` unless the model was fitted
    under a low-precision policy) and is verified against the actual factor
    arrays on load, so a float32 model can never be served as float64 (or
    vice versa) by editing the sidecar.  Sidecars of float64 single-file
    models stay byte-compatible with earlier releases (the optional keys are
    simply absent).
    """

    name: str
    method: str
    target: str
    rank: int
    shape: tuple
    fingerprint: Optional[str]
    created_at: float
    shards: Optional[int] = None
    generation: Optional[int] = None
    dtype: str = "float64"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the sidecar and the HTTP API)."""
        payload = asdict(self)
        payload["shape"] = list(self.shape)
        if self.shards is None:
            del payload["shards"]
        if self.generation is None:
            del payload["generation"]
        if self.dtype == "float64":
            del payload["dtype"]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelRecord":
        """Inverse of :meth:`to_dict` (tolerates sidecars without ``shards``,
        ``generation`` or ``dtype``)."""
        shards = payload.get("shards")
        if shards is not None and int(shards) < 1:
            raise ValueError(f"invalid shard count {shards!r}")
        generation = payload.get("generation")
        if generation is not None and int(generation) < 1:
            raise ValueError(f"invalid shard generation {generation!r}")
        dtype = str(payload.get("dtype", "float64"))
        if dtype not in ("float32", "float64"):
            raise ValueError(f"invalid model dtype {dtype!r}")
        return cls(
            name=str(payload["name"]),
            method=str(payload["method"]),
            target=str(payload["target"]),
            rank=int(payload["rank"]),
            shape=tuple(int(n) for n in payload["shape"]),
            fingerprint=(None if payload.get("fingerprint") is None
                         else str(payload["fingerprint"])),
            created_at=float(payload["created_at"]),
            shards=None if shards is None else int(shards),
            generation=None if generation is None else int(generation),
            dtype=dtype,
        )


class ModelStore:
    """Directory-backed store that publishes, lists and loads named models.

    The directory is created on the first :meth:`save` — read paths (list,
    load, the HTTP service) never create it, so a mistyped ``--store`` path
    shows up as an empty store rather than silently materializing on disk.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name or ""):
            raise ModelStoreError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' "
                "or '-', starting with a letter or digit"
            )
        return name

    @classmethod
    def check_publish_name(cls, name: str) -> str:
        """Validate a name for *publishing* (returns it, raises otherwise).

        Beyond the path-safety every store operation enforces, publishing
        rejects names ending in ``.shard-NN``: such a model would share its
        archive path with a shard of sharded model ``<name-without-suffix>``,
        and publishing either would corrupt the other.  Read and delete
        paths stay tolerant so models published under earlier releases with
        such names remain loadable and removable.  Public so the CLI can
        fail fast on a bad name before spending minutes fitting or hashing.
        """
        cls._check_name(name)
        if _RESERVED_SUFFIX.search(name):
            raise ModelStoreError(
                f"invalid model name {name!r}: the '.shard-NN' suffix is "
                "reserved for shard archives of sharded models"
            )
        return name

    def _npz_path(self, name: str) -> Path:
        return self.directory / f"{name}.npz"

    def _meta_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def _shard_path(self, name: str, index: int,
                    generation: Optional[int] = None) -> Path:
        """Path of one shard archive: generation-versioned when a generation
        is given (``<name>.shard-NN-<gen>.npz``), the legacy unversioned path
        otherwise."""
        if generation is None:
            return self.directory / f"{name}.shard-{index:02d}.npz"
        return self.directory / f"{name}.shard-{index:02d}-{generation:03d}.npz"

    def _factor_paths(self, name: str, record: "ModelRecord") -> List[Path]:
        """Every factor archive a complete model named ``name`` requires.

        Driven by the metadata's shard count and generation, not by
        ``record.name``, so a sidecar copied under a different file name
        cannot point completeness checks at another model's factors.
        """
        if record.shards is not None:
            return [self._shard_path(name, i, record.generation)
                    for i in range(record.shards)]
        return [self._npz_path(name)]

    # ------------------------------------------------------------------ #
    # Publish / load
    # ------------------------------------------------------------------ #
    def save(
        self,
        name: str,
        decomposition: IntervalDecomposition,
        matrix: Optional[IntervalMatrix] = None,
        fingerprint: Optional[str] = None,
    ) -> ModelRecord:
        """Publish a fitted decomposition under ``name`` (replacing any old one).

        ``matrix`` (or a precomputed ``fingerprint``) records which data the
        model was fitted on, so consumers can detect stale models.  Factors are
        written before metadata; each write is atomic.
        """
        self.check_publish_name(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        if fingerprint is None and matrix is not None:
            fingerprint = repro_io.interval_fingerprint(matrix)
        record = ModelRecord(
            name=name,
            method=decomposition.method,
            target=decomposition.target.value,
            rank=decomposition.rank,
            shape=tuple(int(n) for n in decomposition.shape),
            fingerprint=fingerprint,
            created_at=time.time(),
            dtype=decomposition.dtype.name,
        )
        with repro_io.atomic_write(self._npz_path(name)) as tmp:
            repro_io.save_decomposition_npz(decomposition, tmp)
        with repro_io.atomic_write(self._meta_path(name)) as tmp:
            tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n")
        self._remove_stale_shards(name)
        return record

    def _owned_shard_paths(self, name: str) -> List[Tuple[int, Optional[int], Path]]:
        """``(index, generation, path)`` of every existing shard archive owned
        by ``name`` (``generation`` is ``None`` for legacy unversioned files).

        Files whose stem is itself a *published* model (a legacy model
        literally named ``<name>.shard-07``) are excluded — they belong to
        that model, whatever their name suggests.
        """
        pattern = re.compile(re.escape(name) + r"\.shard-(\d+)(?:-(\d+))?\.npz$")
        if not self.directory.is_dir():
            return []
        owned = []
        for path in sorted(self.directory.glob(f"{name}.shard-*.npz")):
            match = pattern.match(path.name)
            if match is None:
                continue
            if self._meta_path(path.name[: -len(".npz")]).exists():
                continue  # a real model owns this file name
            generation = match.group(2)
            owned.append((int(match.group(1)),
                          None if generation is None else int(generation),
                          path))
        return owned

    def _remove_stale_shards(
        self, name: str,
        keep: Optional[Dict[Optional[int], Optional[int]]] = None,
    ) -> None:
        """Unlink owned shard archives the keep map does not protect.

        ``keep`` maps generation (``None`` for legacy unversioned files) to
        the number of shard indices to keep of that generation (``None``
        keeps the whole generation).  Files of unlisted generations are
        removed.  ``keep=None`` (or ``{}``) removes every owned shard file —
        what a single-file republish does.

        The sharded publish path keeps the *previous* generation alongside
        the new one: a reader that loaded the previous manifest moments
        before the swap can still open the files it names.  The previous
        generation is garbage-collected by the next publish (or an explicit
        :meth:`~repro.serve.shard.ShardedModelStore.gc_shard_generations`),
        once no reader can still hold a manifest that references it.
        """
        keep = keep or {}
        for index, generation, path in self._owned_shard_paths(name):
            if generation in keep:
                limit = keep[generation]
                if limit is None or index < limit:
                    continue
            with contextlib.suppress(FileNotFoundError):
                path.unlink()

    def exists(self, name: str) -> bool:
        """True when a complete model (metadata + every factor archive) is
        published — ``<name>.npz`` for single-file models, all
        ``<name>.shard-NN.npz`` row-range archives for sharded ones."""
        self._check_name(name)
        if not self._meta_path(name).exists():
            return False
        try:
            record = self.record(name)
        except (ModelStoreError, OSError):
            # OSError covers foreign filesystem entries squatting on the
            # sidecar path (a *directory* named <name>.json, unreadable
            # files...) — not-a-model, like list() treats them.
            return False
        return all(path.exists() for path in self._factor_paths(name, record))

    def _read_meta(self, name: str) -> Dict[str, object]:
        """One consistent read of a model's JSON sidecar (its raw payload).

        Both :meth:`record` and the sharded store's ``manifest`` parse the
        same single read, so a concurrent republish can never pair one
        publish's record with another's shard layout.
        """
        self._check_name(name)
        try:
            payload = json.loads(self._meta_path(name).read_text())
        except FileNotFoundError:
            raise ModelStoreError(
                f"no model named {name!r} in {self.directory}; "
                f"available: {', '.join(r.name for r in self.list()) or '(none)'}"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ModelStoreError(
                f"{self._meta_path(name)} is not a model metadata file: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ModelStoreError(
                f"{self._meta_path(name)} is not a model metadata file"
            )
        return payload

    def _record_from_payload(self, name: str,
                             payload: Dict[str, object]) -> ModelRecord:
        """Parse a sidecar payload, wrapping malformed ones in store errors."""
        try:
            return ModelRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError) as error:
            raise ModelStoreError(
                f"{self._meta_path(name)} is not a model metadata file: {error}"
            ) from error

    def record(self, name: str) -> ModelRecord:
        """Metadata of one published model."""
        return self._record_from_payload(name, self._read_meta(name))

    def load(self, name: str) -> Tuple[IntervalDecomposition, ModelRecord]:
        """Load a single-file model's ``(decomposition, record)`` pair.

        Sharded models have no monolithic factor archive; load them through
        :meth:`repro.serve.shard.ShardedModelStore.load_shards` (per-shard)
        or :meth:`~repro.serve.shard.ShardedModelStore.load_merged`
        (reassembled).
        """
        record = self.record(name)
        if record.shards is not None:
            raise ModelStoreError(
                f"model {name!r} is sharded into {record.shards} row-range "
                "shards; load it with ShardedModelStore.load_shards() or "
                "ShardedModelStore.load_merged()"
            )
        decomposition = repro_io.load_decomposition_npz(self._npz_path(name))
        loaded_dtype = decomposition.dtype.name
        if loaded_dtype != record.dtype:
            raise ModelStoreError(
                f"model {name!r} factors are {loaded_dtype} but its sidecar "
                f"records dtype {record.dtype!r}; the archive and metadata "
                "disagree — republish the model"
            )
        return decomposition, record

    def list(self) -> List[ModelRecord]:
        """Records of every complete published model, sorted by name.

        Tolerant by design: a missing store directory is an empty store, and
        files that are not model sidecars (foreign JSON, in-flight temps,
        metadata without factors) are skipped rather than failing the whole
        listing.
        """
        if not self.directory.is_dir():
            return []
        records = []
        for meta_path in sorted(self.directory.glob("*.json")):
            if meta_path.name.startswith("."):
                continue  # in-flight temp file
            name = meta_path.stem
            try:
                record = self._record_from_payload(name, self._read_meta(name))
            except (ModelStoreError, OSError):
                continue  # foreign .json living in the store directory
            if all(path.exists() for path in self._factor_paths(name, record)):
                records.append(record)
        return records

    def delete(self, name: str) -> None:
        """Unpublish a model (metadata first, so readers never see a half-model).

        Removes the sidecar and every factor archive — the single NPZ or, for
        sharded models, all row-range shard files.  Damaged models (corrupt
        sidecar, missing shard files) are still removable: deletion is the
        cleanup path, so it never demands the model be loadable first.
        """
        self._check_name(name)
        if not self._meta_path(name).is_file():
            raise ModelStoreError(f"no model named {name!r} in {self.directory}")
        try:
            record = self.record(name)
            # Beyond the current generation's archives, sweep any previous
            # generation a recent reshard kept around for in-flight readers.
            paths = self._factor_paths(name, record) + [
                path for _, _, path in self._owned_shard_paths(name)
            ]
        except (ModelStoreError, OSError):
            # The sidecar exists but cannot be parsed, so the factor layout
            # is unknown.  Deletion is the cleanup path for exactly such
            # damage: best-effort remove every archive this name can own
            # (the single file plus any shard files not owned by another
            # published model).
            paths = [self._npz_path(name)] + [
                path for _, _, path in self._owned_shard_paths(name)
            ]
        self._meta_path(name).unlink()
        for path in paths:
            with contextlib.suppress(FileNotFoundError):
                path.unlink()

    def __len__(self) -> int:
        return len(self.list())
