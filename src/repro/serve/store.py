"""Persistent store of fitted decompositions ("models") for online serving.

A :class:`ModelStore` is a directory holding one published model per name:

* ``<name>.npz`` — the factors, via the :mod:`repro.io` decomposition
  round-trip (so anything the registry can fit can be served);
* ``<name>.json`` — metadata: method key, decomposition target, rank, the
  shape of the training matrix, its :func:`repro.io.interval_fingerprint`,
  and the creation time.

Both files are written through :func:`repro.io.atomic_write` (temp file +
``os.replace``), and the metadata file is written *last*, so a concurrent
reader — the HTTP service lists and loads models while publishers write —
either sees a complete model or does not see it at all.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import io as repro_io
from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix

PathLike = Union[str, Path]

#: Model names are path-safe slugs: no separators, no leading dot.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ModelStoreError(ValueError):
    """Raised for invalid model names and missing models."""


@dataclass(frozen=True)
class ModelRecord:
    """Metadata of one published model, as stored in its JSON sidecar."""

    name: str
    method: str
    target: str
    rank: int
    shape: tuple
    fingerprint: Optional[str]
    created_at: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the sidecar and the HTTP API)."""
        payload = asdict(self)
        payload["shape"] = list(self.shape)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            method=str(payload["method"]),
            target=str(payload["target"]),
            rank=int(payload["rank"]),
            shape=tuple(int(n) for n in payload["shape"]),
            fingerprint=(None if payload.get("fingerprint") is None
                         else str(payload["fingerprint"])),
            created_at=float(payload["created_at"]),
        )


class ModelStore:
    """Directory-backed store that publishes, lists and loads named models.

    The directory is created on the first :meth:`save` — read paths (list,
    load, the HTTP service) never create it, so a mistyped ``--store`` path
    shows up as an empty store rather than silently materializing on disk.
    """

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name or ""):
            raise ModelStoreError(
                f"invalid model name {name!r}: use letters, digits, '.', '_' "
                "or '-', starting with a letter or digit"
            )
        return name

    def _npz_path(self, name: str) -> Path:
        return self.directory / f"{name}.npz"

    def _meta_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    # ------------------------------------------------------------------ #
    # Publish / load
    # ------------------------------------------------------------------ #
    def save(
        self,
        name: str,
        decomposition: IntervalDecomposition,
        matrix: Optional[IntervalMatrix] = None,
        fingerprint: Optional[str] = None,
    ) -> ModelRecord:
        """Publish a fitted decomposition under ``name`` (replacing any old one).

        ``matrix`` (or a precomputed ``fingerprint``) records which data the
        model was fitted on, so consumers can detect stale models.  Factors are
        written before metadata; each write is atomic.
        """
        self._check_name(name)
        self.directory.mkdir(parents=True, exist_ok=True)
        if fingerprint is None and matrix is not None:
            fingerprint = repro_io.interval_fingerprint(matrix)
        record = ModelRecord(
            name=name,
            method=decomposition.method,
            target=decomposition.target.value,
            rank=decomposition.rank,
            shape=tuple(int(n) for n in decomposition.shape),
            fingerprint=fingerprint,
            created_at=time.time(),
        )
        with repro_io.atomic_write(self._npz_path(name)) as tmp:
            repro_io.save_decomposition_npz(decomposition, tmp)
        with repro_io.atomic_write(self._meta_path(name)) as tmp:
            tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n")
        return record

    def exists(self, name: str) -> bool:
        """True when a complete model (factors + metadata) is published."""
        self._check_name(name)
        return self._meta_path(name).exists() and self._npz_path(name).exists()

    def record(self, name: str) -> ModelRecord:
        """Metadata of one published model."""
        self._check_name(name)
        try:
            payload = json.loads(self._meta_path(name).read_text())
            return ModelRecord.from_dict(payload)
        except FileNotFoundError:
            raise ModelStoreError(
                f"no model named {name!r} in {self.directory}; "
                f"available: {', '.join(r.name for r in self.list()) or '(none)'}"
            ) from None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise ModelStoreError(
                f"{self._meta_path(name)} is not a model metadata file: {error}"
            ) from error

    def load(self, name: str) -> Tuple[IntervalDecomposition, ModelRecord]:
        """Load a model's ``(decomposition, record)`` pair."""
        record = self.record(name)
        decomposition = repro_io.load_decomposition_npz(self._npz_path(name))
        return decomposition, record

    def list(self) -> List[ModelRecord]:
        """Records of every complete published model, sorted by name.

        Tolerant by design: a missing store directory is an empty store, and
        files that are not model sidecars (foreign JSON, in-flight temps,
        metadata without factors) are skipped rather than failing the whole
        listing.
        """
        if not self.directory.is_dir():
            return []
        records = []
        for meta_path in sorted(self.directory.glob("*.json")):
            if meta_path.name.startswith("."):
                continue  # in-flight temp file
            name = meta_path.stem
            if not self._npz_path(name).exists():
                continue
            try:
                records.append(ModelRecord.from_dict(json.loads(meta_path.read_text())))
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # foreign .json living in the store directory
        return records

    def delete(self, name: str) -> None:
        """Unpublish a model (metadata first, so readers never see a half-model)."""
        self._check_name(name)
        if not self.exists(name):
            raise ModelStoreError(f"no model named {name!r} in {self.directory}")
        self._meta_path(name).unlink()
        self._npz_path(name).unlink()

    def __len__(self) -> int:
        return len(self.list())
