"""Per-shard worker processes behind the sharded serving front end.

One Python process bounds every thread-based scatter at the GIL (numpy
releases it in BLAS, but selection, fold-in bookkeeping and framing do not
parallelize), and a single address space means one bad allocation takes the
whole service down.  This module moves each row-range shard into its own
**worker process**:

* :func:`worker_main` — the ``python -m repro.serve.worker`` entry point: it
  loads exactly one shard (:meth:`ShardedModelStore.load_shard`), connects
  back to the supervisor over localhost TCP, and answers request frames
  until end-of-stream.  The wire format is the length-prefixed npy framing
  of :mod:`repro.serve.protocol` — no pickle in either direction;
* :class:`ShardWorkerSupervisor` — spawns one worker per shard, checks
  their health, restarts the dead, and tears everything down without
  leaving orphans (workers exit on socket EOF, so even a killed supervisor
  releases them);
* :class:`WorkerShardedQueryEngine` — the process-backed counterpart of
  :class:`~repro.serve.shard.ShardedQueryEngine`: same query API, same
  *byte-identical* answers, but each shard's scoring runs in its own
  process.

**Why results stay byte-identical.**  Every scoring path is row-local and
deterministic (einsum fold-in, element-local distances), the replicated
item factors are bitwise equal across shards — so each worker's fold-in
projector computes the exact same pseudo-inverse bits the in-process router
shares — and npy framing round-trips array bytes exactly.  The gather then
merges under :func:`~repro.serve.query.top_k`'s total order, which provably
reproduces the unsharded selection.  The parity suite asserts byte equality
against both :class:`~repro.serve.query.QueryEngine` and the in-process
router (``tests/test_serve_worker.py``).

**Generation pinning.**  The supervisor plans against one
:class:`~repro.serve.shard.ShardManifest` and ships that exact manifest
(JSON in the environment) to every worker it spawns, so workers load the
*pinned* generation even after a reshard has moved the on-disk sidecar on —
the superseded generation's files are kept until drain precisely for this.
A worker whose pinned generation is no longer loadable (two reshards, or an
explicit GC) exits with :data:`EXIT_STALE_GENERATION` instead of loading
mixed rows, and a supervisor refuses to *start* a fresh fleet against a
superseded manifest.  The front end's engine cache keys on the generation,
so the next request simply builds a fresh engine against the new manifest.
"""

from __future__ import annotations

import argparse
import hmac
import json
import logging
import os
import secrets
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

import repro
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike, get_kernel
from repro.interval.sparse import is_sparse_interval
from repro.serve.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    install_protocol_hook,
)
from repro.serve.foldin import FoldInProjector, Rows
from repro.serve.protocol import (
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
)
from repro.serve.query import (
    QueryEngine,
    TopKResult,
    top_k,
    top_k_from_candidates,
)
from repro.serve.shard import (
    ShardedModelStore,
    ShardManifest,
    plan_row_ranges,
)
from repro.serve.store import ModelStoreError

#: Worker exit status when the on-disk manifest no longer matches the
#: generation the supervisor pinned (a reshard raced the worker start).
EXIT_STALE_GENERATION = 3

#: Worker exit status when the loaded shard's factor dtype does not match
#: the dtype the supervisor pinned — serving would silently mix precisions
#: (and therefore bytes) across shards, so the worker refuses to serve.
EXIT_DTYPE_MISMATCH = 4

#: Name of the environment variable carrying the connect-back auth token
#: (environment, not argv: argv is world-readable in ``ps``).
TOKEN_ENV = "REPRO_WORKER_TOKEN"

#: Environment variable carrying the supervisor's pinned manifest as JSON
#: (see :meth:`ShardManifest.to_payload`).  The worker loads *this* layout,
#: not the on-disk sidecar: after a reshard the sidecar describes a newer
#: generation, but the superseded generation's files are deliberately kept
#: on disk until drain, so a pinned worker keeps restarting hitlessly.
MANIFEST_ENV = "REPRO_WORKER_MANIFEST"

#: Seconds the supervisor waits for a spawned worker to connect back and
#: authenticate before declaring the spawn failed.
SPAWN_TIMEOUT = 60.0

#: Default per-exchange socket timeout: the longest one request/response
#: round-trip with a worker may take before the worker counts as stalled.
CALL_TIMEOUT = 30.0

logger = logging.getLogger(__name__)


class WorkerError(RuntimeError):
    """A shard worker failed: bad frame, dead process, or a remote error."""


class WorkerRequestError(WorkerError):
    """The worker itself reported the request as bad (``ok: false``).

    The worker is healthy and the transport is fine — retrying or
    restarting would only repeat the same rejection, so the supervisor
    surfaces this immediately and without touching the worker.
    """


class ShardUnavailableError(WorkerError):
    """A shard cannot serve right now: retries exhausted or breaker open.

    ``retry_after`` is the supervisor's estimate (seconds) of when an
    attempt could succeed — the HTTP layer forwards it as a ``Retry-After``
    header on the 503 it maps this error to.
    """

    def __init__(self, shard: int, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.shard = shard
        self.retry_after = max(0.0, float(retry_after))


class DeadlineExceededError(WorkerError):
    """The request's end-to-end deadline expired before a shard answered."""


# --------------------------------------------------------------------- #
# Degradation reporting (request-thread-local)
# --------------------------------------------------------------------- #
_degradation = threading.local()


@contextmanager
def collect_missing_shards() -> Iterator[Set[int]]:
    """Collect the shard indices a degraded-mode query had to drop.

    The HTTP layer wraps each request in this scope; engines running in
    ``degraded="partial"`` mode report dropped shards into it (on the
    request thread, after the gather).  Engines that never degrade —
    in-process ones, or worker engines in the default fail-fast mode —
    simply leave the set empty, so callers need no backend-specific
    branches.
    """
    previous = getattr(_degradation, "missing", None)
    missing: Set[int] = set()
    _degradation.missing = missing
    try:
        yield missing
    finally:
        _degradation.missing = previous


def _note_missing_shards(shards: Sequence[int]) -> None:
    missing = getattr(_degradation, "missing", None)
    if missing is not None:
        missing.update(shards)


def _generation_token(generation: Optional[int]) -> str:
    """Command-line encoding of a pinned generation (legacy manifests have
    none)."""
    return "legacy" if generation is None else str(generation)


def _parse_generation_token(token: str) -> Optional[int]:
    return None if token == "legacy" else int(token)


# --------------------------------------------------------------------- #
# Worker side (runs in the spawned process)
# --------------------------------------------------------------------- #
def _build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.worker",
        description="One row-range shard worker (spawned by the serving "
                    "supervisor; not intended for interactive use)",
    )
    parser.add_argument("--store", required=True, help="model store directory")
    parser.add_argument("--model", required=True, help="sharded model name")
    parser.add_argument("--shard", required=True, type=int, help="shard index")
    parser.add_argument("--generation", required=True,
                        help="pinned manifest generation ('legacy' for "
                             "manifests without one)")
    parser.add_argument("--connect-port", required=True, type=int,
                        help="supervisor's localhost connect-back port")
    parser.add_argument("--kernel", default=None,
                        help="interval-product kernel key")
    parser.add_argument("--dtype", default="float64",
                        help="pinned factor dtype the loaded shard must match")
    return parser


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of one shard worker process.

    Loads its shard (fingerprint-verified), connects back to the
    supervisor, authenticates with the token from :data:`TOKEN_ENV`, then
    answers request frames until the supervisor closes the connection —
    end-of-stream is the shutdown signal, so a worker can never outlive its
    socket, even when the supervisor dies without cleanup.
    """
    args = _build_arg_parser().parse_args(argv)
    # Workers are spawned headless; without a handler their restart/fault
    # warnings would vanish.  basicConfig is a no-op when the embedding
    # environment already configured logging.
    logging.basicConfig(
        level=logging.WARNING,
        format="%(asctime)s %(name)s [pid %(process)d]: %(message)s")
    token = os.environ.get(TOKEN_ENV, "")
    if not token:
        logger.error("worker: no auth token in the environment")
        return 2
    faults = FaultPlan.from_env()
    if faults is not None:
        faults.bind(args.shard)
        install_protocol_hook(faults)
        logger.warning("worker shard %d armed fault plan %r",
                       args.shard, faults.spec)
    expected_generation = _parse_generation_token(args.generation)
    store = ShardedModelStore(args.store)
    pinned_payload = os.environ.get(MANIFEST_ENV)
    if pinned_payload:
        manifest = store.manifest_from_payload(args.model,
                                               json.loads(pinned_payload))
    else:  # hand-run without a supervisor: serve whatever is current
        manifest = store.manifest(args.model)
    if manifest.record.generation != expected_generation:
        logger.error(
            "worker: manifest of %r is at generation %s (pinned %s)",
            args.model, manifest.record.generation, expected_generation)
        return EXIT_STALE_GENERATION
    if faults is not None:
        faults.fire("load")
    try:
        shard, manifest = store.load_shard(args.model, args.shard,
                                           manifest=manifest)
    except ModelStoreError as error:
        # The pinned generation's files are gone — more than one reshard
        # has passed (or an explicit GC ran) since this worker's supervisor
        # planned.  Exit with the stale status so the supervisor reports
        # the cause instead of a bare load failure.
        logger.error("worker: pinned generation %s of %r is no longer "
                     "loadable: %s",
                     _generation_token(expected_generation), args.model, error)
        return EXIT_STALE_GENERATION
    if shard.dtype.name != args.dtype:
        # A shard of the wrong precision must never join a fleet: its
        # scores would differ from its peers' in the last bits, silently
        # breaking the byte-identity contract of scatter-gather serving.
        logger.error("worker: shard %d of %r holds %s factors but the "
                     "supervisor pinned dtype %s",
                     args.shard, args.model, shard.dtype.name, args.dtype)
        return EXIT_DTYPE_MISMATCH
    engine = QueryEngine(shard, kernel=args.kernel)
    row_start = manifest.row_ranges[args.shard][0]

    if faults is not None:
        faults.fire("connect")  # a stall here simulates a slow accept
    connection = socket.create_connection(("127.0.0.1", args.connect_port))
    try:
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = connection.makefile("rwb")
        write_frame(stream, {
            "op": "hello",
            "token": token,
            "shard": args.shard,
            "generation": manifest.record.generation,
            "n_users": engine.n_users,
            "n_items": engine.n_items,
            "pid": os.getpid(),
        })
        _serve_requests(stream, engine, row_start, faults=faults)
    except KeyboardInterrupt:
        # Terminal Ctrl-C reaches the whole foreground process group;
        # interactive shutdown is normal, not a crash worth a traceback.
        pass
    finally:
        connection.close()
    return 0


def _serve_requests(stream, engine: QueryEngine, row_start: int,
                    faults: Optional[FaultPlan] = None) -> None:
    """Answer request frames until end-of-stream (the shutdown signal)."""
    while True:
        frame = read_frame(stream)
        if frame is None:  # supervisor closed the socket: exit cleanly
            return
        header, arrays = frame
        op = header.get("op")
        if op == "shutdown":
            write_frame(stream, {"ok": True})
            return
        try:
            reply, out_arrays = _run_op(engine, row_start, op, header, arrays)
        except Exception as error:  # report, keep serving: one bad request
            write_frame(stream, {"ok": False,  # must not kill the shard
                                 "error": f"{type(error).__name__}: {error}"})
            continue
        if faults is not None:
            try:
                # The window between executing a request and acknowledging
                # it — the one a retry must treat as "unknown outcome".
                faults.fire("before_reply",
                            op=op if isinstance(op, str) else None,
                            stream=stream)
            except FaultInjected:
                continue  # garbage went out instead of the reply
        write_frame(stream, reply, out_arrays)


def _run_op(engine: QueryEngine, row_start: int, op: Optional[object],
            header: Dict[str, object],
            arrays: List[np.ndarray]) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """Execute one request against the worker's shard engine.

    Query rows and folded features arrive as endpoint array pairs; results
    leave as npy arrays, so both directions round-trip bit-exactly.
    """
    if op == "ping":
        return {"ok": True, "pid": os.getpid()}, []
    if op == "reconstruct_rows":
        rows = _interval_pair(arrays, "reconstruct_rows")
        return {"ok": True}, [engine.reconstruct_rows(rows)]
    if op == "top_k_items":
        rows = _interval_pair(arrays, "top_k_items")
        result = engine.top_k_items(rows, _k_of(header))
        return {"ok": True}, [result.indices, result.scores]
    if op == "squared_distances":
        features = _interval_pair(arrays, "squared_distances")
        return {"ok": True}, [engine.squared_distances_to_references(features)]
    if op == "candidates":
        features = _interval_pair(arrays, "candidates")
        squared = engine.squared_distances_to_references(features)
        local = top_k(squared, _k_of(header), largest=False)
        # Shift to global stored-row indices here, so the gather side never
        # needs to know which worker a candidate came from.
        return {"ok": True}, [local.indices + row_start, local.scores]
    if op == "scores_for_users":
        if header.get("all"):
            return {"ok": True}, [engine.scores_for_users()]
        if len(arrays) != 1:
            raise WorkerError("scores_for_users expects one index array")
        return {"ok": True}, [engine.scores_for_users(
            np.asarray(arrays[0], dtype=int))]
    raise WorkerError(f"unknown worker op {op!r}")


def _interval_pair(arrays: Sequence[np.ndarray], op: str) -> IntervalMatrix:
    if len(arrays) != 2:
        raise WorkerError(
            f"{op} expects a lower/upper endpoint array pair, got "
            f"{len(arrays)} arrays"
        )
    # npy framing preserves dtype on the wire; keep float32 frames float32
    # so a low-precision fleet computes in its model's storage dtype.
    lower, upper = np.asarray(arrays[0]), np.asarray(arrays[1])
    if lower.dtype != np.float32 or upper.dtype != np.float32:
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
    return IntervalMatrix(lower, upper, check=False)


def _k_of(header: Dict[str, object]) -> int:
    k = header.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise WorkerError(f"'k' must be a positive integer, got {k!r}")
    return k


# --------------------------------------------------------------------- #
# Supervisor side (runs in the serving process)
# --------------------------------------------------------------------- #
class WorkerHandle:
    """One spawned worker: its process, its connection, its request lock."""

    def __init__(self, shard: int, process: subprocess.Popen,
                 connection: socket.socket, stream,
                 generation: Optional[int]):
        self.shard = shard
        self.process = process
        self.connection = connection
        self.stream = stream
        self.generation = generation
        #: Serializes request/response exchanges on this worker's socket
        #: (scatter fans out across workers, never within one).
        self.lock = threading.Lock()
        self.dead = False
        #: Set by the first restarter that charged this handle's death to
        #: the shard's circuit breaker, so racing callers observing the
        #: same corpse cannot inflate the failure window.
        self.failure_recorded = False

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return not self.dead and self.process.poll() is None

    def mark_dead(self) -> None:
        self.dead = True
        # shutdown() sends the FIN even while the makefile stream still
        # holds a reference to the descriptor — connection.close() alone
        # would only drop a refcount and the worker would never see EOF.
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:  # already reset or never connected
            pass
        try:
            self.stream.close()
        except (OSError, ValueError):  # flush on a shut-down socket
            pass
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - close of a reset socket
            pass

    def reap(self, timeout: float = 5.0) -> None:
        """Close the socket (the worker's shutdown signal) and wait; escalate
        to terminate/kill only if the worker ignores end-of-stream."""
        self.mark_dead()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.terminate()
            try:
                self.process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait()


class ShardWorkerSupervisor:
    """Spawns, health-checks, restarts and reaps one worker per shard.

    Workers connect back over localhost TCP and authenticate with a
    per-supervisor random token, so another local process cannot slip a
    rogue worker into the accept window.  A background monitor respawns
    workers that exit unexpectedly; :meth:`call` retries a failed request
    under ``retry`` (bounded exponential backoff with jitter), restarting
    the worker between attempts, inside the caller's deadline.

    Every observed worker death is charged to that shard's
    :class:`~repro.serve.resilience.CircuitBreaker`; a crash-looping shard
    opens its breaker (stopping the respawn storm) and fails requests fast
    with :class:`ShardUnavailableError` until a half-open probe — a fresh
    spawn that must also answer a ``ping`` — proves it healthy again.

    ``call_timeout`` bounds every socket exchange, so a *stalled* (not just
    crashed) worker surfaces as a timeout instead of wedging its shard's
    request lock; an end-to-end :class:`~repro.serve.resilience.Deadline`
    (explicit, or ambient via ``deadline_scope``) tightens that bound
    per request.  ``faults`` is a :mod:`repro.serve.faults` spec string
    injected into every spawned worker's environment.
    """

    def __init__(self, directory: Union[str, Path], name: str,
                 manifest: ShardManifest, kernel: KernelLike = None,
                 monitor_interval: float = 0.5,
                 call_timeout: float = CALL_TIMEOUT,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 5, breaker_window: float = 30.0,
                 breaker_cooldown: float = 5.0,
                 faults: Optional[str] = None,
                 dtype: Optional[str] = None):
        self.directory = Path(directory)
        self.name = name
        self.manifest = manifest
        #: ``dtype`` pins the fleet's factor precision: a supervisor pinned
        #: to float64 refuses to serve a float32 model (and vice versa)
        #: instead of silently serving different bytes than the caller
        #: deployed against.  ``None`` serves whatever the manifest records.
        if dtype is not None and dtype != manifest.record.dtype:
            raise WorkerError(
                f"cannot serve {name!r}: supervisor pinned to dtype "
                f"{dtype!r} but the manifest records "
                f"{manifest.record.dtype!r}")
        self.dtype = manifest.record.dtype
        self.kernel_key = get_kernel(kernel).key
        self.monitor_interval = monitor_interval
        if call_timeout <= 0:
            raise ValueError(f"call_timeout must be positive, got {call_timeout}")
        self.call_timeout = float(call_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self._token = secrets.token_hex(16)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(manifest.record.shards)
        self._port = self._listener.getsockname()[1]
        #: Serializes spawn + connect-back accept: concurrent restarts must
        #: not interleave their accepts and adopt each other's workers.
        self._spawn_lock = threading.Lock()
        n_shards = manifest.record.shards
        self._handles: List[Optional[WorkerHandle]] = [None] * n_shards
        self._restarts = [0] * n_shards
        #: Per-shard restart serialization: the `current is not failed`
        #: re-check must happen under this lock, or two callers observing
        #: the same dead handle would both spawn a replacement.
        self._restart_locks = [threading.Lock() for _ in range(n_shards)]
        self._breakers = [
            CircuitBreaker(threshold=breaker_threshold,
                           window=breaker_window, cooldown=breaker_cooldown)
            for _ in range(n_shards)
        ]
        #: Wall-clock timestamps of recent restarts (for /healthz).
        self._restarted_at: List[List[float]] = [[] for _ in range(n_shards)]
        self._last_failure: List[Optional[str]] = [None] * n_shards
        self._closed = False
        self._monitor: Optional[threading.Thread] = None

    @property
    def n_shards(self) -> int:
        return self.manifest.record.shards

    def start(self) -> None:
        """Spawn every worker and start the health monitor.

        Refuses to *start* against a superseded manifest (a reshard landed
        between planning and start): a fresh fleet must serve the current
        generation.  Once started, though, the fleet stays pinned — worker
        *restarts* keep loading the pinned generation from its kept files,
        which is what makes a reshard hitless for in-flight engines.
        """
        current = ShardedModelStore(self.directory) \
            .manifest(self.name).record.generation
        if current != self.manifest.record.generation:
            raise WorkerError(
                f"cannot start workers for {self.name!r}: stale manifest "
                f"generation {self.manifest.record.generation} (the store "
                f"now serves generation {current})"
            )
        for shard in range(self.n_shards):
            self._handles[shard] = self._spawn(shard)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="repro-worker-monitor",
                                         daemon=True)
        self._monitor.start()

    def _spawn(self, shard: int) -> WorkerHandle:
        # Import the entry point rather than `-m repro.serve.worker`: the
        # package __init__ already imports this module, so runpy would
        # re-execute it and warn about the duplicate in sys.modules.
        command = [
            sys.executable, "-c",
            "import sys; from repro.serve.worker import worker_main; "
            "sys.exit(worker_main(sys.argv[1:]))",
            "--store", str(self.directory),
            "--model", self.name,
            "--shard", str(shard),
            "--generation",
            _generation_token(self.manifest.record.generation),
            "--connect-port", str(self._port),
            "--kernel", self.kernel_key,
            "--dtype", self.dtype,
        ]
        environment = dict(os.environ)
        environment[TOKEN_ENV] = self._token
        environment[MANIFEST_ENV] = json.dumps(self.manifest.to_payload())
        if self.faults is not None:  # chaos runs; inherits the env otherwise
            environment[FAULTS_ENV] = self.faults
        # The worker must import the same `repro` this process runs,
        # whether it came from PYTHONPATH, an install, or a bare checkout.
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = environment.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            environment["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else ""))
        with self._spawn_lock:
            process = subprocess.Popen(command, env=environment,
                                       stdin=subprocess.DEVNULL)
            try:
                handle = self._accept(shard, process)
            except Exception:
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()
                raise
        logger.info("spawned worker for shard %d of %r (pid %d, generation %s)",
                    shard, self.name, handle.pid,
                    _generation_token(self.manifest.record.generation))
        return handle

    def _accept(self, shard: int, process: subprocess.Popen) -> WorkerHandle:
        """Accept the spawned worker's connect-back and validate its hello."""
        deadline = time.monotonic() + SPAWN_TIMEOUT
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerError(
                    f"worker for shard {shard} of {self.name!r} did not "
                    f"connect back within {SPAWN_TIMEOUT:.0f}s"
                )
            if process.poll() is not None:
                cause = ""
                if process.returncode == EXIT_STALE_GENERATION:
                    cause = " (stale manifest generation)"
                elif process.returncode == EXIT_DTYPE_MISMATCH:
                    cause = " (shard dtype does not match the pinned dtype)"
                raise WorkerError(
                    f"worker for shard {shard} of {self.name!r} exited with "
                    f"status {process.returncode} before connecting" + cause
                )
            self._listener.settimeout(min(remaining, 0.2))
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Bound the hello read too: a peer that connects and then goes
            # silent (slow-accept fault, connect-scan) must not hold the
            # spawn lock past the spawn deadline.
            connection.settimeout(max(deadline - time.monotonic(), 0.1))
            stream = connection.makefile("rwb")
            try:
                frame = read_frame(stream)
            except socket.timeout:
                connection.close()
                continue  # silent peer; the outer loop re-checks the deadline
            except ProtocolError as error:
                connection.close()
                raise WorkerError(
                    f"worker connect-back sent a malformed hello: {error}"
                ) from error
            if frame is None:
                connection.close()
                continue  # a connect-scan closed without a hello; keep waiting
            hello, _ = frame
            if not hmac.compare_digest(str(hello.get("token", "")),
                                       self._token):
                connection.close()
                raise WorkerError("worker connect-back failed authentication")
            if hello.get("op") != "hello" or hello.get("shard") != shard:
                connection.close()
                raise WorkerError(
                    f"worker connect-back announced shard "
                    f"{hello.get('shard')!r}, expected {shard}"
                )
            connection.settimeout(None)  # _exchange sets per-call timeouts
            return WorkerHandle(shard, process, connection, stream,
                                self.manifest.record.generation)

    def _monitor_loop(self) -> None:
        """Respawn workers that exited unexpectedly (crash, OOM kill).

        The monitor is also what walks an *idle* shard through its breaker
        lifecycle: it keeps observing the corpse, its restart attempts are
        refused while the breaker is open, and after the cooldown one of
        its attempts becomes the half-open probe — so a crash-looped shard
        recovers even when no request ever touches it again.
        """
        while not self._closed:
            time.sleep(self.monitor_interval)
            for shard in range(self.n_shards):
                handle = self._handles[shard]
                if self._closed or handle is None or handle.alive():
                    continue
                try:
                    self._restart(shard, handle)
                except ShardUnavailableError:
                    pass  # breaker open: the cooldown is doing its job
                except Exception as error:  # keep monitoring; calls will
                    if not self._closed:    # surface the failure loudly
                        logger.error("respawn of shard %d of %r failed: %s",
                                     shard, self.name, error)

    def _restart(self, shard: int, failed: WorkerHandle,
                 reason: str = "worker process died",
                 deadline: Optional[Deadline] = None) -> WorkerHandle:
        """Replace one dead worker (no-op if another thread already did).

        Serialized per shard: the ``current is not failed`` re-check runs
        under the shard's restart lock, so exactly one of any number of
        racing callers (request threads, the monitor) spawns the
        replacement; the rest adopt it.  The death is charged to the
        shard's breaker once, and an open breaker refuses the respawn with
        :class:`ShardUnavailableError` — after the cooldown, the winning
        caller runs the half-open probe (spawn + ping) that decides
        between closing and re-opening.
        """
        lock = self._restart_locks[shard]
        if deadline is None:
            lock.acquire()
        else:
            remaining = deadline.remaining()
            if remaining <= 0 or not lock.acquire(timeout=remaining):
                raise DeadlineExceededError(
                    f"deadline expired waiting to restart shard {shard} "
                    f"of {self.name!r}")
        try:
            current = self._handles[shard]
            if current is not failed:
                if current is None:
                    raise WorkerError(f"shard {shard} has no worker")
                return current
            # Short grace: a worker being *replaced* has already failed its
            # caller.  The full courtesy wait belongs to clean shutdown —
            # here it would make recovery from a stalled worker take as
            # long as the stall itself.
            failed.reap(timeout=0.2)
            if self._closed:
                raise WorkerError("supervisor is closed")
            breaker = self._breakers[shard]
            if not failed.failure_recorded:
                failed.failure_recorded = True
                self._last_failure[shard] = reason
                breaker.record_failure(reason)
                if breaker.state != BREAKER_CLOSED:
                    logger.warning(
                        "circuit breaker for shard %d of %r opened: %s",
                        shard, self.name, reason)
            if not breaker.allow():
                raise ShardUnavailableError(
                    shard,
                    f"shard {shard} of {self.name!r} is crash-looping; "
                    f"circuit breaker open ({reason})",
                    retry_after=breaker.retry_after(),
                )
            probing = breaker.state == BREAKER_HALF_OPEN
            try:
                handle = self._spawn(shard)
                try:
                    # Trust no respawn until it answers: a worker that
                    # connects and then wedges (or dies) would otherwise
                    # close a half-open breaker it never earned.
                    self._probe(handle)
                except Exception:
                    handle.reap()
                    raise
            except Exception as error:
                breaker.record_failure(f"respawn failed: {error}")
                if isinstance(error, WorkerError):
                    raise
                raise WorkerError(
                    f"respawn of shard {shard} of {self.name!r} failed: "
                    f"{error}") from error
            if probing:
                logger.warning(
                    "circuit breaker for shard %d of %r closed after "
                    "half-open probe", shard, self.name)
                breaker.record_success()
            self._handles[shard] = handle
            self._restarts[shard] += 1
            timestamps = self._restarted_at[shard]
            timestamps.append(time.time())
            del timestamps[:-10]  # keep the last 10 for /healthz
            logger.info("restarted worker for shard %d of %r "
                        "(restart #%d: %s)",
                        shard, self.name, self._restarts[shard], reason)
            return handle
        finally:
            lock.release()

    def _probe(self, handle: WorkerHandle) -> None:
        """One ping round-trip a fresh spawn must pass before being trusted."""
        reply, _ = self._exchange(handle, {"op": "ping"}, ())
        if reply.get("pid") != handle.pid:  # paranoia: wrong process answered
            raise WorkerError(
                f"probe of shard {handle.shard} answered from pid "
                f"{reply.get('pid')!r}, expected {handle.pid}")

    def call(self, shard: int, header: Dict[str, object],
             arrays: Sequence[np.ndarray] = (),
             deadline: Optional[Deadline] = None) -> Tuple[Dict[str, object], List[np.ndarray]]:
        """One request/response exchange with a shard worker.

        Transport failures (dead process, stalled socket, bad frame) are
        retried under the supervisor's :class:`RetryPolicy` — restart the
        worker, back off with jitter, try again — within the caller's
        ``deadline`` (explicit argument, else the ambient
        :func:`~repro.serve.resilience.current_deadline`).  Retries
        exhausted, or a breaker already open, raise
        :class:`ShardUnavailableError`; a deadline expiry raises
        :class:`DeadlineExceededError`.  An error the worker itself
        reports (``ok: false``) raises :class:`WorkerRequestError` without
        any restart: the worker is healthy, the request was bad.
        """
        if deadline is None:
            deadline = current_deadline()
        last_error: Optional[BaseException] = None
        reason = "worker process died"
        for attempt in range(self.retry.attempts):
            if attempt:
                delay = self.retry.delay(attempt - 1)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"deadline expired retrying shard {shard} of "
                            f"{self.name!r}: {last_error}") from last_error
                    delay = min(delay, remaining)
                if delay > 0:
                    time.sleep(delay)
            handle = self._handles[shard]
            if handle is None:
                raise WorkerError(f"shard {shard} has no worker")
            if handle.dead or not handle.alive():
                try:
                    handle = self._restart(shard, handle, reason=reason,
                                           deadline=deadline)
                except (ShardUnavailableError, DeadlineExceededError):
                    raise
                except WorkerError as error:
                    # A failed respawn is retryable: the next attempt
                    # restarts again (and the breaker counts each failure).
                    if self._closed:
                        raise
                    last_error = error
                    reason = f"respawn failed: {error}"
                    continue
            try:
                return self._exchange(handle, header, arrays,
                                      deadline=deadline)
            except (WorkerRequestError, DeadlineExceededError):
                raise
            except (ProtocolError, OSError, ValueError) as error:
                handle.mark_dead()
                last_error = error
                reason = f"{type(error).__name__}: {error}"
                if self._closed:
                    raise WorkerError(
                        f"shard {shard} worker failed during shutdown: "
                        f"{error}") from error
        breaker = self._breakers[shard]
        raise ShardUnavailableError(
            shard,
            f"shard {shard} of {self.name!r} failed "
            f"{self.retry.attempts} attempts; last error: {last_error}",
            retry_after=max(breaker.retry_after(), self.retry.delay(0)),
        ) from last_error

    def _exchange(self, handle: WorkerHandle, header: Dict[str, object],
                  arrays: Sequence[np.ndarray],
                  deadline: Optional[Deadline] = None) -> Tuple[Dict[str, object], List[np.ndarray]]:
        """One locked write/read on a worker's socket, bounded in time.

        The socket timeout is ``call_timeout`` tightened by the deadline's
        remaining budget; waiting for the handle's lock (another request
        mid-exchange on the same worker) spends the same budget.  A timed
        out exchange marks the handle dead — after a partial write or read
        the frame boundary is unknowable, so the connection is unusable.
        """
        if deadline is None:
            acquired = handle.lock.acquire()
        else:
            remaining = deadline.remaining()
            acquired = remaining > 0 and handle.lock.acquire(timeout=remaining)
            if not acquired:
                raise DeadlineExceededError(
                    f"deadline expired waiting for shard {handle.shard}'s "
                    "request lock")
        try:
            if handle.dead:
                raise OSError("worker connection already closed")
            timeout = self.call_timeout
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"deadline expired before calling shard {handle.shard}")
                timeout = min(timeout, remaining)
            handle.connection.settimeout(timeout)
            try:
                write_frame(handle.stream, header, arrays)
                frame = read_frame(handle.stream)
            except socket.timeout as error:
                handle.mark_dead()
                if deadline is not None and deadline.expired():
                    raise DeadlineExceededError(
                        f"deadline expired mid-exchange with shard "
                        f"{handle.shard}") from error
                raise OSError(
                    f"shard {handle.shard} worker stalled beyond the "
                    f"{timeout:.3g}s call timeout") from error
        finally:
            handle.lock.release()
        if frame is None:
            raise OSError("worker closed the connection mid-request")
        reply, out_arrays = frame
        if not reply.get("ok"):
            raise WorkerRequestError(
                f"shard {handle.shard} worker error: "
                f"{reply.get('error', 'unspecified')}"
            )
        return reply, out_arrays

    def ping(self, shard: int) -> bool:
        """Round-trip liveness probe of one worker (restarts it if dead)."""
        try:
            self.call(shard, {"op": "ping"})
            return True
        except WorkerError:
            return False

    def breaker_state(self, shard: int) -> str:
        """The circuit-breaker state of one shard (closed/open/half-open)."""
        return self._breakers[shard].state

    def liveness(self) -> List[Dict[str, object]]:
        """Per-shard worker + resilience status for health endpoints (no
        round-trips): process liveness, restart count and recent restart
        timestamps, the last failure reason, and the breaker snapshot."""
        report = []
        for shard in range(self.n_shards):
            handle = self._handles[shard]
            report.append({
                "shard": shard,
                "alive": bool(handle is not None and handle.alive()),
                "pid": None if handle is None else handle.pid,
                "restarts": self._restarts[shard],
                "restarted_at": list(self._restarted_at[shard]),
                "last_failure": self._last_failure[shard],
                "breaker": self._breakers[shard].snapshot(),
            })
        return report

    def close(self) -> None:
        """Shut every worker down and reap it (idempotent, orphan-free).

        Closing a worker's socket is its shutdown signal; workers that
        ignore it are terminated, then killed.  After this returns, no
        worker process of this supervisor is running.
        """
        self._closed = True
        with self._spawn_lock:
            handles, self._handles = \
                list(self._handles), [None] * self.n_shards
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for handle in handles:
            if handle is not None:
                handle.reap()
        if (self._monitor is not None
                and self._monitor is not threading.current_thread()):
            self._monitor.join(timeout=2.0)

    def __del__(self):  # last-resort cleanup; close() is the real API
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


# --------------------------------------------------------------------- #
# Process-backed sharded engine (runs in the serving process)
# --------------------------------------------------------------------- #
class WorkerShardedQueryEngine:
    """Scatter-gather router over one worker *process* per row-range shard.

    The process-backed counterpart of
    :class:`~repro.serve.shard.ShardedQueryEngine`: same query API, same
    byte-identical answers, but each shard's scoring runs in its own
    process, so shard work truly parallelizes across cores instead of
    time-slicing one GIL, and a crashed shard restarts without taking the
    front end down.

    The front end keeps only the *item-side* state: the shared fold-in
    projector (built from shard 0's replicated ``Sigma``/``V``), which
    folds retrieval queries in **once** — exactly like the in-process
    router — and ships the folded features to every worker.  Item-space
    queries ship contiguous chunks of the raw query batch instead; each
    worker folds its chunk through its own bitwise-identical projector
    (row-local, so the chunking cannot change any answer).  Sparse query
    rows answer locally through the shared projector — their masked
    per-row least squares does not benefit from shard fan-out.

    **Fault tolerance.**  Every public query method captures the ambient
    request deadline (:func:`~repro.serve.resilience.current_deadline`) on
    the request thread and passes it explicitly into each scatter thunk —
    pool threads do not inherit thread-locals.  Because the item factors
    are **replicated** across shards, an item-space chunk whose assigned
    worker is unavailable is *rerouted* to any live shard and the answer
    stays byte-identical; reference-space gathers own their rows, so under
    ``degraded="partial"`` an unavailable shard's candidates are dropped
    and reported via :func:`collect_missing_shards` instead of failing the
    whole request.  The default ``degraded="fail"`` preserves the
    all-or-nothing byte-identity contract: any unavailable shard raises
    :class:`ShardUnavailableError`.

    Construction spawns the workers (via :class:`ShardWorkerSupervisor`)
    pinned to the manifest's current generation; :meth:`close` reaps them.
    """

    def __init__(self, store: Union[ShardedModelStore, str, Path], name: str,
                 kernel: KernelLike = None,
                 monitor_interval: float = 0.5,
                 call_timeout: float = CALL_TIMEOUT,
                 retry: Optional[RetryPolicy] = None,
                 breaker_threshold: int = 5, breaker_window: float = 30.0,
                 breaker_cooldown: float = 5.0,
                 degraded: str = "fail",
                 faults: Optional[str] = None,
                 dtype: Optional[str] = None):
        if degraded not in ("fail", "partial"):
            raise ValueError(
                f"degraded policy must be 'fail' or 'partial', got {degraded!r}")
        self.degraded = degraded
        if not isinstance(store, ShardedModelStore):
            store = ShardedModelStore(store)
        manifest = store.manifest(name)
        # Shard 0 provides the replicated item factors for the shared
        # projector; its U slice is the price of not duplicating the
        # pseudo-inverse SVDs per query.
        shard0, manifest = store.load_shard(name, 0, manifest=manifest)
        self.projector = FoldInProjector(shard0, kernel=kernel)
        self.item_map = self.projector.item_map
        self.n_items = self.projector.n_items
        self.row_ranges = manifest.row_ranges
        self.generation = manifest.record.generation
        self.dtype = manifest.record.dtype
        self.n_users = int(manifest.record.shape[0])
        self._starts = np.array([start for start, _ in self.row_ranges])
        self.supervisor = ShardWorkerSupervisor(
            store.directory, name, manifest, kernel=kernel,
            monitor_interval=monitor_interval, call_timeout=call_timeout,
            retry=retry, breaker_threshold=breaker_threshold,
            breaker_window=breaker_window,
            breaker_cooldown=breaker_cooldown, faults=faults,
            dtype=dtype)
        try:
            self.supervisor.start()
        except Exception:
            self.supervisor.close()
            raise
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Scatter plumbing
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of row-range shards (= worker processes) behind this
        router."""
        return self.supervisor.n_shards

    def liveness(self) -> List[Dict[str, object]]:
        """Per-shard worker status (see
        :meth:`ShardWorkerSupervisor.liveness`)."""
        return self.supervisor.liveness()

    def _run(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run call thunks, one front-end thread per worker.

        Unlike the in-process router, fan-out width is *not* capped by this
        process's CPU count: front-end threads only do socket I/O here —
        the compute happens in the worker processes.
        """
        if len(tasks) <= 1:
            return [task() for task in tasks]
        with self._pool_lock:
            if self._closed:
                futures = None
            else:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.n_shards,
                        thread_name_prefix="repro-worker-scatter",
                    )
                futures = [self._pool.submit(task) for task in tasks]
        if futures is None:  # closed: keep answering, just serially
            return [task() for task in tasks]
        return [future.result() for future in futures]

    def close(self, wait: bool = True) -> None:
        """Reap every worker process and the scatter pool (idempotent).

        Unlike :meth:`ShardedQueryEngine.close`, a closed worker engine
        cannot keep answering — its compute lives in the reaped processes —
        so subsequent queries raise :class:`WorkerError`.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        self.supervisor.close()
        if pool is not None:
            pool.shutdown(wait=wait)

    def _endpoints(self, rows: IntervalMatrix) -> List[np.ndarray]:
        return [rows.lower, rows.upper]

    def _split_rows(self, rows: IntervalMatrix) -> List[IntervalMatrix]:
        n_chunks = min(self.n_shards, rows.shape[0])
        if n_chunks <= 1:
            return [rows]
        return [
            IntervalMatrix(rows.lower[start:stop], rows.upper[start:stop],
                           check=False)
            for start, stop in plan_row_ranges(rows.shape[0], n_chunks)
        ]

    def _call_item_op(self, shard: int, header: Dict[str, object],
                      arrays: Sequence[np.ndarray],
                      deadline: Optional[Deadline]) -> List[np.ndarray]:
        """One item-space chunk call, rerouted around unavailable shards.

        Item factors (``Sigma``/``V``) are replicated bit-for-bit across
        shards, so *any* live worker computes the exact same bytes for an
        item-space chunk — rerouting is free of the degradation question
        entirely.  Only when every shard refuses does the original error
        surface.
        """
        try:
            return self.supervisor.call(shard, header, arrays,
                                        deadline=deadline)[1]
        except ShardUnavailableError as error:
            for other in range(self.n_shards):
                if other == shard:
                    continue
                if self.supervisor.breaker_state(other) != BREAKER_CLOSED:
                    continue
                try:
                    result = self.supervisor.call(other, header, arrays,
                                                  deadline=deadline)[1]
                    logger.warning(
                        "rerouted item-space %s chunk from unavailable "
                        "shard %d to shard %d", header.get("op"), shard, other)
                    return result
                except ShardUnavailableError:
                    continue
            raise error

    def _gather_candidates(self, header: Dict[str, object],
                           arrays: Sequence[np.ndarray],
                           deadline: Optional[Deadline]
                           ) -> Tuple[List[List[np.ndarray]], List[int]]:
        """Scatter one reference-space request to every shard and gather.

        In the default fail-fast mode any unavailable shard raises.  Under
        ``degraded="partial"`` unavailable shards are dropped from the
        gather and returned as the missing list (also reported into the
        request's :func:`collect_missing_shards` scope — on the request
        thread, after the gather, because pool threads do not share the
        caller's thread-locals).  All shards missing still raises: an
        empty answer is not a degraded answer.
        """
        def attempt(shard: int):
            try:
                return ("ok", self.supervisor.call(
                    shard, header, arrays, deadline=deadline)[1])
            except ShardUnavailableError as error:
                if self.degraded != "partial":
                    raise
                return ("missing", error)

        outcomes = self._run([
            (lambda shard=shard: attempt(shard))
            for shard in range(self.n_shards)
        ])
        results: List[List[np.ndarray]] = []
        missing: List[int] = []
        first_error: Optional[ShardUnavailableError] = None
        for shard, (status, value) in enumerate(outcomes):
            if status == "ok":
                results.append(value)
            else:
                missing.append(shard)
                if first_error is None:
                    first_error = value
        if missing:
            if not results:
                assert first_error is not None
                raise first_error
            logger.warning("degraded %s gather: dropped shards %s",
                           header.get("op"), missing)
            _note_missing_shards(missing)
        return results, missing

    # ------------------------------------------------------------------ #
    # Item-space queries (scatter the batch; item factors are replicated)
    # ------------------------------------------------------------------ #
    def reconstruct_rows(self, user_rows: Rows) -> np.ndarray:
        """Predicted scores (``q x m``); bit-equal to the unsharded
        :meth:`QueryEngine.reconstruct_rows`."""
        rows = self.projector._coerce_rows(user_rows)
        if is_sparse_interval(rows):
            return self.projector.reconstruct_rows(rows)
        deadline = current_deadline()
        chunks = self._split_rows(rows)
        blocks = self._run([
            (lambda chunk=chunk, shard=shard: self._call_item_op(
                shard, {"op": "reconstruct_rows"},
                self._endpoints(chunk), deadline)[0])
            for shard, chunk in enumerate(chunks)
        ])
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def top_k_items(self, user_rows: Rows, k: int) -> TopKResult:
        """Best-``k`` items per query row; bit-equal to the unsharded
        :meth:`QueryEngine.top_k_items`."""
        if k < 1:
            raise ValueError("k must be >= 1")
        rows = self.projector._coerce_rows(user_rows)
        if is_sparse_interval(rows):
            return top_k(self.projector.reconstruct_rows(rows), k,
                         largest=True)
        deadline = current_deadline()
        chunks = self._split_rows(rows)
        results = self._run([
            (lambda chunk=chunk, shard=shard: self._call_item_op(
                shard, {"op": "top_k_items", "k": k},
                self._endpoints(chunk), deadline))
            for shard, chunk in enumerate(chunks)
        ])
        if len(results) == 1:
            indices, scores = results[0]
            return TopKResult(indices, scores)
        return TopKResult(np.vstack([r[0] for r in results]),
                          np.vstack([r[1] for r in results]))

    # ------------------------------------------------------------------ #
    # Reference-space queries (scatter the stored rows; gather by merge)
    # ------------------------------------------------------------------ #
    def _features_of(self, query_rows: Rows) -> IntervalMatrix:
        return self.projector.latent_features(
            self.projector._coerce_rows(query_rows))

    def neighbor_squared_distances(self, query_rows: Rows) -> np.ndarray:
        """Squared distances (``q x n``) to every stored row, in global row
        order; bit-equal to the unsharded matrix."""
        features = self._features_of(query_rows)
        deadline = current_deadline()
        blocks = self._run([
            (lambda shard=shard: self.supervisor.call(
                shard, {"op": "squared_distances"},
                self._endpoints(features), deadline=deadline)[1][0])
            for shard in range(self.n_shards)
        ])
        return blocks[0] if len(blocks) == 1 else np.hstack(blocks)

    def neighbor_distances(self, query_rows: Rows) -> np.ndarray:
        """Interval distances (``q x n``) to every stored row."""
        return np.sqrt(self.neighbor_squared_distances(query_rows))

    def nearest_neighbor_candidates(self, query_rows: Rows, k: int) -> TopKResult:
        """Cross-shard candidate lists for top-``k`` neighbour selection
        (same contract as
        :meth:`ShardedQueryEngine.nearest_neighbor_candidates`: global
        indices, **squared** distances, shard order, not yet merged).

        The one query that can *degrade*: under ``degraded="partial"``,
        shards whose workers are unavailable are dropped from the gather
        (and reported via :func:`collect_missing_shards`) — the merged
        neighbours are then exact over the remaining shards' rows."""
        if k < 1:
            raise ValueError("k must be >= 1")
        features = self._features_of(query_rows)
        deadline = current_deadline()
        results, _ = self._gather_candidates(
            {"op": "candidates", "k": k}, self._endpoints(features), deadline)
        if len(results) == 1:
            indices, scores = results[0]
            return TopKResult(indices, scores)
        return TopKResult(np.hstack([r[0] for r in results]),
                          np.hstack([r[1] for r in results]))

    def nearest_neighbors(self, query_rows: Rows, k: int) -> TopKResult:
        """``k`` nearest stored rows per query row, merged across the
        workers' local top-``k`` lists under the total order; bit-equal to
        the unsharded :meth:`QueryEngine.nearest_neighbors`."""
        candidates = self.nearest_neighbor_candidates(query_rows, k)
        merged = top_k_from_candidates(candidates.scores, candidates.indices,
                                       min(k, self.n_users), largest=False)
        return TopKResult(merged.indices, np.sqrt(merged.scores))

    # ------------------------------------------------------------------ #
    # Stored-user queries (route indices to their owning workers)
    # ------------------------------------------------------------------ #
    def scores_for_users(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Predicted scores of stored users, rows in query order; bit-equal
        to the unsharded :meth:`QueryEngine.scores_for_users`."""
        deadline = current_deadline()
        if indices is None:
            blocks = self._run([
                (lambda shard=shard: self.supervisor.call(
                    shard, {"op": "scores_for_users", "all": True},
                    deadline=deadline)[1][0])
                for shard in range(self.n_shards)
            ])
            return blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        indices = np.asarray(indices, dtype=int)
        flat = np.where(indices < 0, indices + self.n_users, indices)
        if flat.size and (flat.min() < 0 or flat.max() >= self.n_users):
            raise IndexError(
                f"user index out of range for {self.n_users} stored rows"
            )
        owner = np.searchsorted(self._starts, flat, side="right") - 1
        tasks = []
        masks = []
        for shard, (start, _) in enumerate(self.row_ranges):
            mask = owner == shard
            if not mask.any():
                continue
            local = flat[mask] - start
            tasks.append(lambda shard=shard, local=local:
                         self.supervisor.call(
                             shard, {"op": "scores_for_users"}, [local],
                             deadline=deadline)[1][0])
            masks.append(mask)
        out = np.empty((flat.size, self.n_items), dtype=self.item_map.dtype)
        for mask, block in zip(masks, self._run(tasks)):
            out[mask] = block
        return out

    def top_k_for_users(self, indices: Sequence[int], k: int) -> TopKResult:
        """Best-``k`` items for stored users, from their trained latent
        rows."""
        return top_k(self.scores_for_users(indices), k, largest=True)


if __name__ == "__main__":
    sys.exit(worker_main())
