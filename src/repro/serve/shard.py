"""Row-range sharding of published models: planner, store, scatter-gather.

One process bounds both the model size a :class:`~repro.serve.store.ModelStore`
can hold in memory and the throughput one
:class:`~repro.serve.query.QueryEngine` can sustain.  This module splits a
published decomposition along the *row* dimension of ``U`` — the dimension
that grows with users — while replicating the item-side factors (``Sigma``,
``V``, and therefore the item map), which stay small:

* :class:`ShardPlanner` — splits a fitted decomposition into contiguous
  row-range shards of ``U`` (each shard is itself a complete, self-describing
  :class:`~repro.core.result.IntervalDecomposition`);
* :class:`ShardedModelStore` — publishes the shards as generation-versioned
  per-shard NPZ archives (``<name>.shard-NN-<gen>.npz``) next to the
  single-file format, each written atomically and the metadata last, with
  per-shard content fingerprints verified on load; a reshard publishes a
  fresh generation and swaps the manifest atomically, so live republish is
  hitless;
* :class:`ShardedQueryEngine` — a router with the same query API as
  :class:`~repro.serve.query.QueryEngine` that *scatters* work across one
  engine per shard (thread fan-out over a shared pool) and *gathers* with a
  byte-stable merge.

**Why the gather is byte-stable.**  Every scoring path in the serving layer
is row-local (einsum fold-in, per-row least squares, element-local
distances), so a shard's scores are bit-identical to the matching slice of
the unsharded computation; and every selection ranks under
:func:`~repro.serve.query.top_k`'s total order (score, then ascending
index), so merging per-shard top-k lists with
:func:`~repro.serve.query.top_k_from_candidates` provably reproduces the
unsharded selection.  The parity suite asserts byte-identical results across
shard counts, ranks and tie-heavy inputs (``tests/test_serve_shard.py``).
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from zipfile import BadZipFile

import numpy as np

from repro import io as repro_io
from repro.core.result import FactorMatrix, IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike
from repro.interval.sparse import is_sparse_interval
from repro.serve.foldin import FoldInProjector, Rows
from repro.serve.query import (
    QueryEngine,
    TopKResult,
    top_k,
    top_k_from_candidates,
)
from repro.serve.store import ModelRecord, ModelStore, ModelStoreError

logger = logging.getLogger(__name__)

RowRanges = Tuple[Tuple[int, int], ...]


def usable_cpu_count() -> int:
    """CPUs actually usable by this process.

    ``os.sched_getaffinity`` reflects container CPU quotas and ``taskset``
    pinning, which ``os.cpu_count`` ignores — on a 64-core host limited to 2
    CPUs, fanning scatter work out 64 ways would only add scheduling
    overhead to every request.  Falls back to ``os.cpu_count`` on platforms
    without affinity support (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return max(1, os.cpu_count() or 1)


def plan_row_ranges(n_rows: int, n_shards: int) -> RowRanges:
    """Contiguous, near-equal ``(start, stop)`` row ranges covering ``n_rows``.

    The first ``n_rows % n_shards`` ranges hold one extra row
    (``numpy.array_split`` semantics), so shard sizes differ by at most one.
    Every shard must own at least one row: ``n_shards`` may not exceed
    ``n_rows``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_rows < n_shards:
        raise ValueError(
            f"cannot split {n_rows} rows into {n_shards} non-empty shards"
        )
    base, extra = divmod(n_rows, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return tuple(ranges)


def _slice_factor_rows(factor: FactorMatrix, start: int, stop: int) -> FactorMatrix:
    if isinstance(factor, IntervalMatrix):
        return IntervalMatrix(factor.lower[start:stop], factor.upper[start:stop],
                              check=False)
    return np.asarray(factor)[start:stop]


def _factors_equal(a: FactorMatrix, b: FactorMatrix) -> bool:
    a_interval = isinstance(a, IntervalMatrix)
    if a_interval != isinstance(b, IntervalMatrix):
        return False
    if a_interval:
        return (np.array_equal(a.lower, b.lower)
                and np.array_equal(a.upper, b.upper))
    return np.array_equal(np.asarray(a), np.asarray(b))


class ShardPlanner:
    """Splits a fitted decomposition into row-range shards of ``U``.

    Each shard is a complete :class:`IntervalDecomposition` over its row
    range: its ``U`` is a contiguous row slice of the original, while
    ``Sigma`` and ``V`` (and therefore the item map the fold-in projector
    inverts) are replicated — they are ``r x r`` and ``m x r``, small next to
    the ``n x r`` user factor that sharding is for.  Shard metadata records
    the shard index and row range.
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def plan(self, n_rows: int) -> RowRanges:
        """The ``(start, stop)`` row ranges this planner assigns."""
        return plan_row_ranges(n_rows, self.n_shards)

    def split(self, decomposition: IntervalDecomposition) -> List[IntervalDecomposition]:
        """Shard ``decomposition`` into one decomposition per row range."""
        ranges = self.plan(int(decomposition.shape[0]))
        shards = []
        for index, (start, stop) in enumerate(ranges):
            shards.append(IntervalDecomposition(
                u=_slice_factor_rows(decomposition.u, start, stop),
                sigma=decomposition.sigma,
                v=decomposition.v,
                target=decomposition.target,
                method=decomposition.method,
                rank=decomposition.rank,
                metadata={"shard_index": index, "shard_of": self.n_shards,
                          "row_range": (start, stop)},
            ))
        return shards


def _check_same_model(shards: Sequence[IntervalDecomposition], action: str) -> None:
    """Enforce the replication invariant: every shard carries bitwise-equal
    item factors (``Sigma``/``V``) and matching rank/target/method.  Anything
    else means the shards come from different models, and ``action``-ing
    them would silently mix two models' rows."""
    first = shards[0]
    for shard in shards[1:]:
        if (shard.rank != first.rank or shard.target is not first.target
                or shard.method != first.method
                or not _factors_equal(shard.sigma, first.sigma)
                or not _factors_equal(shard.v, first.v)):
            raise ValueError(
                "shards disagree on their replicated item factors or "
                f"metadata; refusing to {action} shards of different models"
            )


def merge_shards(shards: Sequence[IntervalDecomposition]) -> IntervalDecomposition:
    """Reassemble row-range shards into one decomposition (inverse of
    :meth:`ShardPlanner.split`).

    The shards' ``U`` rows are concatenated in order; the replicated item
    factors must be bitwise identical across shards (anything else means the
    shards come from different models, and merging would silently mix them).
    """
    if not shards:
        raise ValueError("merge_shards needs at least one shard")
    first = shards[0]
    _check_same_model(shards, "merge")
    interval_u = isinstance(first.u, IntervalMatrix)
    if any(isinstance(s.u, IntervalMatrix) != interval_u for s in shards):
        raise ValueError("shards mix interval and scalar U factors")
    if interval_u:
        u: FactorMatrix = IntervalMatrix(
            np.vstack([s.u.lower for s in shards]),
            np.vstack([s.u.upper for s in shards]),
            check=False,
        )
    else:
        u = np.vstack([np.asarray(s.u) for s in shards])
    return IntervalDecomposition(
        u=u, sigma=first.sigma, v=first.v, target=first.target,
        method=first.method, rank=first.rank,
    )


@dataclass(frozen=True)
class ShardManifest:
    """Shard-level metadata of one sharded model, from its JSON sidecar."""

    record: ModelRecord
    """The base model record (``record.shards`` is the shard count)."""

    row_ranges: RowRanges
    """``(start, stop)`` row range of each shard, in shard order."""

    fingerprints: Optional[Tuple[str, ...]]
    """Per-shard :func:`repro.io.decomposition_fingerprint` values recorded
    at publish time (``None`` for manifests written without them)."""

    def to_payload(self) -> Dict[str, object]:
        """The manifest as the JSON payload its sidecar file holds.

        Round-trips through :meth:`ShardedModelStore.manifest_from_payload`,
        which is how a supervisor ships the exact manifest it planned
        against to its worker processes — a worker must load the *pinned*
        generation even after the on-disk manifest has moved on."""
        payload = self.record.to_dict()
        payload["row_ranges"] = [list(row_range) for row_range in self.row_ranges]
        if self.fingerprints is not None:
            payload["shard_fingerprints"] = list(self.fingerprints)
        return payload


class ShardedModelStore(ModelStore):
    """A :class:`ModelStore` that also publishes and loads sharded models.

    Shares the directory (and every read path) with the base store; adds the
    sharded publish format: ``<name>.shard-NN-<gen>.npz`` row-range archives
    plus a ``<name>.json`` manifest carrying the shard count, the publish
    *generation*, the row ranges, and a content fingerprint per shard.
    Shard files are written first (each individually atomic), the manifest
    last.

    **Republish semantics — hitless by generation versioning.**  A fresh
    publish under a new name is invisible until its manifest lands.
    Republishing an *existing* sharded name writes a complete new set of
    archives under the *next generation number* — it never touches the files
    the current manifest references — and then swaps the manifest
    atomically.  A reader therefore always loads a self-consistent
    generation: whichever manifest it read names exactly the files that
    publish wrote, and those files are still on disk (the previous
    generation is deliberately kept through the swap, covering readers that
    fetched the old manifest moments before it was replaced).  The
    superseded generation is garbage-collected *after drain*: by the next
    publish, or explicitly via :meth:`gc_shard_generations` once no reader
    can still hold its manifest.  Per-shard fingerprints are still recorded
    and re-verified on load, so even a hand-damaged store fails loudly
    rather than serving mixed rows.  Manifests written by earlier releases
    (no ``generation`` field) keep loading from the legacy unversioned
    paths.
    """

    def save_sharded(
        self,
        name: str,
        decomposition: IntervalDecomposition,
        n_shards: int,
        matrix=None,
        fingerprint: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> ModelRecord:
        """Split ``decomposition`` into ``n_shards`` row-range shards and
        publish them under ``name`` (replacing any existing model, hitlessly
        when the existing model is sharded).

        ``matrix`` / ``fingerprint`` record the training data exactly as in
        :meth:`ModelStore.save`.  ``generation`` overrides the published
        generation number — it must be greater than the current one; by
        default the current generation + 1 (or 1 for a fresh name).  Returns
        the published record (``record.shards == n_shards``,
        ``record.generation`` set).
        """
        self.check_publish_name(name)
        planner = ShardPlanner(n_shards)
        shards = planner.split(decomposition)
        row_ranges = planner.plan(int(decomposition.shape[0]))
        # The generation this name currently serves (None when the name is
        # fresh, single-file, or a legacy unversioned sharded publish).
        previous_sharded = False
        previous_generation: Optional[int] = None
        try:
            existing = self.record(name)
        except (ModelStoreError, OSError):
            existing = None
        if existing is not None and existing.shards is not None:
            previous_sharded = True
            previous_generation = existing.generation
        if generation is None:
            generation = (previous_generation or 0) + 1
        elif generation < 1:
            raise ModelStoreError(f"shard generation must be >= 1, got {generation}")
        elif previous_generation is not None and generation <= previous_generation:
            raise ModelStoreError(
                f"cannot publish {name!r} at generation {generation}: the "
                f"store already serves generation {previous_generation}, and "
                "readers cache engines keyed on monotonically increasing "
                "generations"
            )
        for index in range(n_shards):
            # A legacy model literally named like this shard's archive stem
            # (published before that suffix was reserved) owns the path;
            # overwriting it would silently corrupt that model.
            squatter = self._shard_path(name, index, generation).name[: -len(".npz")]
            if self._meta_path(squatter).exists():
                raise ModelStoreError(
                    f"cannot publish {name!r} with {n_shards} shards: a "
                    f"model named {squatter!r} already owns the file "
                    f"{self._shard_path(name, index, generation).name}; "
                    "delete or rename it first"
                )
        self.directory.mkdir(parents=True, exist_ok=True)
        if fingerprint is None and matrix is not None:
            fingerprint = repro_io.interval_fingerprint(matrix)
        shard_fingerprints = []
        for index, shard in enumerate(shards):
            with repro_io.atomic_write(self._shard_path(name, index, generation)) as tmp:
                repro_io.save_decomposition_npz(shard, tmp)
            shard_fingerprints.append(repro_io.decomposition_fingerprint(shard))
        record = ModelRecord(
            name=name,
            method=decomposition.method,
            target=decomposition.target.value,
            rank=decomposition.rank,
            shape=tuple(int(n) for n in decomposition.shape),
            fingerprint=fingerprint,
            created_at=time.time(),
            shards=n_shards,
            generation=generation,
            dtype=decomposition.dtype.name,
        )
        payload = record.to_dict()
        payload["row_ranges"] = [list(row_range) for row_range in row_ranges]
        payload["shard_fingerprints"] = shard_fingerprints
        with repro_io.atomic_write(self._meta_path(name)) as tmp:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        # GC everything except the generation just published and the one it
        # replaced — the previous generation stays on disk through the swap
        # so a reader holding the just-replaced manifest can still open the
        # files it names (POSIX keeps already-open files alive regardless).
        # The next publish, or gc_shard_generations(), collects it.
        keep: Dict[Optional[int], Optional[int]] = {generation: n_shards}
        if previous_sharded:
            keep.setdefault(previous_generation, None)
        self._remove_stale_shards(name, keep=keep)
        with contextlib.suppress(FileNotFoundError):  # racing republishers
            self._npz_path(name).unlink()
        logger.info("published %r generation %d (%d shards, %d rows)",
                    name, generation, n_shards, record.shape[0])
        return record

    def gc_shard_generations(self, name: str) -> int:
        """Garbage-collect shard archives of superseded generations.

        Removes every shard file of ``name`` that the current manifest does
        not reference (older generations kept through a reshard swap, or
        leftovers of interrupted publishes); returns the number of files
        removed.  Call after drain — once no reader can still hold a
        manifest from before the latest publish.  Readers that already
        opened the old files are unaffected (POSIX unlink semantics).
        """
        manifest = self.manifest(name)
        record = manifest.record
        stale = [
            path for _, gen, path in self._owned_shard_paths(name)
            if gen != record.generation
        ]
        self._remove_stale_shards(
            name, keep={record.generation: record.shards})
        if stale:
            logger.info("collected %d stale shard file(s) of %r "
                        "(serving generation %s)",
                        len(stale), name, record.generation)
        return len(stale)

    def manifest(self, name: str) -> ShardManifest:
        """Shard-level metadata of one published sharded model.

        Record and shard layout are parsed from a *single* sidecar read, so
        a concurrent republish can never mix one publish's record with
        another's row ranges or fingerprints.
        """
        return self.manifest_from_payload(name, self._read_meta(name))

    def manifest_from_payload(self, name: str,
                              payload: Dict[str, object]) -> ShardManifest:
        """Parse a manifest from its JSON payload (see
        :meth:`ShardManifest.to_payload`).

        Used by shard workers, which receive the supervisor's pinned
        manifest instead of re-reading the sidecar: the sidecar may already
        describe a *newer* generation whose layout the supervisor never
        planned against."""
        record = self._record_from_payload(name, payload)
        if record.shards is None:
            raise ModelStoreError(
                f"model {name!r} is a single-file model, not a sharded one"
            )
        raw_ranges = payload.get("row_ranges")
        if raw_ranges is None:
            # Manifests are written with explicit ranges, but the split is
            # deterministic, so a hand-written manifest can omit them.
            row_ranges = plan_row_ranges(record.shape[0], record.shards)
        else:
            try:
                row_ranges = tuple((int(a), int(b)) for a, b in raw_ranges)
            except (TypeError, ValueError) as error:
                raise ModelStoreError(
                    f"manifest of {name!r} has malformed row_ranges: {error}"
                ) from error
        raw_fingerprints = payload.get("shard_fingerprints")
        fingerprints = (None if raw_fingerprints is None
                        else tuple(str(f) for f in raw_fingerprints))
        if len(row_ranges) != record.shards:
            raise ModelStoreError(
                f"manifest of {name!r} is inconsistent: {record.shards} shards "
                f"but {len(row_ranges)} row ranges"
            )
        if fingerprints is not None and len(fingerprints) != record.shards:
            raise ModelStoreError(
                f"manifest of {name!r} is inconsistent: {record.shards} shards "
                f"but {len(fingerprints)} shard fingerprints"
            )
        return ShardManifest(record=record, row_ranges=row_ranges,
                             fingerprints=fingerprints)

    def load_shards(
        self, name: str, verify: bool = True,
    ) -> Tuple[List[IntervalDecomposition], ShardManifest]:
        """Load every row-range shard of a sharded model, in shard order.

        With ``verify=True`` (the default) each shard's content hash is
        checked against the fingerprint recorded at publish time, so a shard
        file that was swapped between models, truncated, or otherwise
        corrupted raises :class:`ModelStoreError` instead of silently serving
        the wrong rows.
        """
        manifest = self.manifest(name)
        shards = [
            self._load_one_shard(name, manifest, index, verify=verify)
            for index in range(manifest.record.shards)
        ]
        return shards, manifest

    def load_shard(
        self, name: str, index: int,
        manifest: Optional[ShardManifest] = None, verify: bool = True,
    ) -> Tuple[IntervalDecomposition, ShardManifest]:
        """Load a single row-range shard of a sharded model.

        What a shard *worker process* loads at startup: one shard's factors,
        never the whole model.  ``manifest`` pins the generation to load —
        pass the manifest the supervisor planned against so a reshard racing
        the worker start yields a loud generation mismatch (the supervisor
        respawns against the fresh manifest) instead of a silently mixed
        model.  Verification semantics match :meth:`load_shards`.
        """
        if manifest is None:
            manifest = self.manifest(name)
        if not 0 <= index < manifest.record.shards:
            raise ModelStoreError(
                f"model {name!r} has {manifest.record.shards} shards; "
                f"shard {index} does not exist"
            )
        return self._load_one_shard(name, manifest, index, verify=verify), manifest

    def _load_one_shard(self, name: str, manifest: ShardManifest, index: int,
                        verify: bool = True) -> IntervalDecomposition:
        start, stop = manifest.row_ranges[index]
        path = self._shard_path(name, index, manifest.record.generation)
        try:
            shard = repro_io.load_decomposition_npz(path)
        except FileNotFoundError:
            raise ModelStoreError(
                f"model {name!r} is missing shard file {path.name}"
            ) from None
        except (OSError, BadZipFile, KeyError, ValueError) as error:
            # ValueError covers IntervalError (not-a-decomposition
            # archives) and numpy's unpickling complaints; BadZipFile is
            # what a truncated publish actually raises.
            raise ModelStoreError(
                f"shard file {path.name} of model {name!r} is not "
                f"loadable: {error}"
            ) from error
        if int(shard.shape[0]) != stop - start:
            raise ModelStoreError(
                f"shard {index} of {name!r} holds {shard.shape[0]} rows "
                f"but the manifest assigns it rows [{start}, {stop})"
            )
        if shard.dtype.name != manifest.record.dtype:
            raise ModelStoreError(
                f"shard {index} of {name!r} holds {shard.dtype.name} factors "
                f"but the manifest records dtype {manifest.record.dtype!r}; "
                "refusing to mix precisions within one model"
            )
        if verify and manifest.fingerprints is not None:
            actual = repro_io.decomposition_fingerprint(shard)
            if actual != manifest.fingerprints[index]:
                raise ModelStoreError(
                    f"shard {index} of {name!r} does not match its "
                    "published fingerprint (swapped or corrupted shard "
                    "file?)"
                )
        return shard

    def load_merged(self, name: str) -> Tuple[IntervalDecomposition, ModelRecord]:
        """Load any model — sharded or single-file — as one decomposition.

        Sharded models are reassembled with :func:`merge_shards`; single-file
        models delegate to :meth:`ModelStore.load`.  The tool path for
        resharding (``repro shard``) and offline analysis.
        """
        record = self.record(name)
        if record.shards is None:
            return self.load(name)
        shards, manifest = self.load_shards(name)
        return merge_shards(shards), manifest.record


class ShardedQueryEngine:
    """Scatter-gather router over one :class:`QueryEngine` per row-range shard.

    Mirrors the :class:`QueryEngine` query API (``top_k_items``,
    ``nearest_neighbors``, ``reconstruct_rows``, ``scores_for_users``,
    ``top_k_for_users``, ``neighbor_distances``) and returns **byte-identical
    results**: the same indices and the same score bits the unsharded engine
    would produce over the merged model.  What changes is the execution
    shape:

    * *item-space queries* (``top_k_items``, ``reconstruct_rows``) scatter
      contiguous chunks of the query batch across the shard engines — every
      shard replicates the item map, and the scoring paths are row-local, so
      any partition of the batch concatenates to the same bytes;
    * *reference-space queries* (``nearest_neighbors``) fold the queries in
      once, scatter the distance computation so each shard scores only its
      own row range of stored users, reduce per shard with
      :func:`~repro.serve.query.top_k`, and gather with
      :func:`~repro.serve.query.top_k_from_candidates` under the same total
      order — selecting on squared distances and deferring ``sqrt`` to the
      ``min(k, n)`` selected entries instead of the full ``q x n`` matrix;
    * *stored-user queries* (``scores_for_users``) route each index to the
      shard that owns its row range and reassemble rows in query order.

    Scatter runs on a lazily created thread pool with one worker per shard
    (numpy releases the GIL in the hot paths).  The pool is an execution
    detail: results never depend on thread scheduling.

    Parameters
    ----------
    shards:
        Per-shard decompositions in row order, e.g. from
        :meth:`ShardPlanner.split` or :meth:`ShardedModelStore.load_shards`.
    row_ranges:
        The ``(start, stop)`` global row range of each shard.  Defaults to
        contiguous ranges derived from the shard row counts; pass the
        manifest's ranges when loading from a store.
    kernel:
        Interval-product kernel for every shard engine (see
        :class:`QueryEngine`).
    """

    def __init__(self, shards: Sequence[IntervalDecomposition],
                 row_ranges: Optional[Sequence[Tuple[int, int]]] = None,
                 kernel: KernelLike = None):
        if not shards:
            raise ValueError("ShardedQueryEngine needs at least one shard")
        # The design invariant: item factors are bitwise replicas.  A shard
        # from a different model would otherwise silently fold queries
        # through one model's projector and score against the other's
        # references.
        _check_same_model(shards, "route across")
        # The item-side factors are replicated across shards, so the fold-in
        # projector (and its pseudo-inverse SVDs) is computed once and shared
        # by every shard engine.
        shared_projector = FoldInProjector(shards[0], kernel=kernel)
        self.engines = [QueryEngine(shard, projector=shared_projector)
                        for shard in shards]
        first = self.engines[0]
        counts = [engine.n_users for engine in self.engines]
        if row_ranges is None:
            stops = np.cumsum(counts)
            row_ranges = tuple(
                (int(stop - count), int(stop))
                for count, stop in zip(counts, stops)
            )
        else:
            row_ranges = tuple((int(a), int(b)) for a, b in row_ranges)
            if len(row_ranges) != len(self.engines):
                raise ValueError(
                    f"{len(row_ranges)} row ranges for {len(self.engines)} "
                    "shards"
                )
            expected_start = 0
            for (start, stop), count in zip(row_ranges, counts):
                if start != expected_start or stop - start != count:
                    raise ValueError(
                        f"row ranges {row_ranges} do not contiguously cover "
                        f"the shard row counts {counts}"
                    )
                expected_start = stop
        self.row_ranges: RowRanges = row_ranges
        self._starts = np.array([start for start, _ in row_ranges])
        #: Total stored rows across every shard.
        self.n_users = int(sum(counts))
        self.n_items = first.n_items
        #: The replicated item-space state; identical in every shard engine.
        self.projector = first.projector
        self.item_map = first.item_map
        #: How many chunks item-space queries scatter into.  Unlike the
        #: reference-space scatter (structurally one task per shard), batch
        #: chunking is a free choice — row-local scoring makes any chunking
        #: byte-identical — so it adapts to the cores actually available:
        #: fanning a single CPU out over four threads would only add
        #: scheduling overhead to every request.  Sized by the CPUs this
        #: process may actually run on (container quotas, affinity masks),
        #: not the host's core count.
        self._scatter_width = max(1, min(len(self.engines), usable_cpu_count()))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Scatter plumbing
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of row-range shards behind this router."""
        return len(self.engines)

    def _run(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run thunks, fanning out across the shard pool when there are
        several (and more than one core to fan out over); order of results
        always matches order of tasks, and results never depend on which
        path executed them."""
        if len(tasks) <= 1 or self._scatter_width == 1:
            return [task() for task in tasks]
        with self._pool_lock:
            # Submission happens under the lock so close() can never land
            # between the closed-check and the submits; the lock guards only
            # queue puts, never task execution, so concurrent callers do not
            # serialize behind each other's computations.
            if self._closed:
                futures = None
            else:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=len(self.engines),
                        thread_name_prefix="repro-shard",
                    )
                futures = [self._pool.submit(task) for task in tasks]
        if futures is None:  # closed: keep answering, just serially
            return [task() for task in tasks]
        return [future.result() for future in futures]

    def close(self, wait: bool = True) -> None:
        """Shut down the scatter pool (idempotent; the engine stays usable,
        running serially afterwards).

        ``wait=False`` returns without joining the workers — what the HTTP
        layer uses when it replaces or evicts a cached engine, so request
        threads never block on a displaced engine's pool; in-flight scatter
        tasks still run to completion.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def _coerce_rows(self, rows: Rows):
        return self.projector._coerce_rows(rows)

    def _split_rows(self, rows) -> List[object]:
        """Contiguous row chunks of a (coerced) query batch, one per scatter
        slot at most; row-local scoring makes the cut points irrelevant to
        the answers."""
        n_chunks = min(self._scatter_width, rows.shape[0])
        if n_chunks <= 1:
            return [rows]
        chunks = []
        for start, stop in plan_row_ranges(rows.shape[0], n_chunks):
            if is_sparse_interval(rows):
                chunks.append(rows.rows(np.arange(start, stop)))
            else:
                chunks.append(IntervalMatrix(rows.lower[start:stop],
                                             rows.upper[start:stop],
                                             check=False))
        return chunks

    # ------------------------------------------------------------------ #
    # Item-space queries (scatter the batch; item factors are replicated)
    # ------------------------------------------------------------------ #
    def reconstruct_rows(self, user_rows: Rows) -> np.ndarray:
        """Predicted scores (``q x m``) for unseen rows; bit-equal to the
        unsharded :meth:`QueryEngine.reconstruct_rows`."""
        rows = self._coerce_rows(user_rows)
        chunks = self._split_rows(rows)
        blocks = self._run([
            (lambda engine=engine, chunk=chunk: engine.reconstruct_rows(chunk))
            for engine, chunk in zip(self.engines, chunks)
        ])
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def top_k_items(self, user_rows: Rows, k: int) -> TopKResult:
        """Best-``k`` items per query row; bit-equal to the unsharded
        :meth:`QueryEngine.top_k_items` (selection is row-local, so chunks
        gather by simple concatenation in batch order)."""
        rows = self._coerce_rows(user_rows)
        chunks = self._split_rows(rows)
        results = self._run([
            (lambda engine=engine, chunk=chunk: engine.top_k_items(chunk, k))
            for engine, chunk in zip(self.engines, chunks)
        ])
        if len(results) == 1:
            return results[0]
        return TopKResult(np.vstack([r.indices for r in results]),
                          np.vstack([r.scores for r in results]))

    # ------------------------------------------------------------------ #
    # Reference-space queries (scatter the stored rows; gather by merge)
    # ------------------------------------------------------------------ #
    def neighbor_squared_distances(self, query_rows: Rows) -> np.ndarray:
        """Squared distances (``q x n``) to every stored row across all
        shards, gathered in global row order; bit-equal to the unsharded
        matrix (each entry is element-local)."""
        features = self.projector.latent_features(self._coerce_rows(query_rows))
        blocks = self._run([
            (lambda engine=engine: engine.squared_distances_to_references(features))
            for engine in self.engines
        ])
        return blocks[0] if len(blocks) == 1 else np.hstack(blocks)

    def neighbor_distances(self, query_rows: Rows) -> np.ndarray:
        """Interval distances (``q x n``) to every stored row."""
        return np.sqrt(self.neighbor_squared_distances(query_rows))

    def _scatter_candidates(self, features, k: int) -> TopKResult:
        """Each shard's local top-``k`` on squared distances, with global
        indices, concatenated in shard order (not yet globally merged)."""

        def local_top_k(engine: QueryEngine, start: int) -> TopKResult:
            squared = engine.squared_distances_to_references(features)
            local = top_k(squared, k, largest=False)
            return TopKResult(local.indices + start, local.scores)

        results = self._run([
            (lambda engine=engine, start=start: local_top_k(engine, start))
            for engine, (start, _) in zip(self.engines, self.row_ranges)
        ])
        if len(results) == 1:
            return results[0]
        return TopKResult(np.hstack([r.indices for r in results]),
                          np.hstack([r.scores for r in results]))

    def nearest_neighbor_candidates(self, query_rows: Rows, k: int) -> TopKResult:
        """Cross-shard candidate lists for top-``k`` neighbour selection.

        Returns per-row global stored-row indices and **squared** distances
        of each shard's local top-``k`` (``<= n_shards * k`` candidates per
        row, in shard order, not globally merged).  Because :func:`top_k`
        lists are prefixes of each other under the total order, merging
        these candidates with :func:`top_k_from_candidates` reproduces
        :meth:`nearest_neighbors` bit for bit for *any* ``k' <= k`` — which
        is how the HTTP micro-batcher serves mixed-``k`` request batches
        from one scatter whose working set is ``q x (n_shards * k)`` instead
        of the full ``q x n`` distance matrix.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        features = self.projector.latent_features(self._coerce_rows(query_rows))
        return self._scatter_candidates(features, k)

    def nearest_neighbors(self, query_rows: Rows, k: int) -> TopKResult:
        """``k`` nearest stored rows per query row, merged across shards.

        Each shard reduces its own row range to a local top-``k`` on squared
        distances; the gather step selects among the ``<= n_shards * k``
        labelled candidates under the same (score, index) total order, which
        provably reproduces the unsharded selection bit for bit.  ``sqrt``
        runs only on the returned entries.
        """
        candidates = self.nearest_neighbor_candidates(query_rows, k)
        merged = top_k_from_candidates(candidates.scores, candidates.indices,
                                       min(k, self.n_users), largest=False)
        return TopKResult(merged.indices, np.sqrt(merged.scores))

    # ------------------------------------------------------------------ #
    # Stored-user queries (route indices to their owning shards)
    # ------------------------------------------------------------------ #
    def scores_for_users(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Predicted scores of stored users (all of them by default), rows in
        query order; bit-equal to the unsharded
        :meth:`QueryEngine.scores_for_users`."""
        if indices is None:
            blocks = self._run([
                (lambda engine=engine: engine.scores_for_users())
                for engine in self.engines
            ])
            return blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        indices = np.asarray(indices, dtype=int)
        flat = np.where(indices < 0, indices + self.n_users, indices)
        if flat.size and (flat.min() < 0 or flat.max() >= self.n_users):
            raise IndexError(
                f"user index out of range for {self.n_users} stored rows"
            )
        owner = np.searchsorted(self._starts, flat, side="right") - 1
        tasks = []
        masks = []
        for shard, (start, _) in enumerate(self.row_ranges):
            mask = owner == shard
            if not mask.any():
                continue
            local = flat[mask] - start
            tasks.append(lambda engine=self.engines[shard], local=local:
                         engine.scores_for_users(local))
            masks.append(mask)
        out = np.empty((flat.size, self.n_items), dtype=self.item_map.dtype)
        for mask, block in zip(masks, self._run(tasks)):
            out[mask] = block
        return out

    def top_k_for_users(self, indices: Sequence[int], k: int) -> TopKResult:
        """Best-``k`` items for stored users, from their trained latent rows."""
        return top_k(self.scores_for_users(indices), k, largest=True)
