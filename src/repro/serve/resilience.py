"""Resilience primitives for the worker serving path.

Three small, independently testable pieces that :mod:`repro.serve.worker`
composes into its fault-tolerance layer:

* :class:`Deadline` — an absolute point on the monotonic clock, threaded
  from the HTTP front ends through the scatter-gather router down to every
  per-worker socket operation, so a stalled worker can bound a *request*
  instead of hanging it.  :func:`deadline_scope` carries the current
  request's deadline in a thread-local (the blocking handlers run one
  request per thread); nested scopes keep the tighter deadline.
* :class:`RetryPolicy` — bounded exponential backoff with jitter,
  replacing the supervisor's previous single blind retry.  Jitter is
  essential under fan-out: synchronized retries from many front-end
  threads against one recovering worker are a thundering herd.
* :class:`CircuitBreaker` — a per-shard crash-loop breaker.  Every
  observed worker death lands in a sliding window; too many inside the
  window *opens* the breaker, which stops the respawn storm (a corrupt
  shard file would otherwise burn a process spawn per monitor tick,
  forever).  After a cooldown the breaker lets exactly one caller through
  (*half-open*) to probe with a fresh spawn + ping; success closes the
  breaker, failure re-opens it for another cooldown.

None of these import the worker module — they are mechanism, not policy —
so they can be unit-tested with fake clocks and reused by future
multi-host supervisors.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
]


class Deadline:
    """An absolute instant on the monotonic clock a request must beat.

    Absolute (not a duration) so it can be handed across layers and
    threads without accumulating slack: every layer computes its own
    ``remaining()`` against the same instant.
    """

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = float(at)
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_scope = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The active request deadline of this thread (``None`` when unbounded).

    Scatter fan-out runs on pool threads that do *not* inherit this
    thread-local — the router captures the deadline once on the request
    thread and passes it explicitly into every per-shard call.
    """
    return getattr(_scope, "deadline", None)


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Bound everything inside the ``with`` block by a fresh deadline.

    ``None`` (no deadline configured) is a no-op scope, so callers never
    need to branch.  When a tighter deadline is already active, it wins —
    an inner scope can only shrink the time budget, never extend it.
    """
    previous = current_deadline()
    if seconds is None:
        yield previous
        return
    deadline = Deadline.after(seconds)
    if previous is not None and previous.at < deadline.at:
        deadline = previous
    _scope.deadline = deadline
    try:
        yield deadline
    finally:
        _scope.deadline = previous


class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``attempts`` counts every try including the first; ``delay(i)`` is the
    pause before retry ``i`` (0-based), capped at ``max_backoff`` and
    spread by ``jitter`` (a fraction: 0.5 means the delay lands uniformly
    within +/-50% of the exponential value).
    """

    def __init__(self, attempts: int = 3, backoff: float = 0.05,
                 multiplier: float = 2.0, max_backoff: float = 2.0,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if backoff < 0 or max_backoff < 0:
            raise ValueError("backoff bounds must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.attempts = int(attempts)
        self.backoff = float(backoff)
        self.multiplier = float(multiplier)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()

    def delay(self, retry_index: int) -> float:
        """Seconds to wait before 0-based retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError(f"retry index must be >= 0, got {retry_index}")
        base = min(self.backoff * self.multiplier ** retry_index,
                   self.max_backoff)
        spread = self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, base * (1.0 + spread))


#: Circuit-breaker states (the classic three).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window crash-loop breaker (thread-safe).

    * **closed** — failures are recorded into a sliding window;
      ``threshold`` failures inside ``window`` seconds trip it open.
      Successes are *not* recorded in this state: a worker that crashes,
      respawns fine, and crashes again is exactly the loop the breaker
      exists to stop, so only the window aging out forgives failures.
    * **open** — :meth:`allow` refuses everything until ``cooldown``
      seconds have passed, then lets exactly one caller through as the
      half-open probe.
    * **half-open** — the probe is in flight; everyone else is refused.
      :meth:`record_success` (probe worked) resets to closed and clears
      the window; :meth:`record_failure` re-opens for a fresh cooldown.
    """

    def __init__(self, threshold: int = 5, window: float = 30.0,
                 cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if window <= 0 or cooldown <= 0:
            raise ValueError("window and cooldown must be positive")
        self.threshold = int(threshold)
        self.window = float(window)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: deque = deque()  # monotonic timestamps
        self._state = BREAKER_CLOSED
        self._opened_at: Optional[float] = None
        self.last_failure: Optional[str] = None

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def record_failure(self, reason: str) -> None:
        """One observed failure (a worker death or a failed respawn)."""
        with self._lock:
            now = self._clock()
            self._failures.append(now)
            self._prune(now)
            self.last_failure = reason
            if self._state == BREAKER_HALF_OPEN:
                # The probe failed: back to open, fresh cooldown.
                self._state = BREAKER_OPEN
                self._opened_at = now
            elif (self._state == BREAKER_CLOSED
                    and len(self._failures) >= self.threshold):
                self._state = BREAKER_OPEN
                self._opened_at = now

    def record_success(self) -> None:
        """The half-open probe (or an explicit reset) succeeded."""
        with self._lock:
            self._failures.clear()
            self._state = BREAKER_CLOSED
            self._opened_at = None

    def allow(self) -> bool:
        """May an attempt proceed right now?

        Closed: always.  Open: only once the cooldown has elapsed — and
        that single ``True`` *claims* the half-open probe, so concurrent
        callers cannot all storm the recovering shard at once.
        """
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = BREAKER_HALF_OPEN
                    return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next attempt could be allowed (0 when closed)."""
        with self._lock:
            if self._state != BREAKER_OPEN or self._opened_at is None:
                return 0.0
            return max(0.0, self._opened_at + self.cooldown - self._clock())

    def snapshot(self) -> Dict[str, object]:
        """Health-endpoint view of the breaker (JSON-serializable)."""
        with self._lock:
            now = self._clock()
            self._prune(now)
            retry_after = 0.0
            if self._state == BREAKER_OPEN and self._opened_at is not None:
                retry_after = max(0.0,
                                  self._opened_at + self.cooldown - now)
            return {
                "state": self._state,
                "recent_failures": len(self._failures),
                "threshold": self.threshold,
                "retry_after": round(retry_after, 3),
                "last_failure": self.last_failure,
            }
