"""Stdlib-only HTTP JSON service over a model store.

Endpoints (all responses are JSON):

* ``GET /healthz`` — liveness: ``{"status": "ok", "models": <count>}``;
* ``GET /models`` — metadata of every published model;
* ``POST /recommend`` — body ``{"model": name, "rows": ... , "k": 5}``;
  returns per-row top-k item indices and scores;
* ``POST /neighbors`` — same body shape; returns per-row nearest stored-row
  indices and interval distances.

Query rows are given either as ``"rows": [[...]]`` (scalar values, treated
as degenerate intervals), as ``{"lower": [[...]], "upper": [[...]]}``
endpoint pairs, or as a single ``"row": [...]`` — single rows go through the
:class:`~repro.serve.batching.MicroBatcher`, so concurrent clients share one
BLAS call without changing any result.

Models are served transparently whatever their on-disk format: single-file
models get a :class:`~repro.serve.query.QueryEngine`, sharded models
(published by :class:`~repro.serve.shard.ShardedModelStore`) get a
:class:`~repro.serve.shard.ShardedQueryEngine` scatter-gather router — the
two return byte-identical answers, so the wire format of a response does not
depend on how the model is stored.

Built on ``http.server.ThreadingHTTPServer`` — no dependencies beyond the
standard library, matching the rest of the package (numpy/scipy only).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, FrozenSet, Optional, Tuple, Union
from zipfile import BadZipFile

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike, get_kernel
from repro.interval.scalar import IntervalError
from repro.serve.batching import MicroBatcher
from repro.serve.query import (
    QueryEngine,
    TopKResult,
    top_k,
    top_k_from_candidates,
)
from repro.serve.resilience import deadline_scope
from repro.serve.shard import ShardedModelStore, ShardedQueryEngine
from repro.serve.store import ModelStore, ModelStoreError
from repro.serve.worker import (
    DeadlineExceededError,
    ShardUnavailableError,
    WorkerError,
    WorkerShardedQueryEngine,
    collect_missing_shards,
)

logger = logging.getLogger(__name__)

#: Any engine type: the single-model engine, the in-process scatter-gather
#: router, or the worker-process-backed router.  They share the query API
#: and return byte-identical results, so the HTTP layer never needs to know
#: whether (or how) a model is sharded.
EngineLike = Union[QueryEngine, ShardedQueryEngine, WorkerShardedQueryEngine]

#: Upper bound on accepted request bodies (a 1k-item interval row is ~50 kB).
MAX_BODY_BYTES = 16 * 1024 * 1024


class RequestError(ValueError):
    """Client error: malformed body, unknown model, bad row shape...

    ``retry_after`` (seconds, optional) becomes a ``Retry-After`` header —
    set on the 503s an unavailable shard maps to, so well-behaved clients
    back off for as long as the circuit breaker will refuse them anyway.
    """

    def __init__(self, message: str, status: int = 400,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def rows_from_payload(payload: Dict[str, object]) -> Tuple[IntervalMatrix, bool]:
    """Parse the query rows of a request body.

    Returns ``(rows, is_single)`` where ``is_single`` is True when the client
    sent one row (``"row"`` or a 1-D ``"rows"``) — the micro-batchable case.
    """
    try:
        if "row" in payload:
            values = np.asarray(payload["row"], dtype=float)
            if values.ndim != 1:
                raise RequestError("'row' must be a flat list of numbers")
            return _finite(IntervalMatrix.from_scalar(values[np.newaxis, :])), True
        if "lower" in payload or "upper" in payload:
            if "lower" not in payload or "upper" not in payload:
                raise RequestError("provide both 'lower' and 'upper'")
            lower = np.asarray(payload["lower"], dtype=float)
            upper = np.asarray(payload["upper"], dtype=float)
            single = lower.ndim == 1
            if single:
                lower, upper = lower[np.newaxis, :], upper[np.newaxis, :]
            return _finite(IntervalMatrix(lower, upper)), single
        if "rows" in payload:
            values = np.asarray(payload["rows"], dtype=float)
            single = values.ndim == 1
            if single:
                values = values[np.newaxis, :]
            return _finite(IntervalMatrix.from_scalar(values)), single
    except RequestError:
        raise
    except (TypeError, ValueError, IntervalError) as error:
        raise RequestError(f"invalid query rows: {error}") from error
    raise RequestError("provide query rows as 'row', 'rows', or 'lower'/'upper'")


def _finite(rows: IntervalMatrix) -> IntervalMatrix:
    """Reject non-finite query rows; inf endpoints would propagate NaN/inf
    through the fold-in products into responses that are not valid JSON."""
    if not (np.isfinite(rows.lower).all() and np.isfinite(rows.upper).all()):
        raise RequestError("query rows must contain only finite numbers")
    return rows


class ServingApp:
    """The service's state: a model store, cached engines, micro-batchers.

    ``kernel`` selects the interval-product kernel every engine is built
    with (resolved once at startup so a typo fails at boot, not per request);
    ``None`` keeps the paper-faithful default.  With ``workers=True``,
    sharded models serve through one *worker process* per shard
    (:class:`~repro.serve.worker.WorkerShardedQueryEngine`) instead of the
    in-process thread router — answers stay byte-identical either way.

    ``request_timeout`` (seconds, ``None`` = unbounded) is the end-to-end
    deadline each query runs under: it bounds worker socket waits, retry
    backoff and restart attempts alike, and expiry surfaces as a 504.
    ``degraded`` selects what an unavailable shard does to a neighbour
    query: ``"fail"`` (default) keeps the all-or-nothing byte-identity
    contract and returns a 503 with ``Retry-After``; ``"partial"`` answers
    from the live shards and flags the response with ``"degraded": true``
    plus the missing shard list.  ``worker_options`` passes resilience
    tuning (``call_timeout``, ``retry``, ``breaker_threshold``, ...,
    ``faults``) through to :class:`WorkerShardedQueryEngine`.

    ``dtype`` pins the server to one factor precision (``"float64"`` or
    ``"float32"``): a model whose sidecar records a different dtype is
    refused with a 409 instead of silently served — deploys that assume
    one precision's bytes must not mix in another's.  ``None`` (default)
    serves every model at its recorded precision.
    """

    def __init__(self, store: Union[ModelStore, str], max_batch: int = 64,
                 batch_delay: float = 0.002, kernel: KernelLike = None,
                 workers: bool = False,
                 request_timeout: Optional[float] = None,
                 degraded: str = "fail",
                 worker_options: Optional[Dict[str, object]] = None,
                 dtype: Optional[str] = None):
        if degraded not in ("fail", "partial"):
            raise ValueError(
                f"degraded policy must be 'fail' or 'partial', got {degraded!r}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {request_timeout}")
        if dtype is not None and dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype pin must be 'float32' or 'float64', got {dtype!r}")
        self.dtype = dtype
        self.store = store if isinstance(store, ModelStore) else ModelStore(store)
        self.kernel = get_kernel(kernel)
        self.max_batch = max_batch
        self.batch_delay = batch_delay
        self.workers = bool(workers)
        self.request_timeout = request_timeout
        self.degraded = degraded
        self.worker_options = dict(worker_options or {})
        self._lock = threading.Lock()
        self._engines: Dict[str, Tuple[object, EngineLike, object]] = {}
        self._batchers: Dict[Tuple[str, str], MicroBatcher] = {}
        #: Per-model single-flight locks: loading a model is O(model bytes)
        #: (NPZ decompress + per-shard fingerprint hashing), so concurrent
        #: first requests must not each load-and-discard their own copy.
        self._load_locks: Dict[str, threading.Lock] = {}

    def _current_record(self, name: str):
        """The model's current store metadata, as a 404 when it is gone."""
        try:
            return self.store.record(name)
        except ModelStoreError as error:
            self._evict(name)  # deleted models must not pin factors in memory
            raise RequestError(str(error), status=404) from error

    @staticmethod
    def _version_of(record) -> Tuple[object, ...]:
        """The engine-cache key identifying one publish of a model.

        ``generation`` is part of the key: a reshard bumps it even when the
        factor content is unchanged, and the cached engine (whose workers
        are pinned to one generation's files) must follow the manifest.
        """
        return (record.created_at, record.fingerprint, record.method,
                record.rank, record.shards, record.generation)

    def _current_version(self, name: str) -> Tuple[object, ...]:
        """The cache key a model's current publish would be stored under."""
        return self._version_of(self._current_record(name))

    def engine(self, name: str) -> EngineLike:
        """Engine for a published model, reloaded when the model is republished.

        Sharded models (``record.shards`` set) load through
        :class:`ShardedModelStore` and serve through a
        :class:`ShardedQueryEngine` router; single-file models keep the plain
        :class:`QueryEngine`.  Both return byte-identical answers, so clients
        cannot tell (and need not care) which format backs a model.

        The cached engine is validated against the store's current metadata on
        every access (one small JSON read), so ``repro decompose --save-model``
        over an existing name takes effect without restarting the server.
        A model deleted mid-request surfaces as 404, not a dropped connection.
        """
        # (The initial version read happens outside the single-flight lock —
        # cheap cache hits must not serialize — and is re-read under the
        # lock before any load.)
        version = self._current_version(name)
        with self._lock:
            cached = self._engines.get(name)
            load_lock = self._load_locks.setdefault(name, threading.Lock())
        if cached is not None and cached[0] == version:
            return cached[1]
        # Single-flight per model: loading is O(model bytes), so a burst of
        # first requests (or requests racing a republish) must produce one
        # load, not one per thread.  Different models still load in parallel.
        with load_lock:
            # Re-read the metadata now that we hold the lock: a republish
            # may have landed while we waited, and caching fresh factors
            # under a stale version key would force the next request to
            # reload them all over again.
            record = self._current_record(name)
            version = self._version_of(record)
            with self._lock:
                cached = self._engines.get(name)
            if cached is not None and cached[0] == version:
                return cached[1]
            if self.dtype is not None and record.dtype != self.dtype:
                raise RequestError(
                    f"model {name!r} is stored as {record.dtype} but this "
                    f"server is pinned to {self.dtype}", status=409)
            worker_options = dict(self.worker_options)
            if self.dtype is not None:
                worker_options.setdefault("dtype", self.dtype)
            try:
                if record.shards is not None and self.workers:
                    engine: EngineLike = WorkerShardedQueryEngine(
                        ShardedModelStore(self.store.directory), name,
                        kernel=self.kernel, degraded=self.degraded,
                        **worker_options)
                elif record.shards is not None:
                    shards, manifest = ShardedModelStore(
                        self.store.directory).load_shards(name)
                    engine = ShardedQueryEngine(
                        shards, row_ranges=manifest.row_ranges,
                        kernel=self.kernel)
                else:
                    decomposition, _ = self.store.load(name)
                    engine = QueryEngine(decomposition, kernel=self.kernel)
            except (ModelStoreError, OSError, BadZipFile, KeyError,
                    ValueError, WorkerError) as error:
                # Covers readers racing a delete (metadata read above,
                # factors unlinked before the NPZ load), truncated archives,
                # and not-a-decomposition files (KeyError: a factor array
                # missing from an externally written NPZ); ValueError
                # includes IntervalError; WorkerError covers shard workers
                # that could not come up on the model's files.
                self._evict(name)
                raise RequestError(f"model {name!r} is not loadable: {error}",
                                   status=404) from error
            with self._lock:
                displaced = self._engines.get(name)
                self._engines[name] = (version, engine, record)
        if displaced is not None:
            self._close_engine(displaced[1])
        return engine

    @staticmethod
    def _close_engine(engine: object) -> None:
        """Release a displaced engine's scatter pool without blocking (the
        engine keeps answering in-flight queries, serially)."""
        close = getattr(engine, "close", None)
        if close is not None:
            close(wait=False)

    def _evict(self, name: str) -> None:
        """Drop a model's cached engine and batchers (e.g. after deletion).

        The per-model load lock deliberately stays: popping it would hand a
        loader racing an evict+republish a *different* lock object for the
        same name, breaking single-flight exactly in the window it exists
        for (a stale loader could then overwrite and close a fresher
        engine).  A bare ``threading.Lock`` per name ever queried is a few
        dozen bytes — not worth that race.
        """
        with self._lock:
            cached = self._engines.pop(name, None)
            for key in [k for k in self._batchers if k[0] == name]:
                del self._batchers[key]
        if cached is not None:
            self._close_engine(cached[1])

    def _batcher(self, name: str, operation: str) -> MicroBatcher:
        def run_batch(requests):
            # The whole batch executes on the *leader's* thread, so the
            # followers' thread-local degradation scopes never see what the
            # gather dropped — each result therefore carries the batch's
            # missing-shard set back explicitly, and _run_query folds it
            # into its own request's scope.
            with collect_missing_shards() as missing:
                results = run_batch_inner(requests)
            dropped: FrozenSet[int] = frozenset(missing)
            return [(result, dropped) for result in results]

        def run_batch_inner(requests):
            # Resolve the engine per batch, so republished models take effect
            # for batched queries too.
            engine = self.engine(name)
            rows_list, ks = zip(*requests)
            stacked = IntervalMatrix(
                np.vstack([rows.lower for rows in rows_list]),
                np.vstack([rows.upper for rows in rows_list]),
                check=False,
            )
            # One BLAS call scores the whole stack; selection then runs per
            # request with its own k.  top_k is row-local, so every answer is
            # exactly what a direct single-row call would return — including
            # boundary tie-breaking, which slicing a shared top-max(k) list
            # would get wrong.  Neighbour selection ranks on squared
            # distances (the engines' own selection key) and takes sqrt only
            # on the per-request winners.
            if operation == "recommend":
                scores = engine.reconstruct_rows(stacked)
                return [
                    top_k(scores[i:i + 1], k, largest=True)
                    for i, k in enumerate(ks)
                ]
            candidates = getattr(engine, "nearest_neighbor_candidates", None)
            if candidates is not None:
                # Sharded engines reduce each shard to top-max(ks) candidates
                # before the gather, so the batch's working set is
                # q x (shards * k), not the full q x n distance matrix; the
                # per-request merge is byte-identical to a direct call for
                # every k <= max(ks) (top-k lists are prefixes of each other
                # under the total order).
                gathered = candidates(stacked, max(ks))
                results = []
                for i, k in enumerate(ks):
                    selected = top_k_from_candidates(
                        gathered.scores[i:i + 1], gathered.indices[i:i + 1],
                        k, largest=False)
                    results.append(TopKResult(selected.indices,
                                              np.sqrt(selected.scores)))
                return results
            squared = engine.neighbor_squared_distances(stacked)
            results = []
            for i, k in enumerate(ks):
                selected = top_k(squared[i:i + 1], k, largest=False)
                results.append(TopKResult(selected.indices,
                                          np.sqrt(selected.scores)))
            return results

        with self._lock:
            key = (name, operation)
            if key not in self._batchers:
                self._batchers[key] = MicroBatcher(
                    run_batch, max_batch=self.max_batch, max_delay=self.batch_delay)
            return self._batchers[key]

    # ------------------------------------------------------------------ #
    # Operations (shared by the HTTP handler and in-process callers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_k(payload: Dict[str, object]) -> int:
        k = payload.get("k", 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise RequestError("'k' must be a positive integer")
        return k

    def _run_query(self, operation: str, payload: Dict[str, object]) -> Dict[str, object]:
        name = payload.get("model")
        if not isinstance(name, str):
            raise RequestError("'model' (a published model name) is required")
        k = self._parse_k(payload)
        rows, single = rows_from_payload(payload)
        with deadline_scope(self.request_timeout), \
                collect_missing_shards() as missing:
            try:
                engine = self.engine(name)
                if rows.shape[1] != engine.n_items:
                    # Validated before submitting so a malformed request can
                    # never poison the other requests sharing its micro-batch.
                    raise RequestError(
                        f"query rows must have {engine.n_items} columns, "
                        f"got {rows.shape[1]}"
                    )
                if single and self.max_batch > 1:
                    result, dropped = \
                        self._batcher(name, operation).submit((rows, k))
                    missing.update(dropped)
                elif operation == "recommend":
                    result = engine.top_k_items(rows, k)
                else:
                    result = engine.nearest_neighbors(rows, k)
            except ShardUnavailableError as error:
                raise RequestError(str(error), status=503,
                                   retry_after=error.retry_after) from error
            except DeadlineExceededError as error:
                raise RequestError(str(error), status=504) from error
        value_key = "scores" if operation == "recommend" else "distances"
        index_key = "items" if operation == "recommend" else "neighbors"
        response: Dict[str, object] = {
            "model": name,
            "k": k,
            index_key: result.indices.tolist(),
            value_key: result.scores.tolist(),
        }
        if missing:
            # Explicitly flagged, never silent: a partial answer that looks
            # complete would be worse than the 503 it replaced.
            response["degraded"] = True
            response["missing_shards"] = sorted(missing)
        return response

    def recommend(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Top-k item recommendation for the payload's query rows."""
        return self._run_query("recommend", payload)

    def neighbors(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Nearest stored rows for the payload's query rows."""
        return self._run_query("neighbors", payload)

    def models(self) -> Dict[str, object]:
        """Metadata of every published model."""
        return {"models": [record.to_dict() for record in self.store.list()]}

    def healthz(self) -> Dict[str, object]:
        """Liveness payload, including what is actually being served.

        ``serving`` reports every model with a loaded engine: the served
        *generation* (so an operator can confirm a reshard took effect),
        the backend kind, per-shard worker liveness for process-backed
        models, and micro-batching counters.  Worker entries carry their
        resilience state too: restart count and timestamps, the last
        failure reason, and the circuit-breaker snapshot.  The overall
        ``status`` degrades to ``"degraded"`` when any served model has a
        dead worker or a breaker that is not closed.
        """
        with self._lock:
            cached = dict(self._engines)
            batcher_stats = {
                f"{name}:{operation}": batcher.stats()
                for (name, operation), batcher in self._batchers.items()
            }
        serving: Dict[str, object] = {}
        degraded = False
        for name, (_, engine, record) in sorted(cached.items()):
            entry: Dict[str, object] = {
                "generation": getattr(record, "generation", None),
                "shards": getattr(record, "shards", None),
                "backend": ("workers"
                            if isinstance(engine, WorkerShardedQueryEngine)
                            else "sharded-threads"
                            if isinstance(engine, ShardedQueryEngine)
                            else "in-process"),
            }
            liveness = getattr(engine, "liveness", None)
            if liveness is not None:
                workers = liveness()
                entry["workers"] = workers
                for worker in workers:
                    breaker = worker.get("breaker") or {}
                    if (not worker["alive"]
                            or breaker.get("state", "closed") != "closed"):
                        degraded = True
            serving[name] = entry
        payload: Dict[str, object] = {
            "status": "degraded" if degraded else "ok",
            "models": len(self.store),
            "serving": serving,
        }
        if batcher_stats:
            payload["batching"] = batcher_stats
        return payload

    def close(self) -> None:
        """Release every cached engine (reaping worker processes) and
        batcher.  The app stays usable — the next request reloads — but the
        server shutdown path must call this so no worker outlives the
        front end."""
        with self._lock:
            engines, self._engines = dict(self._engines), {}
            self._batchers.clear()
        for _, engine, _ in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close(wait=True)


class ServingHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server tuned for bursts of concurrent queries.

    The stdlib default listen backlog of 5 drops (resets) connections the
    moment more clients connect than the accept loop has drained — exactly
    the burst pattern micro-batching exists for — so it is raised here.
    Handler threads are daemonic: a hung client cannot block shutdown.
    """

    request_queue_size = 128
    daemon_threads = True


class ServingHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`ServingApp` attached to the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServingApp:
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):  # quiet by default
            super().log_message(format, *args)

    def _send_json(self, payload: Dict[str, object], status: int = 200,
                   retry_after: Optional[float] = None) -> None:
        try:
            # allow_nan=False: bare NaN/Infinity tokens are not valid JSON and
            # break standards-compliant clients.  Inputs are validated finite,
            # so this only trips on pathological overflow inside the model.
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
        except ValueError:
            status = 500
            payload = {"error": "response contains non-finite values"}
            body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Integral seconds, rounded up: Retry-After is delta-seconds.
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            # The body size is unknowable, so it cannot be drained; the
            # connection must close or the leftover bytes would be parsed as
            # the next request.
            self.close_connection = True
            raise RequestError("invalid Content-Length")
        if length <= 0:
            raise RequestError("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain oversized bodies
            raise RequestError("request body too large", status=413)
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                self._send_json(self.app.healthz())
            elif self.path == "/models":
                self._send_json(self.app.models())
            else:
                self._send_json({"error": f"unknown path {self.path!r}"}, status=404)
        except Exception as error:  # never drop the connection without a reply
            self._send_json({"error": f"internal error: {error}"}, status=500)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        routes = {"/recommend": self.app.recommend, "/neighbors": self.app.neighbors}
        handler = routes.get(self.path)
        try:
            # Read the body before routing, even for unknown paths: replying
            # while unread body bytes sit on a keep-alive connection would
            # corrupt the next request on it.
            try:
                payload = self._read_body()
            except RequestError:
                if handler is None:  # the unknown path is the better diagnosis
                    raise RequestError(f"unknown path {self.path!r}", status=404)
                raise
            if handler is None:
                raise RequestError(f"unknown path {self.path!r}", status=404)
            self._send_json(handler(payload))
        except RequestError as error:
            self._send_json({"error": str(error)}, status=error.status,
                            retry_after=error.retry_after)
        except (ValueError, IntervalError) as error:
            self._send_json({"error": str(error)}, status=400)
        except Exception as error:  # never drop the connection without a reply
            self._send_json({"error": f"internal error: {error}"}, status=500)


def create_server(
    store: Union[ModelStore, str],
    host: str = "127.0.0.1",
    port: int = 8080,
    max_batch: int = 64,
    batch_delay: float = 0.002,
    verbose: bool = False,
    kernel: KernelLike = None,
    workers: bool = False,
    request_timeout: Optional[float] = None,
    degraded: str = "fail",
    worker_options: Optional[Dict[str, object]] = None,
    dtype: Optional[str] = None,
) -> ServingHTTPServer:
    """Build a ready-to-run threading HTTP server over a model store.

    Parameters
    ----------
    store:
        A :class:`ModelStore` or a store directory path.  Sharded and
        single-file models in it are served alike.
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port
        (``server.server_address`` has the real one).
    max_batch:
        Most concurrent single-row queries stacked into one scoring call
        (per model and operation); ``1`` disables micro-batching.
    batch_delay:
        Seconds a batch leader waits for followers (keep at network-jitter
        scale; it bounds the latency a lone request pays).
    verbose:
        Log each request to stderr.
    kernel:
        Interval-product kernel every served model's engine is built with.
    workers:
        Serve sharded models through one worker process per shard.
    request_timeout, degraded, worker_options:
        Fault-tolerance policy; see :class:`ServingApp`.
    dtype:
        Pin the server to one factor precision; models of any other
        recorded dtype are refused with a 409 (see :class:`ServingApp`).

    Call ``serve_forever()`` to run; each connection is handled on its own
    thread, and concurrent single-row queries are micro-batched.
    Micro-batching never changes any answer: the engines' scoring paths are
    batch-invariant and selection is a total order, so a batched response is
    byte-identical to the response an idle server would have produced.
    """
    server = ServingHTTPServer((host, port), ServingHandler)
    server.app = ServingApp(store, max_batch=max_batch, batch_delay=batch_delay,
                            kernel=kernel, workers=workers,
                            request_timeout=request_timeout,
                            degraded=degraded,
                            worker_options=worker_options,
                            dtype=dtype)  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server
