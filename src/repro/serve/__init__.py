"""Online serving of fitted interval decompositions.

The subsystem has five layers, each usable on its own (see
``docs/ARCHITECTURE.md`` for the data-flow walkthrough):

* :class:`~repro.serve.store.ModelStore` — publishes fitted decompositions
  (factors + metadata) to a directory, atomically;
* :class:`~repro.serve.foldin.FoldInProjector` — maps unseen interval rows
  into a stored model's latent space via least squares, so queries never
  re-run a factorization;
* :class:`~repro.serve.query.QueryEngine` — batched, vectorized top-k
  recommendation and nearest-neighbour retrieval over one model, with
  :class:`~repro.serve.batching.MicroBatcher` stacking concurrent
  single-row queries into single BLAS calls;
* :mod:`repro.serve.shard` — row-range sharding:
  :class:`~repro.serve.shard.ShardPlanner` splits a model along the user
  dimension, :class:`~repro.serve.shard.ShardedModelStore` publishes
  per-shard archives, and :class:`~repro.serve.shard.ShardedQueryEngine`
  scatter-gathers queries across per-shard engines with a byte-stable merge;
* :mod:`repro.serve.http` — a stdlib-only HTTP JSON service
  (``/models``, ``/recommend``, ``/neighbors``, ``/healthz``) exposed by
  the CLI as ``repro serve`` / ``repro query``; sharded and single-file
  models are served transparently.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.foldin import FoldInProjector
from repro.serve.http import ServingApp, create_server
from repro.serve.query import QueryEngine, TopKResult, top_k, top_k_from_candidates
from repro.serve.shard import (
    ShardedModelStore,
    ShardedQueryEngine,
    ShardManifest,
    ShardPlanner,
    merge_shards,
    plan_row_ranges,
)
from repro.serve.store import ModelRecord, ModelStore, ModelStoreError

__all__ = [
    "FoldInProjector",
    "MicroBatcher",
    "ModelRecord",
    "ModelStore",
    "ModelStoreError",
    "QueryEngine",
    "ServingApp",
    "ShardManifest",
    "ShardPlanner",
    "ShardedModelStore",
    "ShardedQueryEngine",
    "TopKResult",
    "create_server",
    "merge_shards",
    "plan_row_ranges",
    "top_k",
    "top_k_from_candidates",
]
