"""Online serving of fitted interval decompositions.

The subsystem has seven layers, each usable on its own (see
``docs/ARCHITECTURE.md`` for the data-flow walkthrough):

* :class:`~repro.serve.store.ModelStore` — publishes fitted decompositions
  (factors + metadata) to a directory, atomically;
* :class:`~repro.serve.foldin.FoldInProjector` — maps unseen interval rows
  into a stored model's latent space via least squares, so queries never
  re-run a factorization;
* :class:`~repro.serve.query.QueryEngine` — batched, vectorized top-k
  recommendation and nearest-neighbour retrieval over one model, with
  :class:`~repro.serve.batching.MicroBatcher` stacking concurrent
  single-row queries into single BLAS calls;
* :mod:`repro.serve.shard` — row-range sharding:
  :class:`~repro.serve.shard.ShardPlanner` splits a model along the user
  dimension, :class:`~repro.serve.shard.ShardedModelStore` publishes
  generation-versioned per-shard archives (hitless republish), and
  :class:`~repro.serve.shard.ShardedQueryEngine` scatter-gathers queries
  across per-shard engines with a byte-stable merge;
* :mod:`repro.serve.protocol` — the length-prefixed npy frame format
  between the front end and shard workers (no pickle on the wire);
* :mod:`repro.serve.worker` — per-shard **worker processes**:
  :class:`~repro.serve.worker.ShardWorkerSupervisor` spawns, health-checks
  and restarts one worker per shard, and
  :class:`~repro.serve.worker.WorkerShardedQueryEngine` routes queries
  across them with the same byte-identical answers as the in-process
  router; :mod:`repro.serve.resilience` supplies the deadlines, retry
  backoff and per-shard circuit breakers that keep one stalled or
  crash-looping worker from taking the service with it, and
  :mod:`repro.serve.faults` is the deterministic fault-injection harness
  the chaos test tier proves all of it against;
* :mod:`repro.serve.http` / :mod:`repro.serve.async_http` — a stdlib-only
  HTTP JSON service (``/models``, ``/recommend``, ``/neighbors``,
  ``/healthz``) exposed by the CLI as ``repro serve`` / ``repro query``;
  the asyncio front end (``repro serve --workers N``) parses requests on
  the event loop so slow clients cannot exhaust worker threads.
"""

from repro.serve.async_http import AsyncServingServer, create_async_server
from repro.serve.batching import MicroBatcher
from repro.serve.foldin import FoldInProjector
from repro.serve.http import ServingApp, create_server
from repro.serve.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.query import QueryEngine, TopKResult, top_k, top_k_from_candidates
from repro.serve.shard import (
    ShardedModelStore,
    ShardedQueryEngine,
    ShardManifest,
    ShardPlanner,
    merge_shards,
    plan_row_ranges,
    usable_cpu_count,
)
from repro.serve.faults import FaultInjected, FaultPlan, FaultSpecError
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)
from repro.serve.store import ModelRecord, ModelStore, ModelStoreError
from repro.serve.worker import (
    DeadlineExceededError,
    ShardUnavailableError,
    ShardWorkerSupervisor,
    WorkerError,
    WorkerRequestError,
    WorkerShardedQueryEngine,
    collect_missing_shards,
)

__all__ = [
    "AsyncServingServer",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "FaultInjected",
    "FaultPlan",
    "FaultSpecError",
    "FoldInProjector",
    "MicroBatcher",
    "ModelRecord",
    "ModelStore",
    "ModelStoreError",
    "ProtocolError",
    "QueryEngine",
    "RetryPolicy",
    "ServingApp",
    "ShardManifest",
    "ShardPlanner",
    "ShardUnavailableError",
    "ShardWorkerSupervisor",
    "ShardedModelStore",
    "ShardedQueryEngine",
    "TopKResult",
    "WorkerError",
    "WorkerRequestError",
    "WorkerShardedQueryEngine",
    "collect_missing_shards",
    "create_async_server",
    "create_server",
    "current_deadline",
    "deadline_scope",
    "decode_frame",
    "encode_frame",
    "merge_shards",
    "plan_row_ranges",
    "read_frame",
    "top_k",
    "top_k_from_candidates",
    "usable_cpu_count",
    "write_frame",
]
