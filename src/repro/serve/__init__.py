"""Online serving of fitted interval decompositions.

The subsystem has four layers, each usable on its own:

* :class:`~repro.serve.store.ModelStore` — publishes fitted decompositions
  (factors + metadata) to a directory, atomically;
* :class:`~repro.serve.foldin.FoldInProjector` — maps unseen interval rows
  into a stored model's latent space via least squares, so queries never
  re-run a factorization;
* :class:`~repro.serve.query.QueryEngine` — batched, vectorized top-k
  recommendation and nearest-neighbour retrieval over one model, with
  :class:`~repro.serve.batching.MicroBatcher` stacking concurrent
  single-row queries into single BLAS calls;
* :mod:`repro.serve.http` — a stdlib-only HTTP JSON service
  (``/models``, ``/recommend``, ``/neighbors``, ``/healthz``) exposed by
  the CLI as ``repro serve`` / ``repro query``.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.foldin import FoldInProjector
from repro.serve.http import ServingApp, create_server
from repro.serve.query import QueryEngine, TopKResult
from repro.serve.store import ModelRecord, ModelStore, ModelStoreError

__all__ = [
    "FoldInProjector",
    "MicroBatcher",
    "ModelRecord",
    "ModelStore",
    "ModelStoreError",
    "QueryEngine",
    "ServingApp",
    "TopKResult",
    "create_server",
]
