"""Vectorized query answering over one fitted decomposition.

The two paper workloads the serving layer answers online:

* **recommendation** — predicted ratings are the midpoint reconstruction of
  the (folded-in) user row, the same semantics :mod:`repro.eval.cf` scores
  offline; ``top_k_items`` returns the best-scoring item indices;
* **retrieval** — ``nearest_neighbors`` compares a folded-in query row
  against the training rows' latent features with the paper's interval
  Euclidean distance (:func:`repro.eval.knn.pairwise_interval_distances`).

Both entry points are batched: a ``q``-row query is one BLAS call plus one
vectorized selection, never a Python loop over rows.  Selection ranks under
a *total order* — score first, ties (including ties at the selection
boundary) by ascending index — so results are reproducible bit for bit
across batch sizes, thread counts, and row-range shardings
(:mod:`repro.serve.shard` relies on this to merge per-shard top-k lists).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.core.result import IntervalDecomposition
from repro.eval.knn import (
    pairwise_interval_squared_distances,
    reference_squared_norms,
)
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike
from repro.serve.foldin import FoldInProjector, Rows, batch_invariant_matmul


class TopKResult(NamedTuple):
    """Per-row top-k indices and their scores (rows in query order)."""

    indices: np.ndarray
    """``(q, k)`` integer array of item/row indices, best first."""

    scores: np.ndarray
    """``(q, k)`` float array aligned with ``indices``."""


def top_k(scores: np.ndarray, k: int, largest: bool = True) -> TopKResult:
    """Fully deterministic per-row top-k selection under a *total order*.

    Parameters
    ----------
    scores:
        ``(q, m)`` float array of per-row candidate scores.  Scores must not
        contain NaN (the serving layer validates inputs finite; NaN has no
        place in a total order).
    k:
        Number of entries to select per row; clipped to ``m``.
    largest:
        Select the highest scores (recommendation) or the lowest (distances).

    Every row is ranked under the total order *(score, then ascending
    index)* — including items tying exactly at the selection boundary, which
    are admitted in ascending-index order.  Selection is therefore a pure
    function of the row's values: independent of batch size, of numpy's
    partition order, and — critically for the sharding layer — of *how the
    score row was partitioned*.  A per-shard top-k over row-range slices
    merged with :func:`top_k_from_candidates` reproduces this function's
    output bit for bit, which is what makes scatter-gather serving
    byte-stable (see :mod:`repro.serve.shard`).

    Selection uses ``argpartition`` (O(m) per row, the hot path never sorts
    whole score rows) plus one comparison pass that detects rows whose
    boundary ties were picked arbitrarily; only those rows are re-selected
    under the total order, then every row's ``k`` entries are ordered by
    (score, index).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    q, m = scores.shape
    k = min(k, m)
    keys = -scores if largest else scores
    if k >= m:
        order = np.argsort(keys, axis=1, kind="stable")
    else:
        candidates = np.argpartition(keys, k - 1, axis=1)[:, :k]
        candidate_keys = np.take_along_axis(keys, candidates, axis=1)
        # The selected *set* is ambiguous only when entries tying exactly at
        # the boundary (the k-th smallest key) were left outside the
        # partition's pick; those rows are re-selected under the total order
        # (everything strictly below the boundary, then the lowest-index
        # boundary ties).  Exact cross-entry ties are rare on float scores,
        # so the hot path stays one argpartition plus one comparison pass.
        boundary = candidate_keys.max(axis=1, keepdims=True)
        ambiguous = np.flatnonzero(
            (keys == boundary).sum(axis=1) > (candidate_keys == boundary).sum(axis=1))
        for row in ambiguous:
            row_keys = keys[row]
            below = np.flatnonzero(row_keys < boundary[row, 0])
            ties = np.flatnonzero(row_keys == boundary[row, 0])
            candidates[row] = np.concatenate([below, ties[: k - below.size]])
            candidate_keys[row] = row_keys[candidates[row]]
        inner = np.lexsort((candidates, candidate_keys), axis=1)
        order = np.take_along_axis(candidates, inner, axis=1)
    return TopKResult(order, np.take_along_axis(scores, order, axis=1))


def top_k_from_candidates(scores: np.ndarray, indices: np.ndarray, k: int,
                          largest: bool = True) -> TopKResult:
    """Top-k selection over *labelled* candidates, under :func:`top_k`'s order.

    Parameters
    ----------
    scores:
        ``(q, c)`` float array of candidate scores (no NaN).
    indices:
        ``(q, c)`` integer array of the candidates' original indices; entries
        must be distinct within a row.
    k:
        Number of entries to select per row; clipped to ``c``.
    largest:
        Same convention as :func:`top_k`.

    This is the *gather* half of scatter-gather top-k: each shard reduces its
    row range with :func:`top_k` (whose candidates provably contain every
    global winner), the per-shard winners are concatenated with their global
    indices, and this function selects among them under the same total order
    (score, then ascending index).  The composition is bit-identical to
    running :func:`top_k` over the unpartitioned score row.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if scores.shape != indices.shape:
        raise ValueError(
            f"scores {scores.shape} and indices {indices.shape} must align"
        )
    k = min(k, scores.shape[1])
    keys = -scores if largest else scores
    order = np.lexsort((indices, keys), axis=1)[:, :k]
    return TopKResult(np.take_along_axis(indices, order, axis=1),
                      np.take_along_axis(scores, order, axis=1))


class QueryEngine:
    """Answers batched top-k and nearest-neighbour queries for one model.

    Everything reusable is precomputed at construction: the scalar item map
    and its pseudo-inverses (via :class:`FoldInProjector`), the stored rows'
    latent coordinates, and their interval features.  A query is then pure
    matrix arithmetic on the precomputed state — no factorization runs.

    ``kernel`` selects the interval-product kernel
    (:mod:`repro.interval.kernels`) used when folding query rows into latent
    features for retrieval; ``None`` keeps the paper-faithful default.

    Query rows may be dense (ndarray / :class:`IntervalMatrix`) or a
    :class:`~repro.interval.sparse.SparseIntervalMatrix` of partially observed
    rows, which fold in with observed-only least squares (see
    :class:`FoldInProjector`); scoring and selection downstream are identical.

    **Batch-invariance guarantee.**  Every scoring path is row-local (einsum
    fold-in, per-row least squares, element-local distances) and every
    selection is a total order, so the answer for one query row is a pure
    function of that row and the model — independent of how many rows share
    the call, of micro-batching, and of row-range sharding.
    """

    def __init__(self, decomposition: IntervalDecomposition,
                 kernel: KernelLike = None,
                 projector: Optional[FoldInProjector] = None,
                 accum_dtype=None):
        self.decomposition = decomposition
        #: ``projector`` lets callers share one precomputed fold-in projector
        #: across engines whose item-side factors are bitwise identical —
        #: the sharded router replicates ``Sigma``/``V`` into every shard,
        #: so computing the pseudo-inverse SVDs once is enough.  When given,
        #: it overrides ``kernel`` (and ``accum_dtype``) for the fold-in
        #: paths; ``accum_dtype`` otherwise opts the projector into
        #: mixed-precision accumulation (see :class:`FoldInProjector`).
        self.projector = (FoldInProjector(decomposition, kernel=kernel,
                                          accum_dtype=accum_dtype)
                          if projector is None else projector)
        self.item_map = self.projector.item_map
        self.n_items = self.projector.n_items
        #: Latent coordinates of the rows the model was fitted on (n x r).
        self.user_latent = decomposition.u_scalar()
        #: Interval features ``U x Sigma`` of the stored rows, for retrieval.
        #: Computed with the batch-invariant matmul so each feature row is a
        #: pure function of its own ``U`` row — an engine built over a
        #: row-range shard of ``U`` holds exactly this array's matching slice.
        self.reference_features = decomposition.projection(
            matmul=batch_invariant_matmul)
        #: Squared endpoint-feature norms of the stored rows, computed once —
        #: the references never change within one engine, so no query batch
        #: should recompute this n-row reduction.
        self._references_sq = reference_squared_norms(self.reference_features)

    @property
    def n_users(self) -> int:
        """Number of rows the model was fitted on."""
        return int(self.user_latent.shape[0])

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def reconstruct_rows(self, user_rows: Rows) -> np.ndarray:
        """Predicted scores (``q x m``) for unseen user rows, via fold-in.

        ``user_rows`` is anything :class:`FoldInProjector` accepts: a dense
        ``(q, m)`` interval matrix / ndarray (a 1-D row is promoted to one
        query row) or a sparse matrix of partially observed rows.  Each
        output row is a pure function of its input row (batch-invariant).
        """
        return self.projector.reconstruct_rows(user_rows)

    def scores_for_users(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Predicted scores (``len(indices) x m``) of stored users.

        ``indices`` selects rows of the trained ``U`` (all of them by
        default), in query order.  Row-local like every scoring path: the
        scores of user ``i`` do not depend on which other users share the
        call, so any partition of the indices concatenates to the same bytes.
        """
        latent = (self.user_latent if indices is None
                  else self.user_latent[np.asarray(indices, dtype=int)])
        return batch_invariant_matmul(latent, self.item_map)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def top_k_items(self, user_rows: Rows, k: int) -> TopKResult:
        """Best-``k`` item indices and scores for each query row (batched).

        Returns a :class:`TopKResult` of ``(q, min(k, n_items))`` arrays,
        ranked under :func:`top_k`'s total order (score descending, ties by
        ascending item index).  Batch-invariant: stacking more query rows
        into one call never changes any row's answer.
        """
        return top_k(self.reconstruct_rows(user_rows), k, largest=True)

    def neighbor_squared_distances(self, query_rows: Rows) -> np.ndarray:
        """Squared interval distances (``q x n``) to every stored row.

        The raw selection matrix behind :meth:`nearest_neighbors`; square
        root being monotone, selection runs on squared distances and ``sqrt``
        is applied only to selected entries.  The micro-batcher uses this to
        share one distance computation across requests with different ``k``
        while selecting per request.  Entry ``(i, j)`` depends only on query
        row ``i`` and stored row ``j`` — batch-invariant in both directions.
        """
        features = self.projector.latent_features(query_rows)
        return self.squared_distances_to_references(features)

    def squared_distances_to_references(self, features: IntervalMatrix) -> np.ndarray:
        """Squared distances of already-folded-in latent features (``q x r``)
        to this engine's stored rows, using the cached reference norms.

        Split out from :meth:`neighbor_squared_distances` so the sharded
        engine can fold queries in once and scatter only this reference-side
        product across its row-range shards.
        """
        return pairwise_interval_squared_distances(
            features, self.reference_features,
            matmul=batch_invariant_matmul,
            references_sq=self._references_sq)

    def neighbor_distances(self, query_rows: Rows) -> np.ndarray:
        """Interval distances (``q x n``) of query rows to every stored row."""
        return np.sqrt(self.neighbor_squared_distances(query_rows))

    def top_k_for_users(self, indices: Sequence[int], k: int) -> TopKResult:
        """Best-``k`` items for stored users, from their trained latent rows."""
        return top_k(self.scores_for_users(indices), k, largest=True)

    def nearest_neighbors(self, query_rows: Rows, k: int) -> TopKResult:
        """``k`` nearest stored rows per query row, by interval distance.

        Returns a :class:`TopKResult` of ``(q, min(k, n_users))`` arrays:
        stored-row indices (nearest first) and their distances.  Selection
        runs on squared distances under :func:`top_k`'s total order; the
        returned scores are the square roots of the selected entries, so the
        values match :meth:`neighbor_distances` bit for bit.
        """
        selected = top_k(self.neighbor_squared_distances(query_rows), k,
                         largest=False)
        return TopKResult(selected.indices, np.sqrt(selected.scores))
