"""Vectorized query answering over one fitted decomposition.

The two paper workloads the serving layer answers online:

* **recommendation** — predicted ratings are the midpoint reconstruction of
  the (folded-in) user row, the same semantics :mod:`repro.eval.cf` scores
  offline; ``top_k_items`` returns the best-scoring item indices;
* **retrieval** — ``nearest_neighbors`` compares a folded-in query row
  against the training rows' latent features with the paper's interval
  Euclidean distance (:func:`repro.eval.knn.pairwise_interval_distances`).

Both entry points are batched: a ``q``-row query is one BLAS call plus one
vectorized selection, never a Python loop over rows.  Ties are broken by
ascending index (stable sort), so results are reproducible across batch
sizes and thread counts.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.core.result import IntervalDecomposition
from repro.eval.knn import pairwise_interval_distances, reference_squared_norms
from repro.interval.kernels import KernelLike
from repro.serve.foldin import FoldInProjector, Rows, batch_invariant_matmul


class TopKResult(NamedTuple):
    """Per-row top-k indices and their scores (rows in query order)."""

    indices: np.ndarray
    """``(q, k)`` integer array of item/row indices, best first."""

    scores: np.ndarray
    """``(q, k)`` float array aligned with ``indices``."""


def top_k(scores: np.ndarray, k: int, largest: bool = True) -> TopKResult:
    """Deterministic per-row top-k selection.

    Selection uses ``argpartition`` (O(m) per row, the serving hot path never
    sorts whole score rows), then orders the ``k`` selected entries by score
    with ties broken by ascending index.  Both steps operate row-locally, so
    results are independent of how many rows were stacked into the call.
    Items tying *exactly* at the selection boundary enter the top-k per
    numpy's partition order — deterministic, though not index-ordered.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    q, m = scores.shape
    k = min(k, m)
    keys = -scores if largest else scores
    if k >= m:
        order = np.argsort(keys, axis=1, kind="stable")
    else:
        candidates = np.argpartition(keys, k - 1, axis=1)[:, :k]
        candidate_keys = np.take_along_axis(keys, candidates, axis=1)
        inner = np.lexsort((candidates, candidate_keys), axis=1)
        order = np.take_along_axis(candidates, inner, axis=1)
    return TopKResult(order, np.take_along_axis(scores, order, axis=1))


class QueryEngine:
    """Answers batched top-k and nearest-neighbour queries for one model.

    Everything reusable is precomputed at construction: the scalar item map
    and its pseudo-inverses (via :class:`FoldInProjector`), the stored rows'
    latent coordinates, and their interval features.  A query is then pure
    matrix arithmetic on the precomputed state — no factorization runs.

    ``kernel`` selects the interval-product kernel
    (:mod:`repro.interval.kernels`) used when folding query rows into latent
    features for retrieval; ``None`` keeps the paper-faithful default.

    Query rows may be dense (ndarray / :class:`IntervalMatrix`) or a
    :class:`~repro.interval.sparse.SparseIntervalMatrix` of partially observed
    rows, which fold in with observed-only least squares (see
    :class:`FoldInProjector`); scoring and selection downstream are identical.
    """

    def __init__(self, decomposition: IntervalDecomposition,
                 kernel: KernelLike = None):
        self.decomposition = decomposition
        self.projector = FoldInProjector(decomposition, kernel=kernel)
        self.item_map = self.projector.item_map
        self.n_items = self.projector.n_items
        #: Latent coordinates of the rows the model was fitted on (n x r).
        self.user_latent = decomposition.u_scalar()
        #: Interval features ``U x Sigma`` of the stored rows, for retrieval.
        self.reference_features = decomposition.projection()
        #: Squared endpoint-feature norms of the stored rows, computed once —
        #: the references never change within one engine, so no query batch
        #: should recompute this n-row reduction.
        self._references_sq = reference_squared_norms(self.reference_features)

    @property
    def n_users(self) -> int:
        """Number of rows the model was fitted on."""
        return int(self.user_latent.shape[0])

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def reconstruct_rows(self, user_rows: Rows) -> np.ndarray:
        """Predicted scores (``q x m``) for unseen user rows, via fold-in."""
        return self.projector.reconstruct_rows(user_rows)

    def scores_for_users(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Predicted scores of stored users (all of them by default)."""
        latent = self.user_latent if indices is None else self.user_latent[np.asarray(indices)]
        return batch_invariant_matmul(latent, self.item_map)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def top_k_items(self, user_rows: Rows, k: int) -> TopKResult:
        """Best-``k`` item indices and scores for each query row (batched)."""
        return top_k(self.reconstruct_rows(user_rows), k, largest=True)

    def neighbor_distances(self, query_rows: Rows) -> np.ndarray:
        """Interval distances (``q x n``) of query rows to every stored row.

        The raw score matrix behind :meth:`nearest_neighbors`; the
        micro-batcher uses it to share one distance computation across
        requests with different ``k`` while selecting per request.
        """
        features = self.projector.latent_features(query_rows)
        return pairwise_interval_distances(features, self.reference_features,
                                           matmul=batch_invariant_matmul,
                                           references_sq=self._references_sq)

    def top_k_for_users(self, indices: Sequence[int], k: int) -> TopKResult:
        """Best-``k`` items for stored users, from their trained latent rows."""
        return top_k(self.scores_for_users(indices), k, largest=True)

    def nearest_neighbors(self, query_rows: Rows, k: int) -> TopKResult:
        """``k`` nearest stored rows per query row, by interval distance."""
        return top_k(self.neighbor_distances(query_rows), k, largest=False)
