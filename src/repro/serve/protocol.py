"""Length-prefixed binary frames between the serving front end and workers.

One frame carries a small JSON header (the operation and its scalar
parameters) plus zero or more npy-encoded numpy arrays (query endpoints,
folded-in features, result indices/scores).  The format is deliberately
tiny — no pickle anywhere on the wire, so a corrupted or malicious peer can
never execute code on decode — and strictly length-prefixed, so a reader
always knows exactly how many bytes to consume and can fail loudly on
truncation instead of hanging:

``MAGIC(4) | body_length u64 | body``

``body := header_length u32 | header JSON (UTF-8) | n_arrays u32 |``
``        (array_length u64 | npy bytes) * n_arrays``

All integers are big-endian.  Every length is validated against the
enclosing length and against ``max_bytes`` *before* any allocation, so a
garbage length prefix raises :class:`ProtocolError` rather than attempting a
multi-gigabyte read.  The body must be consumed exactly: trailing bytes mean
a framing bug on the peer and are an error, never silently skipped.

The round-trip property (``decode_frame(encode_frame(h, a)) == (h, a)``,
byte-for-byte on array payloads) and the loud-failure property (truncated /
oversized / garbage input raises ``ProtocolError``, never hangs or returns
partial data) are fuzzed in ``tests/test_serve_protocol.py``.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import io as repro_io

#: Frame magic: "repro serve protocol, version 1".
MAGIC = b"RSP1"

#: Default upper bound on one frame's body.  A 4096-row chunk of 2k-item
#: interval queries is ~128 MB (two float64 endpoint arrays); the default
#: leaves headroom without letting a corrupt length prefix allocate the
#: machine away.
MAX_FRAME_BYTES = 512 * 1024 * 1024

#: Upper bound on arrays per frame (requests carry at most a handful).
MAX_ARRAYS = 64

#: Upper bound on the JSON header (headers are a few short keys).
MAX_HEADER_BYTES = 64 * 1024

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class ProtocolError(RuntimeError):
    """A malformed, truncated, oversized or otherwise unusable frame.

    Raised on *any* deviation from the framing rules — the router treats it
    as a dead peer (fail loudly, restart the worker), never as data.
    """


Frame = Tuple[Dict[str, object], List[np.ndarray]]

#: Write-side fault-injection hook (worker processes only; armed by
#: :func:`repro.serve.faults.install_protocol_hook`).  Called with
#: ``(stream, header)`` before a frame is encoded; returning True means the
#: hook consumed the write (e.g. it put a corrupt frame on the wire) and
#: the real frame must not follow.  ``None`` — the production state — costs
#: one attribute check per frame.
_write_fault_hook: Optional[Callable[[BinaryIO, Dict[str, object]], bool]] = None


def set_write_fault_hook(
        hook: Optional[Callable[[BinaryIO, Dict[str, object]], bool]]) -> None:
    """Install (or with ``None`` clear) the write-side fault hook."""
    global _write_fault_hook
    _write_fault_hook = hook


def encode_frame(header: Dict[str, object],
                 arrays: Sequence[np.ndarray] = (),
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one ``(header, arrays)`` message to frame bytes.

    The header must be a JSON-serializable dict; arrays are npy-encoded with
    pickling disabled (object dtypes raise).  Encoding enforces the same
    bounds decoding does, so a frame this function produces is always
    decodable by a peer with the same limits.
    """
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a dict, got {type(header).__name__}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte bound"
        )
    if len(arrays) > MAX_ARRAYS:
        raise ProtocolError(
            f"{len(arrays)} arrays in one frame exceeds the {MAX_ARRAYS} bound"
        )
    parts = [_U32.pack(len(header_bytes)), header_bytes, _U32.pack(len(arrays))]
    for array in arrays:
        try:
            payload = repro_io.array_to_npy_bytes(np.asarray(array))
        except ValueError as error:  # object dtype: would need pickle
            raise ProtocolError(f"array is not wire-encodable: {error}") from error
        parts.append(_U64.pack(len(payload)))
        parts.append(payload)
    body = b"".join(parts)
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the {max_bytes}-byte bound"
        )
    return MAGIC + _U64.pack(len(body)) + body


def decode_frame(data: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Frame:
    """Decode one complete frame from ``data`` (which must hold exactly one).

    Raises :class:`ProtocolError` on bad magic, truncation, oversized
    lengths, malformed JSON / npy payloads, or trailing bytes.
    """
    if len(data) < len(MAGIC) + _U64.size:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{len(MAGIC) + _U64.size}-byte frame prelude"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise ProtocolError(
            f"bad frame magic {data[:len(MAGIC)]!r} (expected {MAGIC!r})"
        )
    (body_length,) = _U64.unpack_from(data, len(MAGIC))
    if body_length > max_bytes:
        raise ProtocolError(
            f"declared frame body of {body_length} bytes exceeds the "
            f"{max_bytes}-byte bound"
        )
    body_start = len(MAGIC) + _U64.size
    if len(data) - body_start != body_length:
        raise ProtocolError(
            f"frame declares a {body_length}-byte body but "
            f"{len(data) - body_start} bytes follow the prelude"
        )
    return _decode_body(memoryview(data)[body_start:])


def _decode_body(body: memoryview) -> Frame:
    offset = 0

    def take(n: int, what: str) -> memoryview:
        nonlocal offset
        if n > len(body) - offset:
            raise ProtocolError(
                f"truncated frame body: {what} needs {n} bytes but only "
                f"{len(body) - offset} remain"
            )
        view = body[offset:offset + n]
        offset += n
        return view

    (header_length,) = _U32.unpack(take(_U32.size, "header length"))
    if header_length > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"declared header of {header_length} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte bound"
        )
    header_bytes = take(header_length, "header")
    try:
        header = json.loads(bytes(header_bytes).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    (n_arrays,) = _U32.unpack(take(_U32.size, "array count"))
    if n_arrays > MAX_ARRAYS:
        raise ProtocolError(
            f"{n_arrays} arrays in one frame exceeds the {MAX_ARRAYS} bound"
        )
    arrays: List[np.ndarray] = []
    for index in range(n_arrays):
        (array_length,) = _U64.unpack(take(_U64.size, f"array {index} length"))
        payload = take(array_length, f"array {index}")
        try:
            arrays.append(repro_io.array_from_npy_bytes(bytes(payload)))
        except Exception as error:
            # Malformed npy or pickle smuggled in.  Deliberately broad: a
            # corrupted npy *header* surfaces from numpy's literal-eval as
            # SyntaxError, not ValueError, and untrusted bytes must never
            # crash the reader with anything but ProtocolError.
            raise ProtocolError(
                f"array {index} is not a valid npy payload: {error}"
            ) from error
    if offset != len(body):
        raise ProtocolError(
            f"frame body has {len(body) - offset} trailing bytes after its "
            "declared contents"
        )
    return header, arrays


def write_frame(stream: BinaryIO, header: Dict[str, object],
                arrays: Sequence[np.ndarray] = (),
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and write one frame to a binary stream, then flush it."""
    if _write_fault_hook is not None and _write_fault_hook(stream, header):
        return
    stream.write(encode_frame(header, arrays, max_bytes=max_bytes))
    stream.flush()


def read_frame(stream: BinaryIO,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[Frame]:
    """Read one frame from a binary stream.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames — the orderly-shutdown signal).  Anything else short of a full,
    valid frame — EOF mid-frame, bad magic, an oversized or garbage length —
    raises :class:`ProtocolError`.  The declared body length is validated
    *before* the body is read, so a corrupt prefix can neither hang the
    reader on a read that will never complete nor allocate unbounded memory.
    """
    prelude = stream.read(len(MAGIC) + _U64.size)
    if prelude == b"":
        return None
    if len(prelude) < len(MAGIC) + _U64.size:
        raise ProtocolError(
            f"stream ended {len(prelude)} bytes into the frame prelude"
        )
    if prelude[: len(MAGIC)] != MAGIC:
        raise ProtocolError(
            f"bad frame magic {prelude[:len(MAGIC)]!r} (expected {MAGIC!r})"
        )
    (body_length,) = _U64.unpack_from(prelude, len(MAGIC))
    if body_length > max_bytes:
        raise ProtocolError(
            f"declared frame body of {body_length} bytes exceeds the "
            f"{max_bytes}-byte bound"
        )
    body = _read_exactly(stream, body_length)
    return _decode_body(memoryview(body))


def _read_exactly(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ProtocolError(
                f"stream ended {n - remaining} bytes into a {n}-byte frame body"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
