"""Micro-batching of concurrent single-row queries.

The HTTP service receives many independent single-row queries at once (one
per connection thread).  Answering each with its own tiny matrix product
wastes the hardware: one stacked ``q x m`` BLAS call is far cheaper than
``q`` separate ``1 x m`` calls.  :class:`MicroBatcher` closes that gap
without changing results:

* the first thread to submit into an empty batch becomes the batch *leader*;
* the leader waits up to ``max_delay`` seconds (or until ``max_batch``
  requests have stacked up) for followers to join;
* the leader runs the whole batch through one callable and distributes the
  per-request results; followers just wait on the batch event.

Under no concurrency the only cost is the leader's bounded wait; under load
the window fills instantly and every BLAS call serves ``max_batch`` queries.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence


class _Batch:
    """One in-flight group of requests sharing a single execution."""

    __slots__ = ("requests", "closed", "done", "results", "error")

    def __init__(self) -> None:
        self.requests: List[object] = []
        self.closed = False
        self.done = threading.Event()
        self.results: Optional[List[object]] = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Stacks concurrent submissions into single calls of a batch function.

    Parameters
    ----------
    run_batch:
        Callable receiving the list of pending requests and returning one
        result per request, in order.  Runs on the leader's thread.  For
        batching to be semantically invisible — the serving layer's
        batch-invariance guarantee — ``run_batch`` over a stack of requests
        must return exactly what it would return for each request alone;
        the engines' row-local scoring and total-order selection provide
        that property for every query operation.
    max_batch:
        Close the batch as soon as this many requests have joined
        (``>= 1``; ``1`` disables stacking).
    max_delay:
        Longest time (seconds, ``>= 0``) the leader waits for followers.
        Keep this at network-jitter scale: it bounds the latency a lone
        request pays.
    """

    def __init__(self, run_batch: Callable[[Sequence[object]], Sequence[object]],
                 max_batch: int = 64, max_delay: float = 0.002):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._condition = threading.Condition()
        self._open_batch: Optional[_Batch] = None
        self.batches_run = 0
        self.requests_served = 0

    def stats(self) -> dict:
        """Consistent snapshot of the batching counters (for ``/healthz``).

        ``mean_batch_size`` is the figure to watch: near 1.0 under load
        means requests are not overlapping inside ``max_delay`` windows and
        the stacking is buying nothing.
        """
        with self._condition:
            batches, requests = self.batches_run, self.requests_served
        return {
            "batches_run": batches,
            "requests_served": requests,
            "mean_batch_size": (requests / batches) if batches else None,
        }

    def submit(self, request: object) -> object:
        """Submit one request; blocks until its result is available.

        The calling thread either becomes the leader of a new batch (and
        runs ``run_batch`` for everyone after the window closes) or joins
        the open batch and waits.  Returns this request's entry of the batch
        result; an exception raised by ``run_batch`` propagates to every
        waiter of that batch.
        """
        with self._condition:
            batch = self._open_batch
            if batch is None or batch.closed:
                batch = self._open_batch = _Batch()
                leader = True
            else:
                leader = False
            index = len(batch.requests)
            batch.requests.append(request)
            if len(batch.requests) >= self.max_batch:
                batch.closed = True
                self._condition.notify_all()

        if leader:
            self._lead(batch)
        else:
            batch.done.wait()

        if batch.error is not None:
            raise batch.error
        return batch.results[index]

    def _lead(self, batch: _Batch) -> None:
        deadline = time.monotonic() + self.max_delay
        with self._condition:
            while not batch.closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            batch.closed = True
            if self._open_batch is batch:
                self._open_batch = None
        try:
            results = list(self._run_batch(batch.requests))
            if len(results) != len(batch.requests):
                raise RuntimeError(
                    f"batch function returned {len(results)} results "
                    f"for {len(batch.requests)} requests"
                )
            batch.results = results
        except BaseException as error:  # propagate to every waiter
            batch.error = error
        finally:
            with self._condition:
                self.batches_run += 1
                self.requests_served += len(batch.requests)
            batch.done.set()
