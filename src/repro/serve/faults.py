"""Deterministic fault injection for the worker serving path.

The fault-tolerance layer (deadlines, retries, breakers, degraded mode) is
only as real as the failures it has been proven against — and a healthy
worker never misbehaves on demand.  This module makes it misbehave:
**fault rules** parsed from the :data:`FAULTS_ENV` environment variable (or
the ``repro serve --inject-faults`` flag, which just sets that variable for
the worker fleet) arm named **fault points** inside the worker process:

``load``
    before the shard archive is loaded — ``exit`` here simulates a corrupt
    shard file and produces a crash loop;
``connect``
    before the worker dials the supervisor's connect-back port — ``stall``
    here simulates a slow accept;
``before_reply``
    after a request is executed, before its reply frame is written —
    ``crash`` / ``stall`` / ``corrupt`` here are the mid-request failures
    the retry-and-restart path must absorb;
``write_frame``
    inside :func:`repro.serve.protocol.write_frame` via the protocol-layer
    hook — ``corrupt`` here garbles any outgoing frame (including the
    hello) at the wire level.

Rule grammar (semicolon-separated, whitespace-insensitive)::

    point=action(param=value,param=value,...)

    before_reply=crash(op=top_k_items,shard=1,after=2,times=1)
    before_reply=stall(seconds=30,op=candidates)
    load=exit(code=3,after=1,times=4)
    connect=stall(seconds=2)
    write_frame=corrupt(times=1)

Actions: ``crash`` (``os._exit``, default code 9), ``exit``
(``os._exit`` with ``code=``, default 1 — spelled differently from
``crash`` because a deliberate exit code and a simulated hard crash read
differently in a spec), ``stall`` (``time.sleep(seconds)``), ``corrupt``
(write garbage bytes instead of the frame).  Selectors: ``op=`` (only
requests of that operation), ``shard=`` (only that worker), ``after=N``
(skip the first N matching hits), ``times=M`` (fire at most M times,
default unlimited).

Everything is in-process and deterministic — no signals, no external chaos
agent — so the chaos tier can assert exact recovery behavior.  The module
is inert unless a spec is present: production code paths call
:meth:`FaultPlan.fire` only through the ``plan`` the worker parsed at
startup, which is ``None`` in normal operation.
"""

from __future__ import annotations

import logging
import os
import re
import time
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional

__all__ = [
    "FAULTS_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
]

#: Environment variable carrying the fault spec into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: Valid fault points (where a rule may arm itself).
POINTS = ("load", "connect", "before_reply", "write_frame")

#: Valid actions (what an armed rule does when it fires).
ACTIONS = ("crash", "exit", "stall", "corrupt")

logger = logging.getLogger(__name__)

_RULE_RE = re.compile(
    r"^\s*(?P<point>[a-z_]+)\s*=\s*(?P<action>[a-z]+)\s*"
    r"(?:\(\s*(?P<params>[^)]*)\s*\))?\s*$"
)


class FaultSpecError(ValueError):
    """A fault spec that cannot be parsed (fail at arm time, not fire time)."""


class FaultInjected(RuntimeError):
    """Raised after a ``corrupt`` fired: the real frame must not be sent."""


@dataclass
class FaultRule:
    """One armed fault: where it fires, what it does, and its selectors."""

    point: str
    action: str
    op: Optional[str] = None
    shard: Optional[int] = None
    after: int = 0
    times: Optional[int] = None
    seconds: float = 1.0
    code: int = 9
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def matches(self, point: str, op: Optional[str],
                shard: Optional[int]) -> bool:
        if self.point != point:
            return False
        if self.op is not None and op != self.op:
            return False
        if self.shard is not None and shard is not None \
                and shard != self.shard:
            return False
        return True

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


def _parse_rule(text: str) -> FaultRule:
    match = _RULE_RE.match(text)
    if match is None:
        raise FaultSpecError(
            f"malformed fault rule {text!r} (expected "
            "'point=action(param=value,...)')"
        )
    point = match.group("point")
    action = match.group("action")
    if point not in POINTS:
        raise FaultSpecError(
            f"unknown fault point {point!r} (expected one of {POINTS})")
    if action not in ACTIONS:
        raise FaultSpecError(
            f"unknown fault action {action!r} (expected one of {ACTIONS})")
    rule = FaultRule(point=point, action=action)
    if action == "exit":
        rule.code = 1
    params = match.group("params") or ""
    for pair in filter(None, (p.strip() for p in params.split(","))):
        key, separator, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if not separator or not value:
            raise FaultSpecError(
                f"malformed fault parameter {pair!r} in rule {text!r}")
        try:
            if key == "op":
                rule.op = value
            elif key == "shard":
                rule.shard = int(value)
            elif key == "after":
                rule.after = int(value)
            elif key == "times":
                rule.times = int(value)
            elif key == "seconds":
                rule.seconds = float(value)
            elif key == "code":
                rule.code = int(value)
            else:
                raise FaultSpecError(
                    f"unknown fault parameter {key!r} in rule {text!r}")
        except ValueError as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError(
                f"invalid value {value!r} for fault parameter {key!r}"
            ) from error
    if rule.after < 0 or (rule.times is not None and rule.times < 1) \
            or rule.seconds < 0:
        raise FaultSpecError(f"out-of-range fault parameter in rule {text!r}")
    return rule


class FaultPlan:
    """Every armed fault rule of one worker process, plus its fire state.

    A plan is bound to the worker's shard index (:meth:`bind`) so
    ``shard=`` selectors resolve locally — the spec itself is shared by the
    whole fleet through one environment variable.
    """

    def __init__(self, rules: List[FaultRule], spec: str = ""):
        self.rules = list(rules)
        self.spec = spec
        self.shard: Optional[int] = None

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        rules = [_parse_rule(part)
                 for part in filter(None, (p.strip()
                                           for p in spec.split(";")))]
        if not rules:
            raise FaultSpecError(f"fault spec {spec!r} contains no rules")
        return cls(rules, spec=spec)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """The armed plan from :data:`FAULTS_ENV`, or ``None`` (the normal,
        inert case).  A malformed spec raises — silently serving without
        the faults a chaos run asked for would fake a green result."""
        spec = (environ if environ is not None else os.environ).get(
            FAULTS_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    def bind(self, shard: int) -> "FaultPlan":
        """Fix the worker's shard index for ``shard=`` selectors."""
        self.shard = int(shard)
        return self

    def fire(self, point: str, op: Optional[str] = None,
             stream: Optional[BinaryIO] = None) -> None:
        """Run every matching armed rule's action at this fault point.

        ``crash``/``exit`` do not return; ``stall`` sleeps; ``corrupt``
        writes garbage to ``stream`` and raises :class:`FaultInjected` so
        the caller skips the real frame.
        """
        for rule in self.rules:
            if not rule.matches(point, op, self.shard):
                continue
            rule.hits += 1
            if rule.hits <= rule.after or rule.exhausted():
                continue
            rule.fired += 1
            self._execute(rule, point, op, stream)

    def _execute(self, rule: FaultRule, point: str, op: Optional[str],
                 stream: Optional[BinaryIO]) -> None:
        logger.warning("fault fired: %s=%s (op=%s shard=%s, firing %d)",
                       point, rule.action, op, self.shard, rule.fired)
        if rule.action in ("crash", "exit"):
            # os._exit, not sys.exit: a crash must not unwind politely
            # through finally blocks — that would close the socket cleanly
            # and understate the failure being simulated.
            os._exit(rule.code)
        if rule.action == "stall":
            time.sleep(rule.seconds)
            return
        if rule.action == "corrupt":
            if stream is not None:
                # A plausible-length garbage frame: bad magic followed by
                # noise, so the reader fails on framing, not on EOF.
                stream.write(b"XBAD" + os.urandom(44))
                stream.flush()
            raise FaultInjected(f"corrupt frame injected at {point}")


def install_protocol_hook(plan: FaultPlan) -> None:
    """Arm the protocol layer's write-side fault point with this plan.

    Worker-process only (the hook is module-global in
    :mod:`repro.serve.protocol`); the supervisor side never installs one.
    """
    from repro.serve import protocol

    def hook(stream: BinaryIO, header: Dict[str, object]) -> bool:
        op = header.get("op")
        try:
            plan.fire("write_frame", op=op if isinstance(op, str) else None,
                      stream=stream)
        except FaultInjected:
            return True  # garbage already written; suppress the real frame
        return False

    protocol.set_write_fault_hook(hook)
