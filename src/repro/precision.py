"""Precision policies: opt-in float32 / mixed-precision execution.

Everything in the reproduction defaults to float64 — byte-identical to the
paper runs — but model memory and BLAS throughput both pay 2x for it.  A
:class:`PrecisionPolicy` names an opt-in alternative:

* ``float64`` — the default; storage and accumulation both in float64.
  Selecting it explicitly is byte-identical to not selecting anything.
* ``float32`` — endpoints stored *and* accumulated in float32: half the
  memory, roughly double the BLAS throughput.
* ``mixed`` — float32 storage with float64 accumulation for the
  reductions that lose the most (gram products, least-squares fold-in):
  the memory win of float32 with most of the summation accuracy of
  float64.

A policy only says *which* dtypes to use; the numerical consequences are
measured and bounded by the error-budget tier (``tests/precision/``),
whose per-operation budgets live in one auditable module
(``tests/precision/budgets.py``).  For the sound interval kernels
(``exact``, ``rump``), low-precision execution additionally applies
directed-rounding-style radius inflation (see
:func:`repro.interval.kernels.inflate_enclosure`) so their results remain
true enclosures — verified by brute force in the same tier, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np


@dataclass(frozen=True)
class PrecisionPolicy:
    """One named precision mode: a storage dtype plus an accumulation dtype.

    ``storage_dtype`` is the dtype of every endpoint array at rest (interval
    matrices, decomposition factors, NPZ archives, protocol frames).
    ``accum_dtype`` is the dtype long reductions run in — blocked gram
    accumulators and the fold-in least squares — before the result is cast
    back to storage.  ``float64`` uses (f64, f64), ``float32`` (f32, f32),
    ``mixed`` (f32, f64).
    """

    name: str
    storage_dtype: np.dtype
    accum_dtype: np.dtype

    @property
    def is_default(self) -> bool:
        """True for the float64 policy (whose execution must stay
        byte-identical to passing no policy at all)."""
        return self.name == "float64"

    @property
    def low_precision(self) -> bool:
        """True when endpoints are stored below float64 (the modes that
        need enclosure inflation on the sound kernels)."""
        return self.storage_dtype != np.dtype(np.float64)

    def __str__(self) -> str:
        return self.name


#: The registered policies, keyed by name (also accepts the storage dtype
#: spellings numpy users expect; see :func:`resolve_precision`).
PRECISION_POLICIES = {
    "float64": PrecisionPolicy("float64", np.dtype(np.float64),
                               np.dtype(np.float64)),
    "float32": PrecisionPolicy("float32", np.dtype(np.float32),
                               np.dtype(np.float32)),
    "mixed": PrecisionPolicy("mixed", np.dtype(np.float32),
                             np.dtype(np.float64)),
}

#: Alternate spellings accepted by :func:`resolve_precision`.
_ALIASES = {
    "f64": "float64", "double": "float64", "fp64": "float64",
    "f32": "float32", "single": "float32", "fp32": "float32",
}

PrecisionLike = Union[None, str, PrecisionPolicy, np.dtype, type]


def resolve_precision(spec: PrecisionLike) -> Optional[PrecisionPolicy]:
    """Resolve a precision spec to a policy; ``None`` stays ``None``.

    ``None`` means "no opt-in": callers must take the exact pre-policy
    code path, which is how the float64 default stays byte-identical.
    Accepts policy names (``"float32"``, ``"mixed"``), common aliases
    (``"f32"``, ``"single"``), numpy dtypes, and policies themselves.
    """
    if spec is None:
        return None
    if isinstance(spec, PrecisionPolicy):
        return spec
    if isinstance(spec, (np.dtype, type)):
        spec = np.dtype(spec).name
    key = str(spec).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return PRECISION_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown precision mode {spec!r}; available: "
            f"{', '.join(sorted(PRECISION_POLICIES))} "
            f"(aliases: {', '.join(sorted(_ALIASES))})"
        ) from None


def available_precisions() -> list:
    """Sorted list of the policy names (for CLI choices)."""
    return sorted(PRECISION_POLICIES)


def dtype_name(dtype) -> str:
    """Canonical name of an endpoint dtype (``"float32"`` / ``"float64"``)."""
    return np.dtype(dtype).name
