"""Probabilistic matrix factorization models: PMF, I-PMF and AI-PMF.

* :class:`PMF` — classic probabilistic matrix factorization (Salakhutdinov &
  Mnih) fit by mini-batch gradient descent on the regularized squared loss.
* :class:`IPMF` — the interval-valued extension of Shen et al. used as a
  baseline in the paper (Section 5): a shared scalar ``U`` with separate
  ``V_lo`` / ``V_hi`` factors for the interval endpoints.
* :class:`AIPMF` — the paper's contribution: I-PMF with the ILSA latent
  alignment applied to ``(V_lo, V_hi)`` during training (supplementary
  Algorithm 15), so the two endpoint latent spaces describe the same concepts.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.ilsa import ilsa
from repro.core.result import FactorizationHistory
from repro.interval.array import IntervalMatrix


def _observed_mask(matrix: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
    """Default observation mask: non-zero cells when no explicit mask is given."""
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != matrix.shape:
            raise ValueError("mask shape must match the rating matrix")
        return mask
    return matrix != 0.0


class PMF:
    """Probabilistic matrix factorization via mini-batch gradient descent.

    Parameters
    ----------
    rank:
        Latent dimensionality.
    learning_rate:
        Gradient-descent step size.
    reg_u, reg_v:
        L2 regularization weights (``lambda_U``, ``lambda_V`` in the paper).
    epochs:
        Number of passes over the observed entries.
    batch_size:
        Number of rows per mini-batch (``None`` = full batch).
    seed:
        Seed for factor initialization and batch shuffling.
    center:
        When True (default), the global mean of the observed training ratings
        is subtracted before fitting and added back at prediction time — the
        standard bias handling for star-rating matrices.
    """

    def __init__(self, rank: int, learning_rate: float = 0.01, reg_u: float = 0.05,
                 reg_v: float = 0.05, epochs: int = 50, batch_size: Optional[int] = None,
                 seed: Optional[int] = None, center: bool = True):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.rank = rank
        self.learning_rate = learning_rate
        self.reg_u = reg_u
        self.reg_v = reg_v
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.center = center
        self.global_mean = 0.0
        self.u: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None
        self.history = FactorizationHistory()

    # ------------------------------------------------------------------ #
    def _initialize(self, n: int, m: int, rng: np.random.Generator) -> None:
        scale = 0.1
        self.u = rng.normal(scale=scale, size=(n, self.rank))
        self.v = rng.normal(scale=scale, size=(m, self.rank))

    def _batches(self, n: int, rng: np.random.Generator):
        indices = rng.permutation(n)
        size = self.batch_size or n
        for start in range(0, n, size):
            yield indices[start:start + size]

    def fit(self, matrix: np.ndarray, mask: Optional[np.ndarray] = None) -> "PMF":
        """Fit the model to the observed entries of a scalar rating matrix."""
        matrix = np.asarray(matrix, dtype=float)
        observed = _observed_mask(matrix, mask)
        if self.center and observed.any():
            self.global_mean = float(matrix[observed].mean())
        matrix = np.where(observed, matrix - self.global_mean, 0.0)
        n, m = matrix.shape
        rng = np.random.default_rng(self.seed)
        self._initialize(n, m, rng)

        for _ in range(self.epochs):
            for rows in self._batches(n, rng):
                block = matrix[rows]
                block_mask = observed[rows]
                error = (self.u[rows] @ self.v.T - block) * block_mask
                grad_u = error @ self.v + self.reg_u * self.u[rows]
                grad_v = error.T @ self.u[rows] + self.reg_v * self.v
                self.u[rows] -= self.learning_rate * grad_u
                self.v -= self.learning_rate * grad_v
            self.history.record(self._loss(matrix, observed))
        return self

    def _loss(self, matrix: np.ndarray, observed: np.ndarray) -> float:
        error = (self.u @ self.v.T - matrix) * observed
        return float(
            np.sum(error**2)
            + self.reg_u * np.sum(self.u**2)
            + self.reg_v * np.sum(self.v**2)
        )

    def predict(self) -> np.ndarray:
        """Full predicted rating matrix ``U V^T`` (plus the global mean, if centered)."""
        self._check_fitted()
        return self.u @ self.v.T + self.global_mean

    def _check_fitted(self) -> None:
        if self.u is None or self.v is None:
            raise RuntimeError("call fit() before predicting")


class IPMF:
    """Interval-valued PMF (I-PMF): shared scalar ``U``, interval factor ``V``.

    Minimizes ``||M_lo - U V_lo^T||^2 + ||M_hi - U V_hi^T||^2`` (on observed
    cells) plus L2 regularization, by mini-batch gradient descent with the
    partial derivatives given in Section 5 of the paper.
    """

    align_during_training = False
    method_name = "I-PMF"

    def __init__(self, rank: int, learning_rate: float = 0.01, reg_u: float = 0.05,
                 reg_v: float = 0.05, epochs: int = 50, batch_size: Optional[int] = None,
                 seed: Optional[int] = None, align_method: str = "hungarian",
                 center: bool = True):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.rank = rank
        self.learning_rate = learning_rate
        self.reg_u = reg_u
        self.reg_v = reg_v
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.align_method = align_method
        self.center = center
        self.global_mean = 0.0
        self.u: Optional[np.ndarray] = None
        self.v_lower: Optional[np.ndarray] = None
        self.v_upper: Optional[np.ndarray] = None
        self.history = FactorizationHistory()

    # ------------------------------------------------------------------ #
    def _initialize(self, n: int, m: int, rng: np.random.Generator) -> None:
        scale = 0.1
        self.u = rng.normal(scale=scale, size=(n, self.rank))
        self.v_lower = rng.normal(scale=scale, size=(m, self.rank))
        self.v_upper = rng.normal(scale=scale, size=(m, self.rank))

    def _batches(self, n: int, rng: np.random.Generator):
        indices = rng.permutation(n)
        size = self.batch_size or n
        for start in range(0, n, size):
            yield indices[start:start + size]

    def fit(self, matrix: Union[IntervalMatrix, np.ndarray],
            mask: Optional[np.ndarray] = None) -> "IPMF":
        """Fit the model to the observed entries of an interval rating matrix."""
        matrix = IntervalMatrix.coerce(matrix)
        observed = _observed_mask(matrix.midpoint(), mask)
        if self.center and observed.any():
            self.global_mean = float(matrix.midpoint()[observed].mean())
        lower = np.where(observed, matrix.lower - self.global_mean, 0.0)
        upper = np.where(observed, matrix.upper - self.global_mean, 0.0)
        n, m = matrix.shape
        rng = np.random.default_rng(self.seed)
        self._initialize(n, m, rng)

        for _ in range(self.epochs):
            for rows in self._batches(n, rng):
                row_mask = observed[rows]
                error_lo = (self.u[rows] @ self.v_lower.T - lower[rows]) * row_mask
                error_hi = (self.u[rows] @ self.v_upper.T - upper[rows]) * row_mask

                grad_u = error_lo @ self.v_lower + error_hi @ self.v_upper \
                    + self.reg_u * self.u[rows]
                grad_v_lo = error_lo.T @ self.u[rows] + self.reg_v * self.v_lower
                grad_v_hi = error_hi.T @ self.u[rows] + self.reg_v * self.v_upper

                self.u[rows] -= self.learning_rate * grad_u
                self.v_lower -= self.learning_rate * grad_v_lo
                self.v_upper -= self.learning_rate * grad_v_hi

            if self.align_during_training:
                self._align_latent_factors()
            self.history.record(self._loss(lower, upper, observed))

        if self.align_during_training:
            # Final alignment so the reported factors are semantically paired
            # (supplementary Algorithm 15 performs this step after training).
            self._align_latent_factors()
        return self

    def _align_latent_factors(self) -> None:
        alignment = ilsa(self.v_lower, self.v_upper, method=self.align_method)
        self.v_lower = alignment.apply_to_columns(self.v_lower, flip_signs=True)

    def _loss(self, lower: np.ndarray, upper: np.ndarray, observed: np.ndarray) -> float:
        error_lo = (self.u @ self.v_lower.T - lower) * observed
        error_hi = (self.u @ self.v_upper.T - upper) * observed
        return float(
            np.sum(error_lo**2) + np.sum(error_hi**2)
            + self.reg_u * np.sum(self.u**2)
            + self.reg_v * (np.sum(self.v_lower**2) + np.sum(self.v_upper**2))
        )

    # ------------------------------------------------------------------ #
    def predict_interval(self) -> IntervalMatrix:
        """Interval predictions ``[U V_lo^T, U V_hi^T]`` with ordering fixed."""
        self._check_fitted()
        lower = self.u @ self.v_lower.T + self.global_mean
        upper = self.u @ self.v_upper.T + self.global_mean
        return IntervalMatrix(np.minimum(lower, upper), np.maximum(lower, upper))

    def predict(self) -> np.ndarray:
        """Scalar (midpoint) predictions used for rating prediction RMSE."""
        return self.predict_interval().midpoint()

    def _check_fitted(self) -> None:
        if self.u is None or self.v_lower is None or self.v_upper is None:
            raise RuntimeError("call fit() before predicting")


class AIPMF(IPMF):
    """Aligned interval PMF (AI-PMF): I-PMF + per-epoch ILSA alignment.

    This is the paper's proposed probabilistic model (Section 5).  The latent
    min/max factors are re-paired and sign-corrected with ILSA as training
    proceeds, which the paper shows improves rating-prediction accuracy over
    plain I-PMF.
    """

    align_during_training = True
    method_name = "AI-PMF"
