"""Unified registry of interval-valued factorization algorithms.

Every algorithm family in the code base — the ISVD0..ISVD4 strategies, the
NMF / I-NMF and PMF / I-PMF / AI-PMF iterative models, the LP eigen-bound
competitor and the interval PCA baseline — is reachable here through one
string key and one call shape::

    from repro.core import registry
    decomposition = registry.get("isvd4").fit(matrix, rank, target="b")

The registry is the architectural seam between the algorithms and everything
that drives them (the experiment engine, the CLI, the evaluation entry
points): callers never special-case an algorithm family again, and new
backends plug in with a single :func:`register` call.

Each entry is a :class:`FactorizerInfo` carrying capability metadata next to
the fit callable:

* ``targets`` — which decomposition targets (a/b/c, Section 3.4) the method
  can emit, and ``default_target``, the one it is usually run with;
* ``scalar_only`` — True when every factor the method produces is scalar
  (ISVD0, NMF, PMF), i.e. interval structure of the input is collapsed;
* ``stochastic`` — True when the result depends on a random initialization
  seed (the iterative models); deterministic methods ignore ``seed``;
* ``requires_nonnegative`` — True for the NMF family, which rejects inputs
  with negative entries;
* ``kernel_aware`` — True when the method routes its interval products
  through the pluggable kernel registry (:mod:`repro.interval.kernels`) and
  therefore honours a ``kernel=`` fit option (ISVD2/3/4, whose gram and
  factor-recovery steps are interval products);
* ``dtype_aware`` — True when the method honours a ``dtype=`` fit option
  selecting a precision policy (:mod:`repro.precision`): the ISVD family,
  which can store endpoints in float32 (optionally with float64
  accumulation) instead of the float64 default;
* ``cost`` — coarse cost class: ``"closed-form"`` (a fixed number of dense
  linear-algebra kernels), ``"iterative"`` (gradient / multiplicative update
  loops) or ``"expensive"`` (methods the paper reports as impractically slow,
  kept for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

try:  # Protocol is purely documentation; tolerate very old typing modules.
    from typing import Protocol
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

from repro.core.inmf import INMF, NMF
from repro.core.ipmf import AIPMF, IPMF, PMF
from repro.core.isvd import isvd
from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.sparse import as_interval_operand, is_sparse_interval


class RegistryError(ValueError):
    """Raised for unknown method keys or unsupported method/target combinations."""


class IntervalFactorizer(Protocol):
    """Call shape every registered fit function satisfies."""

    def __call__(
        self,
        matrix: IntervalMatrix,
        rank: int,
        target: str,
        seed: Optional[int] = None,
        **options: object,
    ) -> IntervalDecomposition:  # pragma: no cover - protocol definition
        ...


@dataclass(frozen=True)
class FactorizerInfo:
    """One registered factorization method: capability metadata + fit callable."""

    key: str
    display_name: str
    targets: Tuple[str, ...]
    default_target: str
    cost: str
    summary: str
    scalar_only: bool = False
    stochastic: bool = False
    requires_nonnegative: bool = False
    kernel_aware: bool = False
    sparse_aware: bool = False
    dtype_aware: bool = False
    _fit: Callable[..., IntervalDecomposition] = field(repr=False, default=None)

    def supports_target(self, target: Union[str, DecompositionTarget]) -> bool:
        """True when the method can emit the given decomposition target."""
        return DecompositionTarget.coerce(target).value in self.targets

    def fit(
        self,
        matrix: Union[IntervalMatrix, np.ndarray],
        rank: int,
        target: Union[str, DecompositionTarget, None] = None,
        seed: Optional[int] = None,
        **options: object,
    ) -> IntervalDecomposition:
        """Run the factorization and return an :class:`IntervalDecomposition`.

        ``target`` defaults to the method's preferred target; requesting one
        the method cannot emit raises :class:`RegistryError`.  ``seed`` feeds
        the random initialization of stochastic methods and is ignored by
        deterministic ones, so the experiment engine can pass it uniformly.

        A :class:`~repro.interval.sparse.SparseIntervalMatrix` passes through
        untouched to ``sparse_aware`` methods (the gram-based ISVD family,
        which executes it in sparse BLAS) and is densified for every other
        method — their update rules are inherently dense, so the conversion
        only moves the memory cost to the call boundary where it is visible.
        """
        if target is None:
            target = self.default_target
        target = DecompositionTarget.coerce(target).value
        if target not in self.targets:
            raise RegistryError(
                f"method {self.key!r} supports decomposition targets "
                f"{'/'.join(self.targets)}, not {target!r}"
            )
        matrix = as_interval_operand(matrix)
        if is_sparse_interval(matrix) and not self.sparse_aware:
            matrix = matrix.to_dense()
        return self._fit(matrix, rank, target=target, seed=seed, **options)


_REGISTRY: Dict[str, FactorizerInfo] = {}


def register(info: FactorizerInfo) -> FactorizerInfo:
    """Add a method to the registry (last registration of a key wins)."""
    if not info.targets or info.default_target not in info.targets:
        raise RegistryError(
            f"method {info.key!r}: default target {info.default_target!r} "
            f"must be one of its supported targets {info.targets}"
        )
    _REGISTRY[info.key] = info
    return info


def get(key: str) -> FactorizerInfo:
    """Look up a method by key; raises :class:`RegistryError` with the valid keys."""
    try:
        return _REGISTRY[str(key).lower()]
    except KeyError:
        raise RegistryError(
            f"unknown factorization method {key!r}; available: {', '.join(available())}"
        ) from None


def available() -> List[str]:
    """Sorted list of registered method keys."""
    return sorted(_REGISTRY)


def infos() -> List[FactorizerInfo]:
    """All registered methods, sorted by key."""
    return [_REGISTRY[key] for key in available()]


def decompose(
    matrix: Union[IntervalMatrix, np.ndarray],
    method: str,
    rank: int,
    target: Union[str, DecompositionTarget, None] = None,
    seed: Optional[int] = None,
    **options: object,
) -> IntervalDecomposition:
    """Convenience one-shot: ``get(method).fit(...)``."""
    return get(method).fit(matrix, rank, target=target, seed=seed, **options)


# --------------------------------------------------------------------------- #
# ISVD family (deterministic, closed form)
# --------------------------------------------------------------------------- #
def _isvd_fit(method: str) -> Callable[..., IntervalDecomposition]:
    def fit(matrix, rank, target, seed=None, **options):
        return isvd(matrix, rank, method=method, target=target, **options)

    return fit


register(FactorizerInfo(
    key="isvd0", display_name="ISVD0", targets=("c",), default_target="c",
    cost="closed-form", scalar_only=True, dtype_aware=True,
    summary="SVD of the midpoint matrix (average and decompose, Alg. 7)",
    _fit=_isvd_fit("isvd0"),
))
register(FactorizerInfo(
    key="isvd1", display_name="ISVD1", targets=("a", "b", "c"), default_target="b",
    cost="closed-form", dtype_aware=True,
    summary="endpoint SVDs aligned with ILSA (decompose and align, Alg. 8)",
    _fit=_isvd_fit("isvd1"),
))
register(FactorizerInfo(
    key="isvd2", display_name="ISVD2", targets=("a", "b", "c"), default_target="b",
    cost="closed-form", kernel_aware=True, sparse_aware=True, dtype_aware=True,
    summary="Gram eigen-decomposition, solve U, then align (Alg. 9)",
    _fit=_isvd_fit("isvd2"),
))
register(FactorizerInfo(
    key="isvd3", display_name="ISVD3", targets=("a", "b", "c"), default_target="b",
    cost="closed-form", kernel_aware=True, sparse_aware=True, dtype_aware=True,
    summary="align first, then solve U with interval algebra (Alg. 10)",
    _fit=_isvd_fit("isvd3"),
))
register(FactorizerInfo(
    key="isvd4", display_name="ISVD4", targets=("a", "b", "c"), default_target="b",
    cost="closed-form", kernel_aware=True, sparse_aware=True, dtype_aware=True,
    summary="ISVD3 plus V recomputation; the paper's best strategy (Alg. 11)",
    _fit=_isvd_fit("isvd4"),
))


# --------------------------------------------------------------------------- #
# NMF family (stochastic, non-negative, iterative)
# --------------------------------------------------------------------------- #
def _fit_nmf(matrix, rank, target, seed=None, max_iter=200, tol=1e-6, **_):
    model = NMF(rank=rank, max_iter=max_iter, tol=tol, seed=seed).fit(matrix)
    return IntervalDecomposition(
        u=model.u, sigma=np.eye(rank), v=model.v,
        target=target, method="NMF", rank=rank,
        metadata={"final_loss": model.history.final_loss,
                  "epochs": model.history.epochs},
    )


def _fit_inmf(matrix, rank, target, seed=None, max_iter=200, tol=1e-6, **_):
    model = INMF(rank=rank, max_iter=max_iter, tol=tol, seed=seed).fit(matrix)
    v = IntervalMatrix(
        np.minimum(model.v_lower, model.v_upper),
        np.maximum(model.v_lower, model.v_upper),
    )
    return IntervalDecomposition(
        u=model.u, sigma=np.eye(rank), v=v,
        target=target, method="I-NMF", rank=rank,
        metadata={"final_loss": model.history.final_loss,
                  "epochs": model.history.epochs},
    )


register(FactorizerInfo(
    key="nmf", display_name="NMF", targets=("c",), default_target="c",
    cost="iterative", scalar_only=True, stochastic=True, requires_nonnegative=True,
    summary="Lee-Seung multiplicative updates on the midpoint matrix",
    _fit=_fit_nmf,
))
register(FactorizerInfo(
    key="inmf", display_name="I-NMF", targets=("a",), default_target="a",
    cost="iterative", stochastic=True, requires_nonnegative=True,
    summary="interval NMF: shared scalar U, interval non-negative V",
    _fit=_fit_inmf,
))


# --------------------------------------------------------------------------- #
# PMF family (stochastic, iterative)
# --------------------------------------------------------------------------- #
def _pmf_kwargs(rank, seed, options):
    kwargs = dict(rank=rank, seed=seed)
    for name in ("learning_rate", "reg_u", "reg_v", "epochs", "batch_size", "center"):
        if name in options:
            kwargs[name] = options[name]
    return kwargs


def _fit_pmf(matrix, rank, target, seed=None, mask=None, **options):
    model = PMF(**_pmf_kwargs(rank, seed, options))
    model.fit(matrix.midpoint(), mask=mask)
    return IntervalDecomposition(
        u=model.u, sigma=np.eye(rank), v=model.v,
        target=target, method="PMF", rank=rank,
        metadata={"global_mean": model.global_mean,
                  "final_loss": model.history.final_loss},
    )


def _fit_pmf_interval(cls, matrix, rank, target, seed, mask, options):
    model = cls(**_pmf_kwargs(rank, seed, options))
    model.fit(matrix, mask=mask)
    v = IntervalMatrix(
        np.minimum(model.v_lower, model.v_upper),
        np.maximum(model.v_lower, model.v_upper),
    )
    return IntervalDecomposition(
        u=model.u, sigma=np.eye(rank), v=v,
        target=target, method=cls.method_name, rank=rank,
        metadata={"global_mean": model.global_mean,
                  "final_loss": model.history.final_loss},
    )


def _fit_ipmf(matrix, rank, target, seed=None, mask=None, **options):
    return _fit_pmf_interval(IPMF, matrix, rank, target, seed, mask, options)


def _fit_aipmf(matrix, rank, target, seed=None, mask=None, **options):
    return _fit_pmf_interval(AIPMF, matrix, rank, target, seed, mask, options)


register(FactorizerInfo(
    key="pmf", display_name="PMF", targets=("c",), default_target="c",
    cost="iterative", scalar_only=True, stochastic=True,
    summary="probabilistic matrix factorization of the midpoint ratings",
    _fit=_fit_pmf,
))
register(FactorizerInfo(
    key="ipmf", display_name="I-PMF", targets=("a",), default_target="a",
    cost="iterative", stochastic=True,
    summary="interval PMF: shared scalar U, interval factor V",
    _fit=_fit_ipmf,
))
register(FactorizerInfo(
    key="aipmf", display_name="AI-PMF", targets=("a",), default_target="a",
    cost="iterative", stochastic=True,
    summary="the paper's aligned interval PMF (I-PMF + ILSA, Alg. 15)",
    _fit=_fit_aipmf,
))


# --------------------------------------------------------------------------- #
# Competitors and baselines (imported lazily: LP pulls in scipy)
# --------------------------------------------------------------------------- #
def _fit_lp(matrix, rank, target, seed=None, mode="perturbation", **_):
    from repro.baselines.lp_eig import lp_isvd

    return lp_isvd(matrix, rank, target=target, mode=mode)


def _fit_interval_pca(matrix, rank, target, seed=None, **_):
    from repro.baselines.interval_pca import CentersPCA

    if rank < 1:
        raise RegistryError(f"interval-pca requires rank >= 1, got {rank}")
    # PCA reconstructs the *centered* matrix; the feature means are folded back
    # in as a constant component so U Sigma V^T approximates the matrix itself.
    # The mean component counts toward the requested rank (like the leading
    # direction of an uncentered SVD), so the decomposition — and the feature
    # width other methods are compared against — is exactly ``rank``.
    n = matrix.shape[0]
    n_components = rank - 1
    if n_components == 0:
        mean = matrix.midpoint().mean(axis=0)
        score_lower = score_upper = np.empty((n, 0))
        components = np.empty((0, matrix.shape[1]))
        explained_variance = np.empty(0)
    else:
        model = CentersPCA(n_components=n_components).fit(matrix)
        components = model.components_
        mean = model.mean_
        scores = model.transform(matrix)
        score_lower, score_upper = scores.lower, scores.upper
        explained_variance = model.explained_variance_
    k = components.shape[0]
    u = IntervalMatrix(
        np.hstack([score_lower, np.ones((n, 1))]),
        np.hstack([score_upper, np.ones((n, 1))]),
    )
    v = np.vstack([components, mean[np.newaxis, :]]).T
    return IntervalDecomposition(
        u=u, sigma=np.eye(k + 1), v=v,
        target=target, method="IntervalPCA", rank=k + 1,
        metadata={"n_components": k, "explained_variance": explained_variance},
    )


register(FactorizerInfo(
    key="lp", display_name="LP", targets=("a", "b", "c"), default_target="b",
    cost="expensive",
    summary="LP / perturbation eigen-bound competitor (Deif 1991)",
    _fit=_fit_lp,
))
register(FactorizerInfo(
    key="interval-pca", display_name="IntervalPCA", targets=("a",), default_target="a",
    cost="closed-form",
    summary="centers PCA of the midpoints with interval-valued projections",
    _fit=_fit_interval_pca,
))
