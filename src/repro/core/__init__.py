"""Core contribution of the paper: interval-valued matrix factorization.

The public entry points are:

* :func:`repro.core.isvd.isvd` / the :class:`repro.core.isvd.ISVDMethod` enum —
  the ISVD0..ISVD4 family of interval singular value decompositions.
* :func:`repro.core.ilsa.ilsa` — interval-valued latent semantic alignment.
* :class:`repro.core.ipmf.PMF` / :class:`repro.core.ipmf.IPMF` /
  :class:`repro.core.ipmf.AIPMF` — probabilistic factorization models.
* :class:`repro.core.inmf.NMF` / :class:`repro.core.inmf.INMF` — the
  non-negative factorization baselines.
* :func:`repro.core.reconstruct.reconstruct` and
  :func:`repro.core.accuracy.harmonic_mean_accuracy` — reconstruction and the
  paper's accuracy measure (Definition 5).
"""

from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.core.ilsa import AlignmentResult, ilsa
from repro.core.isvd import ISVDMethod, isvd
from repro.core.reconstruct import reconstruct
from repro.core.accuracy import (
    harmonic_mean_accuracy,
    reconstruction_accuracy,
    relative_error,
)
from repro.core.inmf import NMF, INMF, AINMF
from repro.core.ipmf import PMF, IPMF, AIPMF
from repro.core import registry

__all__ = [
    "registry",
    "DecompositionTarget",
    "IntervalDecomposition",
    "AlignmentResult",
    "ilsa",
    "ISVDMethod",
    "isvd",
    "reconstruct",
    "harmonic_mean_accuracy",
    "reconstruction_accuracy",
    "relative_error",
    "NMF",
    "INMF",
    "AINMF",
    "PMF",
    "IPMF",
    "AIPMF",
]
