"""Non-negative matrix factorization baselines: NMF and I-NMF.

NMF (Lee & Seung multiplicative updates) and its interval-valued extension
I-NMF (Shen et al., cited by the paper in Section 2.2.2) are the competitors
used in the face-analysis experiments (Figure 8).  I-NMF factorizes the
interval matrix into a *scalar* non-negative ``U`` and an *interval* non-negative
``V = [V_lo, V_hi]`` by minimizing::

    L = ||M_lo - U V_lo^T||_F^2  +  ||M_hi - U V_hi^T||_F^2
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.result import FactorizationHistory
from repro.interval.array import IntervalMatrix

_EPS = 1e-12


class NMF:
    """Classic non-negative matrix factorization with multiplicative updates.

    Parameters
    ----------
    rank:
        Number of latent components.
    max_iter:
        Number of multiplicative update sweeps.
    tol:
        Relative loss-improvement threshold for early stopping.
    seed:
        Seed for the random non-negative initialization.
    """

    def __init__(self, rank: int, max_iter: int = 200, tol: float = 1e-6,
                 seed: Optional[int] = None):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.u: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None
        self.history = FactorizationHistory()

    def _initialize(self, n: int, m: int) -> None:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(self.rank)
        self.u = rng.uniform(_EPS, scale, size=(n, self.rank))
        self.v = rng.uniform(_EPS, scale, size=(m, self.rank))

    def fit(self, matrix: Union[np.ndarray, IntervalMatrix]) -> "NMF":
        """Fit the factorization to a non-negative scalar matrix.

        Interval inputs are collapsed to their midpoint, which is how the paper
        applies plain NMF to interval-valued face data.
        """
        if isinstance(matrix, IntervalMatrix):
            matrix = matrix.midpoint()
        matrix = np.asarray(matrix, dtype=float)
        if (matrix < 0).any():
            raise ValueError("NMF requires a non-negative input matrix")
        n, m = matrix.shape
        self._initialize(n, m)
        previous_loss = np.inf
        for _ in range(self.max_iter):
            self.u *= (matrix @ self.v) / (self.u @ self.v.T @ self.v + _EPS)
            self.v *= (matrix.T @ self.u) / (self.v @ self.u.T @ self.u + _EPS)
            loss = float(np.linalg.norm(matrix - self.u @ self.v.T) ** 2)
            self.history.record(loss)
            if np.isfinite(previous_loss) and previous_loss - loss <= self.tol * max(previous_loss, _EPS):
                break
            previous_loss = loss
        return self

    def reconstruct(self) -> np.ndarray:
        """Return the low-rank approximation ``U V^T``."""
        self._check_fitted()
        return self.u @ self.v.T

    def features(self) -> np.ndarray:
        """Row features (the scalar ``U`` factor) used for classification."""
        self._check_fitted()
        return self.u.copy()

    def _check_fitted(self) -> None:
        if self.u is None or self.v is None:
            raise RuntimeError("call fit() before using the factorization")


class INMF:
    """Interval-valued NMF (I-NMF): scalar ``U``, interval ``V``.

    The ``U`` update couples the lower and upper reconstructions (both terms of
    the loss involve ``U``), while each of ``V_lo`` / ``V_hi`` is updated
    against its own endpoint matrix, following the update rules reported in the
    paper's Section 2.2.2.
    """

    def __init__(self, rank: int, max_iter: int = 200, tol: float = 1e-6,
                 seed: Optional[int] = None):
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.u: Optional[np.ndarray] = None
        self.v_lower: Optional[np.ndarray] = None
        self.v_upper: Optional[np.ndarray] = None
        self.history = FactorizationHistory()

    def _initialize(self, n: int, m: int) -> None:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(self.rank)
        self.u = rng.uniform(_EPS, scale, size=(n, self.rank))
        self.v_lower = rng.uniform(_EPS, scale, size=(m, self.rank))
        self.v_upper = self.v_lower + rng.uniform(0.0, scale * 0.1, size=(m, self.rank))

    def fit(self, matrix: Union[np.ndarray, IntervalMatrix]) -> "INMF":
        """Fit to a non-negative interval matrix (scalars become degenerate intervals)."""
        matrix = IntervalMatrix.coerce(matrix)
        if (matrix.lower < 0).any():
            raise ValueError("I-NMF requires a non-negative input matrix")
        lower, upper = matrix.lower, matrix.upper
        n, m = matrix.shape
        self._initialize(n, m)

        previous_loss = np.inf
        for _ in range(self.max_iter):
            numerator = lower @ self.v_lower + upper @ self.v_upper
            denominator = self.u @ (
                self.v_lower.T @ self.v_lower + self.v_upper.T @ self.v_upper
            )
            self.u *= numerator / (denominator + _EPS)

            self.v_lower *= (lower.T @ self.u) / (self.v_lower @ self.u.T @ self.u + _EPS)
            self.v_upper *= (upper.T @ self.u) / (self.v_upper @ self.u.T @ self.u + _EPS)

            loss = float(
                np.linalg.norm(lower - self.u @ self.v_lower.T) ** 2
                + np.linalg.norm(upper - self.u @ self.v_upper.T) ** 2
            )
            self.history.record(loss)
            if np.isfinite(previous_loss) and previous_loss - loss <= self.tol * max(previous_loss, _EPS):
                break
            previous_loss = loss
        return self

    def reconstruct(self) -> IntervalMatrix:
        """Interval reconstruction ``[U V_lo^T, U V_hi^T]`` with ordering fixed."""
        self._check_fitted()
        lower = self.u @ self.v_lower.T
        upper = self.u @ self.v_upper.T
        return IntervalMatrix(
            np.minimum(lower, upper), np.maximum(lower, upper)
        )

    def features(self) -> np.ndarray:
        """Row features (the scalar ``U`` factor) used for classification."""
        self._check_fitted()
        return self.u.copy()

    def _check_fitted(self) -> None:
        if self.u is None or self.v_lower is None or self.v_upper is None:
            raise RuntimeError("call fit() before using the factorization")


class AINMF(INMF):
    """Aligned interval NMF (AI-NMF): I-NMF + ILSA latent alignment.

    This is the NMF-side analogue of the paper's AI-PMF extension (Section 5):
    after the multiplicative updates converge, the latent columns of ``V_lo``
    are re-paired with the columns of ``V_hi`` using ILSA so both endpoint
    factor matrices describe the same latent concepts.  Because all factors are
    non-negative, matched cosines are never negative and the alignment is a
    pure permutation (no sign flips are applied).

    The paper leaves this combination as an unexplored variant; it is included
    here as an optional extension and exercised by the ablation benchmarks.
    """

    def __init__(self, rank: int, max_iter: int = 200, tol: float = 1e-6,
                 seed: Optional[int] = None, align_every: int = 10,
                 align_method: str = "hungarian"):
        super().__init__(rank=rank, max_iter=max_iter, tol=tol, seed=seed)
        if align_every < 1:
            raise ValueError("align_every must be >= 1")
        self.align_every = align_every
        self.align_method = align_method

    def _align(self) -> None:
        from repro.core.ilsa import ilsa

        alignment = ilsa(self.v_lower, self.v_upper, method=self.align_method)
        self.v_lower = alignment.apply_to_columns(self.v_lower, flip_signs=False)

    def fit(self, matrix: Union[np.ndarray, IntervalMatrix]) -> "AINMF":
        """Fit exactly like I-NMF, aligning the latent factors periodically."""
        matrix = IntervalMatrix.coerce(matrix)
        if (matrix.lower < 0).any():
            raise ValueError("AI-NMF requires a non-negative input matrix")
        lower, upper = matrix.lower, matrix.upper
        n, m = matrix.shape
        self._initialize(n, m)

        previous_loss = np.inf
        for iteration in range(self.max_iter):
            numerator = lower @ self.v_lower + upper @ self.v_upper
            denominator = self.u @ (
                self.v_lower.T @ self.v_lower + self.v_upper.T @ self.v_upper
            )
            self.u *= numerator / (denominator + _EPS)

            self.v_lower *= (lower.T @ self.u) / (self.v_lower @ self.u.T @ self.u + _EPS)
            self.v_upper *= (upper.T @ self.u) / (self.v_upper @ self.u.T @ self.u + _EPS)

            if (iteration + 1) % self.align_every == 0:
                self._align()

            loss = float(
                np.linalg.norm(lower - self.u @ self.v_lower.T) ** 2
                + np.linalg.norm(upper - self.u @ self.v_upper.T) ** 2
            )
            self.history.record(loss)
            if np.isfinite(previous_loss) and previous_loss - loss <= self.tol * max(previous_loss, _EPS):
                break
            previous_loss = loss

        self._align()
        return self
