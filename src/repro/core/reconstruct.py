"""Reconstruction of (approximate) interval matrices from decompositions.

Implements the supplementary Algorithms 12–14: depending on the decomposition
target, the reconstruction ``M~ = U Sigma V^T`` is carried out with interval
matrix algebra (target A), with two scalar products sharing the scalar factors
(target B), or as an ordinary scalar product (target C).  Targets A and B yield
an interval matrix; target C yields a scalar matrix wrapped as degenerate
intervals so that accuracy evaluation is uniform across targets.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike
from repro.interval.linalg import average_replacement_matrix, interval_matmul


def _as_interval(matrix: Union[np.ndarray, IntervalMatrix]) -> IntervalMatrix:
    if isinstance(matrix, IntervalMatrix):
        return matrix
    return IntervalMatrix.from_scalar(np.asarray(matrix, dtype=float))


def reconstruct_target_a(decomposition: IntervalDecomposition,
                         kernel: KernelLike = None) -> IntervalMatrix:
    """Interval reconstruction ``U (x) Sigma (x) V^T`` with interval algebra (Alg. 12).

    ``kernel`` selects the interval-product kernel
    (:mod:`repro.interval.kernels`); ``None`` keeps the paper-faithful
    ``endpoint4`` default.
    """
    u = _as_interval(decomposition.u)
    sigma = _as_interval(decomposition.sigma)
    v_t = _as_interval(decomposition.v).T
    partial = interval_matmul(u, sigma, kernel=kernel)
    return interval_matmul(partial, v_t, kernel=kernel)


def reconstruct_target_b(decomposition: IntervalDecomposition) -> IntervalMatrix:
    """Reconstruction with scalar factors and an interval core (Alg. 13).

    The minimum and maximum reconstructions use the same scalar U and V but the
    lower/upper core respectively; misordered entries (possible because U and V
    may contain negative values) are corrected by average replacement.
    """
    u = np.asarray(decomposition.u_scalar(), dtype=float)
    v_t = np.asarray(decomposition.v_scalar(), dtype=float).T
    sigma = decomposition.sigma
    if isinstance(sigma, IntervalMatrix):
        sigma_lo, sigma_hi = sigma.lower, sigma.upper
    else:
        sigma_lo = sigma_hi = np.asarray(sigma, dtype=float)
    lower = u @ sigma_lo @ v_t
    upper = u @ sigma_hi @ v_t
    return average_replacement_matrix(IntervalMatrix(lower, upper, check=False))


def reconstruct_target_c(decomposition: IntervalDecomposition) -> IntervalMatrix:
    """Scalar reconstruction ``U Sigma V^T`` (Alg. 14), wrapped as degenerate intervals."""
    u = np.asarray(decomposition.u_scalar(), dtype=float)
    sigma = np.asarray(decomposition.sigma_scalar(), dtype=float)
    v_t = np.asarray(decomposition.v_scalar(), dtype=float).T
    return IntervalMatrix.from_scalar(u @ sigma @ v_t)


def reconstruct(decomposition: IntervalDecomposition,
                kernel: KernelLike = None) -> IntervalMatrix:
    """Reconstruct the approximated matrix per the decomposition's target.

    ``kernel`` selects the interval-product kernel for target-a
    reconstructions; targets b and c use scalar products and ignore it.
    """
    target = decomposition.target
    if target is DecompositionTarget.A:
        return reconstruct_target_a(decomposition, kernel=kernel)
    if target is DecompositionTarget.B:
        return reconstruct_target_b(decomposition)
    return reconstruct_target_c(decomposition)
