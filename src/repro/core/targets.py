"""Construction of the final factor matrices per decomposition target.

Given the *aligned* minimum and maximum factor sets ``(U_lo, Sigma_lo, V_lo)``
and ``(U_hi, Sigma_hi, V_hi)``, this module assembles the decomposition the
application asked for (paper Section 3.4):

* **target A** — combine corresponding entries into intervals, replacing
  misordered pairs (min > max) by their average;
* **target B** — average and L2-renormalize the factors to scalar matrices,
  and rescale the (interval) core by the column norms so the reconstruction is
  unchanged;
* **target C** — as B, but the core is also collapsed to its midpoint.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.linalg import average_replacement_matrix, norm_mat


def _as_float(values) -> np.ndarray:
    """Coerce to a float endpoint array, keeping float32 storage as-is."""
    values = np.asarray(values)
    if values.dtype == np.float32:
        return values
    return np.asarray(values, dtype=float)


def combine_min_max(lower: np.ndarray, upper: np.ndarray) -> IntervalMatrix:
    """Combine min/max matrices into a valid interval matrix (Section 3.4.1).

    Entries where the minimum exceeds the maximum are replaced by the average
    of the two values (degenerate interval), exactly as in the paper.
    """
    candidate = IntervalMatrix(_as_float(lower), _as_float(upper), check=False)
    return average_replacement_matrix(candidate)


def _renormalized_factors(
    u_lower: np.ndarray,
    u_upper: np.ndarray,
    v_lower: np.ndarray,
    v_upper: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average the factor endpoints, L2-normalize columns, return the rescaling.

    Returns ``(U, V, scale)`` where ``scale[j] = ||X[:, j]|| * ||Y[:, j]||`` is
    the per-column product of the norms removed from U and V; the core matrix
    must be multiplied by it to preserve the reconstruction (the paper's rho_j).
    """
    x = 0.5 * (_as_float(u_lower) + _as_float(u_upper))
    y = 0.5 * (_as_float(v_lower) + _as_float(v_upper))
    u, u_norms = norm_mat(x)
    v, v_norms = norm_mat(y)
    return u, v, u_norms * v_norms


def _scaled_core_interval(
    sigma_lower: np.ndarray, sigma_upper: np.ndarray, scale: np.ndarray
) -> IntervalMatrix:
    """Rescale an interval diagonal core by per-column factors and fix ordering."""
    lo = np.diag(_as_float(sigma_lower)).copy() if np.ndim(sigma_lower) == 2 else _as_float(sigma_lower).copy()
    hi = np.diag(_as_float(sigma_upper)).copy() if np.ndim(sigma_upper) == 2 else _as_float(sigma_upper).copy()
    lo = lo * scale
    hi = hi * scale
    combined = combine_min_max(np.diag(lo), np.diag(hi))
    return combined


def build_decomposition(
    u_lower: np.ndarray,
    sigma_lower: np.ndarray,
    v_lower: np.ndarray,
    u_upper: np.ndarray,
    sigma_upper: np.ndarray,
    v_upper: np.ndarray,
    target: Union[str, DecompositionTarget],
    method: str,
    rank: int,
    timings: Optional[Dict[str, float]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> IntervalDecomposition:
    """Assemble an :class:`IntervalDecomposition` for the requested target.

    All six inputs are scalar matrices: the (already aligned) minimum and
    maximum versions of U, Sigma, V.  Sigma may be passed either as an ``r x r``
    diagonal matrix or as a length-``r`` vector of singular values.
    """
    target = DecompositionTarget.coerce(target)
    timings = dict(timings or {})
    metadata = dict(metadata or {})

    sigma_lower = _as_float(sigma_lower)
    sigma_upper = _as_float(sigma_upper)
    if sigma_lower.ndim == 1:
        sigma_lower = np.diag(sigma_lower)
    if sigma_upper.ndim == 1:
        sigma_upper = np.diag(sigma_upper)

    if target is DecompositionTarget.A:
        u = combine_min_max(u_lower, u_upper)
        v = combine_min_max(v_lower, v_upper)
        sigma = combine_min_max(sigma_lower, sigma_upper)
        return IntervalDecomposition(
            u=u, sigma=sigma, v=v, target=target, method=method, rank=rank,
            timings=timings, metadata=metadata,
        )

    u, v, scale = _renormalized_factors(u_lower, u_upper, v_lower, v_upper)

    if target is DecompositionTarget.B:
        sigma = _scaled_core_interval(sigma_lower, sigma_upper, scale)
        return IntervalDecomposition(
            u=u, sigma=sigma, v=v, target=target, method=method, rank=rank,
            timings=timings, metadata=metadata,
        )

    # Target C: collapse the core to its midpoint, then rescale.
    sigma_mid = 0.5 * (np.diag(sigma_lower) + np.diag(sigma_upper)) * scale
    sigma = np.diag(sigma_mid)
    return IntervalDecomposition(
        u=u, sigma=sigma, v=v, target=target, method=method, rank=rank,
        timings=timings, metadata=metadata,
    )
