"""Decomposition accuracy measures (paper Definition 5) and error helpers.

The paper evaluates a decomposition by reconstructing the interval matrix and
comparing its minimum and maximum component matrices against the originals
with relative Frobenius errors, converting each to an accuracy
``Theta = max(0, 1 - Delta)`` and combining the two with a harmonic mean
(``Theta_HM``).  RMSE helpers are provided for the face-reconstruction and
collaborative-filtering experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.reconstruct import reconstruct
from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix


def relative_error(original: np.ndarray, approximation: np.ndarray) -> float:
    """Relative Frobenius error ``||A - B||_F / ||A||_F`` (paper's Delta).

    When the original matrix is all zeros the error is 0 if the approximation
    is also all zeros and +inf otherwise.
    """
    original = np.asarray(original, dtype=float)
    approximation = np.asarray(approximation, dtype=float)
    if original.shape != approximation.shape:
        raise ValueError(
            f"shape mismatch: original {original.shape} vs approximation {approximation.shape}"
        )
    denominator = np.linalg.norm(original)
    numerator = np.linalg.norm(original - approximation)
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else float("inf")
    return float(numerator / denominator)


def accuracy_from_error(delta: float) -> float:
    """Accuracy ``Theta = max(0, 1 - Delta)``."""
    return max(0.0, 1.0 - delta)


def harmonic_mean(a: float, b: float) -> float:
    """Harmonic mean of two non-negative numbers (0 when either is 0)."""
    if a < 0 or b < 0:
        raise ValueError("harmonic mean is defined for non-negative values")
    if a == 0.0 or b == 0.0:
        return 0.0
    return 2.0 * a * b / (a + b)


@dataclass
class AccuracyReport:
    """Min/max accuracies and their harmonic mean for one reconstruction."""

    delta_lower: float
    delta_upper: float
    theta_lower: float
    theta_upper: float
    h_mean: float

    def __str__(self) -> str:
        return (
            f"Theta_lo={self.theta_lower:.3f} Theta_hi={self.theta_upper:.3f} "
            f"H-mean={self.h_mean:.3f}"
        )


def reconstruction_accuracy(
    original: IntervalMatrix,
    reconstruction: IntervalMatrix,
) -> AccuracyReport:
    """Compare a reconstructed interval matrix to the original (Definition 5)."""
    original = IntervalMatrix.coerce(original)
    reconstruction = IntervalMatrix.coerce(reconstruction)
    delta_lower = relative_error(original.lower, reconstruction.lower)
    delta_upper = relative_error(original.upper, reconstruction.upper)
    theta_lower = accuracy_from_error(delta_lower)
    theta_upper = accuracy_from_error(delta_upper)
    return AccuracyReport(
        delta_lower=delta_lower,
        delta_upper=delta_upper,
        theta_lower=theta_lower,
        theta_upper=theta_upper,
        h_mean=harmonic_mean(theta_lower, theta_upper),
    )


def harmonic_mean_accuracy(
    original: IntervalMatrix,
    decomposition_or_reconstruction: Union[IntervalDecomposition, IntervalMatrix],
) -> float:
    """Harmonic-mean accuracy ``Theta_HM`` of a decomposition or reconstruction.

    Accepts either an already-reconstructed interval matrix or an
    :class:`~repro.core.result.IntervalDecomposition`, which is reconstructed
    per its target first.
    """
    if isinstance(decomposition_or_reconstruction, IntervalDecomposition):
        reconstruction = reconstruct(decomposition_or_reconstruction)
    else:
        reconstruction = decomposition_or_reconstruction
    return reconstruction_accuracy(original, reconstruction).h_mean


def rmse(original: np.ndarray, approximation: np.ndarray, mask: Optional[np.ndarray] = None) -> float:
    """Root-mean-square error, optionally restricted to a boolean mask of cells."""
    original = np.asarray(original, dtype=float)
    approximation = np.asarray(approximation, dtype=float)
    if original.shape != approximation.shape:
        raise ValueError("rmse requires matching shapes")
    difference = original - approximation
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != original.shape:
            raise ValueError("mask shape must match the matrices")
        if not mask.any():
            raise ValueError("rmse mask selects no cells")
        difference = difference[mask]
    return float(np.sqrt(np.mean(difference**2)))


def interval_rmse(original: IntervalMatrix, reconstruction: IntervalMatrix,
                  mask: Optional[np.ndarray] = None) -> float:
    """RMSE between interval matrices: average of the lower- and upper-bound RMSEs."""
    original = IntervalMatrix.coerce(original)
    reconstruction = IntervalMatrix.coerce(reconstruction)
    lower = rmse(original.lower, reconstruction.lower, mask)
    upper = rmse(original.upper, reconstruction.upper, mask)
    return 0.5 * (lower + upper)
