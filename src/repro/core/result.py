"""Result containers for interval-valued decompositions.

A decomposition returns factor matrices whose nature depends on the
*decomposition target* chosen by the application (paper Section 3.4):

* target ``A`` — interval-valued ``U``, ``Sigma`` and ``V``;
* target ``B`` — scalar ``U`` and ``V`` with an interval-valued core ``Sigma``;
* target ``C`` — scalar ``U``, ``Sigma`` and ``V``.

:class:`IntervalDecomposition` normalizes all three shapes into one container
so downstream code (reconstruction, classification, collaborative filtering)
can be written once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.interval.array import IntervalMatrix


class DecompositionTarget(str, Enum):
    """Application semantics for the decomposition output (Section 3.4)."""

    A = "a"
    """Interval-valued ``U``, ``Sigma`` and ``V`` (most general)."""

    B = "b"
    """Scalar ``U`` and ``V``; interval-valued core ``Sigma``."""

    C = "c"
    """Scalar ``U``, ``Sigma`` and ``V`` (compatible with classic SVD tooling)."""

    @classmethod
    def coerce(cls, value: Union[str, "DecompositionTarget"]) -> "DecompositionTarget":
        """Accept ``'a'/'b'/'c'`` strings (any case) or enum members."""
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


FactorMatrix = Union[np.ndarray, IntervalMatrix]


def _is_interval(matrix: FactorMatrix) -> bool:
    return isinstance(matrix, IntervalMatrix)


@dataclass
class IntervalDecomposition:
    """The output of an interval-valued decomposition ``M ~= U Sigma V^T``.

    Attributes
    ----------
    u, sigma, v:
        Factor and core matrices.  Each is either a scalar ``numpy.ndarray`` or
        an :class:`~repro.interval.array.IntervalMatrix`, as dictated by the
        decomposition target.  ``v`` is stored column-major as in the paper
        (``m x r``); reconstruction uses ``V^T``.
    target:
        The decomposition target (a / b / c).
    method:
        Human-readable name of the algorithm that produced the result
        (e.g. ``"ISVD4"``).
    rank:
        Target rank of the decomposition.
    timings:
        Optional per-phase wall-clock timings in seconds (preprocessing,
        decomposition, alignment, recomposition) used by the Figure 6(b)
        experiment.
    metadata:
        Free-form extras recorded by the algorithms (condition numbers,
        alignment permutation, iteration counts...).
    """

    u: FactorMatrix
    sigma: FactorMatrix
    v: FactorMatrix
    target: DecompositionTarget
    method: str
    rank: int
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.target = DecompositionTarget.coerce(self.target)
        self._validate_shapes()
        self._validate_target_kinds()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate_shapes(self) -> None:
        u_shape = self.u.shape
        v_shape = self.v.shape
        s_shape = self.sigma.shape
        if len(u_shape) != 2 or len(v_shape) != 2 or len(s_shape) != 2:
            raise ValueError("decomposition factors must be 2-D matrices")
        if s_shape[0] != s_shape[1]:
            raise ValueError(f"core matrix must be square, got {s_shape}")
        if u_shape[1] != s_shape[0] or v_shape[1] != s_shape[0]:
            raise ValueError(
                f"rank mismatch: U is {u_shape}, Sigma is {s_shape}, V is {v_shape}"
            )
        if s_shape[0] != self.rank:
            raise ValueError(f"declared rank {self.rank} != core size {s_shape[0]}")

    def _validate_target_kinds(self) -> None:
        if self.target is DecompositionTarget.A:
            return  # any mix is tolerated; factors are usually interval-valued
        if self.target is DecompositionTarget.B:
            if _is_interval(self.u) or _is_interval(self.v):
                raise ValueError("target B requires scalar U and V factors")
        if self.target is DecompositionTarget.C:
            if _is_interval(self.u) or _is_interval(self.v) or _is_interval(self.sigma):
                raise ValueError("target C requires scalar U, Sigma and V")

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Shape ``(n, m)`` of the matrix this decomposition approximates."""
        return (self.u.shape[0], self.v.shape[0])

    @property
    def is_interval_core(self) -> bool:
        """True when the core matrix is interval-valued."""
        return _is_interval(self.sigma)

    @property
    def is_interval_factors(self) -> bool:
        """True when either factor matrix is interval-valued."""
        return _is_interval(self.u) or _is_interval(self.v)

    def u_scalar(self) -> np.ndarray:
        """Scalar view of ``U`` (midpoints when interval-valued)."""
        return self.u.midpoint() if _is_interval(self.u) else np.asarray(self.u)

    def v_scalar(self) -> np.ndarray:
        """Scalar view of ``V`` (midpoints when interval-valued)."""
        return self.v.midpoint() if _is_interval(self.v) else np.asarray(self.v)

    def sigma_scalar(self) -> np.ndarray:
        """Scalar view of ``Sigma`` (midpoints when interval-valued)."""
        return self.sigma.midpoint() if _is_interval(self.sigma) else np.asarray(self.sigma)

    @property
    def dtype(self) -> np.dtype:
        """Endpoint dtype of the factors (float32 under a low-precision policy)."""
        u = self.u.lower if _is_interval(self.u) else np.asarray(self.u)
        return u.dtype

    @staticmethod
    def _endpoints(matrix: FactorMatrix) -> Tuple[np.ndarray, np.ndarray]:
        if _is_interval(matrix):
            return matrix.lower, matrix.upper
        scalar = np.asarray(matrix)
        if scalar.dtype != np.float32:
            scalar = np.asarray(scalar, dtype=float)
        return scalar, scalar

    def u_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` endpoint arrays of ``U`` (equal when scalar)."""
        return self._endpoints(self.u)

    def sigma_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` endpoint arrays of ``Sigma`` (equal when scalar)."""
        return self._endpoints(self.sigma)

    def v_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` endpoint arrays of ``V`` (equal when scalar)."""
        return self._endpoints(self.v)

    def item_map(self) -> np.ndarray:
        """Scalar latent-to-row map ``Sigma V^T`` (``rank x m``).

        This is the linear map that turns a latent row ``u`` into its
        (midpoint) reconstruction ``u Sigma V^T``; the serving layer scores
        every query through it and the fold-in projector inverts it.
        """
        return self.sigma_scalar() @ self.v_scalar().T

    def singular_values(self) -> IntervalMatrix:
        """Diagonal of the core as a 1-D interval vector (degenerate if scalar)."""
        if _is_interval(self.sigma):
            return IntervalMatrix(
                np.diag(self.sigma.lower).copy(), np.diag(self.sigma.upper).copy(), check=False
            )
        diag = np.diag(np.asarray(self.sigma)).copy()
        return IntervalMatrix(diag, diag.copy())

    def projection(self, matmul=None) -> IntervalMatrix:
        """Row projections ``U x Sigma`` used as features for classification.

        For interval factors this is the interval product ``[U_lo S_lo, U_hi S_hi]``
        style enclosure computed with interval matrix algebra; for scalar
        factors it degenerates to the ordinary product.

        ``matmul`` overrides the scalar product primitive (default
        ``numpy.matmul``).  The serving layer passes its batch-size-invariant
        kernel so each feature row is a pure function of its own ``U`` row —
        the property that lets a row-range shard of ``U`` reproduce the
        matching slice of the unsharded features bit for bit.
        """
        from repro.interval.linalg import interval_matmul

        u = self.u if _is_interval(self.u) else IntervalMatrix.from_scalar(np.asarray(self.u))
        sigma = (
            self.sigma
            if _is_interval(self.sigma)
            else IntervalMatrix.from_scalar(np.asarray(self.sigma))
        )
        return interval_matmul(u, sigma, matmul=matmul)

    def describe(self) -> str:
        """One-line human-readable summary."""
        kinds = [
            "interval" if _is_interval(self.u) else "scalar",
            "interval" if _is_interval(self.sigma) else "scalar",
            "interval" if _is_interval(self.v) else "scalar",
        ]
        return (
            f"{self.method} (target {self.target.value}): "
            f"U[{kinds[0]}] {self.u.shape}, Sigma[{kinds[1]}] {self.sigma.shape}, "
            f"V[{kinds[2]}] {self.v.shape}"
        )


@dataclass
class FactorizationHistory:
    """Loss trajectory recorded by the iterative (PMF-style) models."""

    losses: list = field(default_factory=list)
    epochs: int = 0

    def record(self, loss: float) -> None:
        """Append one epoch's training loss."""
        self.losses.append(float(loss))
        self.epochs += 1

    @property
    def final_loss(self) -> Optional[float]:
        """Loss after the last recorded epoch, or ``None`` if never recorded."""
        return self.losses[-1] if self.losses else None

    def improved(self) -> bool:
        """True when the last loss is lower than the first one."""
        return len(self.losses) >= 2 and self.losses[-1] <= self.losses[0]
