"""Interval-valued Latent Semantic Alignment (ILSA, paper Section 3.3).

When the minimum and maximum components of an interval-valued matrix are
decomposed separately, the resulting two sets of basis vectors are unordered
relative to each other: the h-th column of ``V_lo`` need not describe the same
latent concept as the h-th column of ``V_hi``, and matched vectors may point in
opposite directions.  ILSA pairs the two sets so that matched columns are as
parallel as possible:

* **Problem 1 (stable matching)** — a greedy assignment following the
  supplementary Algorithm 6 (pick the most-similar partner per column, resolve
  conflicts with spare columns), with O(r^2) cost.
* **Problem 2 (optimal assignment)** — the linear assignment problem maximizing
  the total |cos| similarity, solved with the Hungarian algorithm
  (``scipy.optimize.linear_sum_assignment``) in O(r^3).

After the pairing, any matched pair with a negative cosine has the min-side
column multiplied by -1 so both columns point in a similar direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment


class AlignmentError(ValueError):
    """Raised for invalid inputs to the alignment routines."""


def cosine_similarity_matrix(v_lower: np.ndarray, v_upper: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities ``cos(v_lower[:, i], v_upper[:, j])``.

    Zero columns yield zero similarity rather than NaN.
    """
    v_lower = np.asarray(v_lower, dtype=float)
    v_upper = np.asarray(v_upper, dtype=float)
    if v_lower.ndim != 2 or v_upper.ndim != 2:
        raise AlignmentError("alignment expects 2-D factor matrices")
    if v_lower.shape != v_upper.shape:
        raise AlignmentError(
            f"factor shape mismatch: {v_lower.shape} vs {v_upper.shape}"
        )
    lower_norms = np.linalg.norm(v_lower, axis=0)
    upper_norms = np.linalg.norm(v_upper, axis=0)
    lower_norms = np.where(lower_norms == 0.0, 1.0, lower_norms)
    upper_norms = np.where(upper_norms == 0.0, 1.0, upper_norms)
    return (v_lower / lower_norms).T @ (v_upper / upper_norms)


@dataclass
class AlignmentResult:
    """Pairing between min-side and max-side basis vectors.

    Attributes
    ----------
    mapping:
        ``mapping[j]`` is the index of the min-side column paired with max-side
        column ``j``.  It is always a permutation of ``0..r-1``.
    signs:
        ``signs[j]`` is ``-1`` when the paired min-side column must be flipped
        so that the matched columns point in a similar direction, otherwise ``+1``.
    similarity:
        The full ``r x r`` cosine-similarity matrix between min and max columns.
    matched_similarity:
        ``matched_similarity[j] = |cos|`` of the matched pair for column ``j``.
    method:
        ``"greedy"`` or ``"hungarian"``.
    """

    mapping: np.ndarray
    signs: np.ndarray
    similarity: np.ndarray
    matched_similarity: np.ndarray
    method: str

    @property
    def rank(self) -> int:
        """Number of aligned basis vectors."""
        return int(self.mapping.shape[0])

    @property
    def total_similarity(self) -> float:
        """Objective value of Problem 2: the summed |cos| over matched pairs."""
        return float(self.matched_similarity.sum())

    def is_permutation(self) -> bool:
        """Sanity check: the mapping visits every min-side column exactly once."""
        return sorted(self.mapping.tolist()) == list(range(self.rank))

    def apply_to_columns(self, matrix: np.ndarray, flip_signs: bool = True) -> np.ndarray:
        """Permute (and optionally sign-flip) the columns of a min-side matrix.

        Column ``j`` of the output is column ``mapping[j]`` of the input,
        multiplied by ``signs[j]`` when ``flip_signs`` is requested.
        """
        matrix = np.asarray(matrix)
        if matrix.dtype != np.float32:
            matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[1] != self.rank:
            raise AlignmentError(
                f"matrix has {matrix.shape[1]} columns but alignment rank is {self.rank}"
            )
        permuted = matrix[:, self.mapping]
        if flip_signs:
            signs = self.signs.astype(permuted.dtype, copy=False)
            permuted = permuted * signs[np.newaxis, :]
        return permuted

    def apply_to_diagonal(self, diagonal: np.ndarray) -> np.ndarray:
        """Permute the entries of a min-side diagonal (singular values)."""
        diagonal = np.asarray(diagonal)
        if diagonal.dtype != np.float32:
            diagonal = np.asarray(diagonal, dtype=float)
        if diagonal.ndim == 2:
            diagonal = np.diag(diagonal)
        if diagonal.shape[0] != self.rank:
            raise AlignmentError("diagonal length does not match alignment rank")
        return diagonal[self.mapping]


def _greedy_mapping(preference: np.ndarray) -> np.ndarray:
    """Greedy conflict-resolving assignment (supplementary Algorithm 6).

    For each max-side column ``j`` pick the min-side column with the highest
    preference; when several max-side columns claim the same min-side column,
    the best claimant keeps it and the others are reassigned to the best
    remaining spare columns.
    """
    r = preference.shape[0]
    mapping = np.argmax(preference, axis=0)

    assigned, counts = np.unique(mapping, return_counts=True)
    if assigned.size == r:
        return mapping

    spare = [i for i in range(r) if i not in set(assigned.tolist())]
    for winner_index in assigned[counts > 1]:
        claimants = np.flatnonzero(mapping == winner_index)
        # Best claimant (highest preference) keeps the column.
        order = np.argsort(-preference[winner_index, claimants])
        losers = claimants[order[1:]]
        for j in losers:
            if not spare:
                break
            best_spare = max(spare, key=lambda i: preference[i, j])
            mapping[j] = best_spare
            spare.remove(best_spare)
    return mapping


def _hungarian_mapping(preference: np.ndarray) -> np.ndarray:
    """Optimal assignment maximizing the total preference (Problem 2)."""
    row_ind, col_ind = linear_sum_assignment(-preference)
    mapping = np.empty(preference.shape[0], dtype=int)
    # row_ind[k] is a min-side column paired with max-side column col_ind[k].
    mapping[col_ind] = row_ind
    return mapping


def ilsa(
    v_lower: np.ndarray,
    v_upper: np.ndarray,
    method: str = "hungarian",
) -> AlignmentResult:
    """Align min-side and max-side basis vectors (the ILSA procedure).

    Parameters
    ----------
    v_lower:
        Basis vectors obtained from the minimum component (columns are vectors).
    v_upper:
        Basis vectors obtained from the maximum component (same shape).
    method:
        ``"hungarian"`` (optimal, default) or ``"greedy"`` (stable-matching
        style, matching the supplementary pseudo-code).

    Returns
    -------
    AlignmentResult
        The permutation of min-side columns, per-column sign corrections, and
        similarity diagnostics.
    """
    if method not in ("hungarian", "greedy"):
        raise AlignmentError(f"unknown alignment method: {method!r}")
    similarity = cosine_similarity_matrix(v_lower, v_upper)
    preference = np.abs(similarity)

    if method == "hungarian":
        mapping = _hungarian_mapping(preference)
    else:
        mapping = _greedy_mapping(preference)

    r = preference.shape[0]
    columns = np.arange(r)
    matched_cos = similarity[mapping, columns]
    signs = np.where(matched_cos < 0.0, -1.0, 1.0)
    matched_similarity = np.abs(matched_cos)
    return AlignmentResult(
        mapping=mapping,
        signs=signs,
        similarity=similarity,
        matched_similarity=matched_similarity,
        method=method,
    )


def matched_cosines(v_lower: np.ndarray, v_upper: np.ndarray) -> np.ndarray:
    """Cosine similarity of *positionally* matched columns (no re-pairing).

    This is the "before alignment" series plotted in Figures 3 and 5 of the
    paper: ``cos(V_lo[:, i], V_hi[:, i])`` for each column index ``i``.
    """
    similarity = cosine_similarity_matrix(v_lower, v_upper)
    return np.diag(similarity).copy()


def align_factor_set(
    alignment: AlignmentResult,
    u_lower: np.ndarray,
    sigma_lower: np.ndarray,
    v_lower: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply an alignment to the full min-side factor set ``(U_lo, Sigma_lo, V_lo)``.

    Columns of ``U_lo`` and ``V_lo`` are permuted and sign-flipped together (so
    their product is unchanged), and the singular values are re-ordered to stay
    attached to their vectors.
    """
    u_aligned = alignment.apply_to_columns(u_lower, flip_signs=True)
    v_aligned = alignment.apply_to_columns(v_lower, flip_signs=True)
    sigma_diag = alignment.apply_to_diagonal(sigma_lower)
    return u_aligned, np.diag(sigma_diag), v_aligned


@dataclass
class AlignmentReport:
    """Before/after diagnostics used by the Figure 3 / Figure 5 experiments."""

    before: np.ndarray
    after: np.ndarray
    method: str = "hungarian"
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_before(self) -> float:
        """Mean |cos| of positionally matched columns before alignment."""
        return float(np.abs(self.before).mean()) if self.before.size else 0.0

    @property
    def mean_after(self) -> float:
        """Mean |cos| of matched columns after alignment."""
        return float(np.abs(self.after).mean()) if self.after.size else 0.0

    @property
    def improvement(self) -> float:
        """Absolute improvement in mean |cos| produced by the alignment."""
        return self.mean_after - self.mean_before


def alignment_report(
    v_lower: np.ndarray, v_upper: np.ndarray, method: str = "hungarian"
) -> AlignmentReport:
    """Compute the before/after matched-cosine series for a pair of factor sets."""
    before = np.abs(matched_cosines(v_lower, v_upper))
    result = ilsa(v_lower, v_upper, method=method)
    after = result.matched_similarity
    return AlignmentReport(before=before, after=after, method=method,
                           extras={"mapping": result.mapping, "signs": result.signs})
