"""The ISVD family: singular value decomposition of interval-valued matrices.

Implements the five strategies of Section 4 (and supplementary Algorithms 7-11):

========  =============================================  ==========================
Method    Strategy                                       Distinguishing step
========  =============================================  ==========================
ISVD0     Average and decompose                          plain SVD of the midpoint
ISVD1     Decompose and align                            SVD of M_lo and M_hi, then ILSA
ISVD2     Decompose, solve, align                        eigen-decomposition of M^T M
                                                          (interval product), recover U,
                                                          then ILSA
ISVD3     Decompose, align, solve                        ILSA first, then U recovered by
                                                          interval algebra through the
                                                          (pseudo-)inverse of V_avg
ISVD4     Decompose, align, solve, recompute             as ISVD3, plus a final
                                                          recomputation of V from U
========  =============================================  ==========================

Every method (except ISVD0, which is inherently scalar and therefore only
supports decomposition target ``c``) can emit any of the three decomposition
targets of Section 3.4.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.ilsa import AlignmentResult, align_factor_set, ilsa
from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.core.targets import build_decomposition
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike
from repro.interval.linalg import (
    DEFAULT_CONDITION_THRESHOLD,
    interval_gram,
    interval_matmul,
    inverse_core,
    safe_inverse,
)
from repro.interval.sparse import as_interval_operand, is_sparse_interval
from repro.precision import PrecisionLike, PrecisionPolicy, resolve_precision


class ISVDError(ValueError):
    """Raised for invalid ISVD configurations."""


class ISVDMethod(str, Enum):
    """The five interval-SVD strategies of the paper."""

    ISVD0 = "isvd0"
    ISVD1 = "isvd1"
    ISVD2 = "isvd2"
    ISVD3 = "isvd3"
    ISVD4 = "isvd4"

    @classmethod
    def coerce(cls, value: Union[str, "ISVDMethod"]) -> "ISVDMethod":
        """Accept enum members or case-insensitive strings like ``"ISVD4"``."""
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())

    @property
    def display_name(self) -> str:
        """Upper-case name used in reports (e.g. ``ISVD3``)."""
        return self.value.upper()


def truncated_svd(matrix: np.ndarray, rank: int,
                  dtype=None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``r`` SVD returning ``(U, singular_values, V)`` with ``V`` of shape ``m x r``.

    ``dtype`` sets the LAPACK compute dtype; ``None`` keeps the historical
    float64 path (byte-identical to the pre-precision-policy behavior).
    """
    matrix = np.asarray(matrix, dtype=float if dtype is None else dtype)
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    rank = min(rank, s.shape[0])
    return u[:, :rank], s[:rank], vt[:rank, :].T


def truncated_eigh(matrix: np.ndarray, rank: int,
                   dtype=None) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``r`` eigen-decomposition of a symmetric matrix.

    Returns ``(V, sqrt_eigenvalues)`` where negative eigenvalues (which can
    appear for the endpoint matrices of an interval product) are clipped to
    zero before the square root, as the singular values of the interval SVD
    must be non-negative.  ``dtype`` sets the LAPACK compute dtype; ``None``
    keeps the historical float64 path.
    """
    matrix = np.asarray(matrix, dtype=float if dtype is None else dtype)
    matrix = 0.5 * (matrix + matrix.T)  # guard against asymmetry from round-off
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    order = np.argsort(eigenvalues)[::-1]
    rank = min(rank, eigenvalues.shape[0])
    top = order[:rank]
    values = np.clip(eigenvalues[top], 0.0, None)
    return eigenvectors[:, top], np.sqrt(values)


def _validate_inputs(matrix: IntervalMatrix, rank: int) -> None:
    if matrix.ndim != 2:
        raise ISVDError("ISVD expects a 2-D interval matrix")
    n, m = matrix.shape
    if rank < 1 or rank > min(n, m):
        raise ISVDError(f"rank must be in [1, min(n, m)={min(n, m)}], got {rank}")


def _factors_to_storage(precision: Optional[PrecisionPolicy], *arrays):
    """Cast scalar factor arrays back to the policy's storage dtype.

    Under the ``mixed`` policy the LAPACK steps run in the (float64)
    accumulation dtype; the factors are stored in float32.  Without a policy
    (or when storage equals the compute dtype) this is a no-op.
    """
    if precision is None or precision.accum_dtype == precision.storage_dtype:
        return arrays if len(arrays) != 1 else arrays[0]
    cast = tuple(a.astype(precision.storage_dtype, copy=False) for a in arrays)
    return cast if len(cast) != 1 else cast[0]


def _match_storage(array: np.ndarray, matrix) -> np.ndarray:
    """Cast a scalar recovery matrix to the interval matrix's endpoint dtype.

    The small inverse products are computed in float64 for accuracy; casting
    them down *before* the big ``n x r`` interval product keeps that product
    (and its result) in the storage dtype.  Float64 inputs pass through
    untouched.
    """
    dtype = getattr(matrix, "dtype", None)
    if dtype is None or array.dtype == dtype:
        return array
    return array.astype(dtype)


# --------------------------------------------------------------------------- #
# ISVD0 — average and decompose
# --------------------------------------------------------------------------- #
def isvd0(matrix: IntervalMatrix, rank: int,
          precision: Optional[PrecisionPolicy] = None) -> IntervalDecomposition:
    """Naive baseline: SVD of the midpoint matrix (Section 4.1, Algorithm 7).

    The result is always a target-``c`` (all scalar) decomposition.
    """
    matrix = IntervalMatrix.coerce(matrix)
    _validate_inputs(matrix, rank)
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    averaged = matrix.midpoint()
    timings["preprocessing"] = time.perf_counter() - start

    start = time.perf_counter()
    u, s, v = truncated_svd(
        averaged, rank, dtype=None if precision is None else precision.accum_dtype)
    u, s, v = _factors_to_storage(precision, u, s, v)
    timings["decomposition"] = time.perf_counter() - start
    timings["alignment"] = 0.0
    timings["recomposition"] = 0.0

    return IntervalDecomposition(
        u=u, sigma=np.diag(s), v=v,
        target=DecompositionTarget.C, method="ISVD0", rank=rank, timings=timings,
    )


# --------------------------------------------------------------------------- #
# ISVD1 — decompose and align
# --------------------------------------------------------------------------- #
def isvd1(
    matrix: IntervalMatrix,
    rank: int,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    align_method: str = "hungarian",
    precision: Optional[PrecisionPolicy] = None,
) -> IntervalDecomposition:
    """Decompose the min and max matrices independently, then align (Alg. 8)."""
    matrix = IntervalMatrix.coerce(matrix)
    _validate_inputs(matrix, rank)
    timings: Dict[str, float] = {"preprocessing": 0.0}

    compute = None if precision is None else precision.accum_dtype
    start = time.perf_counter()
    u_lo, s_lo, v_lo = _factors_to_storage(
        precision, *truncated_svd(matrix.lower, rank, dtype=compute))
    u_hi, s_hi, v_hi = _factors_to_storage(
        precision, *truncated_svd(matrix.upper, rank, dtype=compute))
    timings["decomposition"] = time.perf_counter() - start

    start = time.perf_counter()
    alignment = ilsa(v_lo, v_hi, method=align_method)
    u_lo, s_lo_mat, v_lo = align_factor_set(alignment, u_lo, np.diag(s_lo), v_lo)
    timings["alignment"] = time.perf_counter() - start

    start = time.perf_counter()
    decomposition = build_decomposition(
        u_lo, s_lo_mat, v_lo, u_hi, np.diag(s_hi), v_hi,
        target=target, method="ISVD1", rank=rank, timings=timings,
        metadata={"alignment": alignment},
    )
    decomposition.timings["recomposition"] = time.perf_counter() - start
    return decomposition


# --------------------------------------------------------------------------- #
# Shared eigen-decomposition step for ISVD2/3/4
# --------------------------------------------------------------------------- #
def _gram_eigendecompositions(
    matrix: IntervalMatrix, rank: int, kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    precision: Optional[PrecisionPolicy] = None,
) -> Tuple[IntervalMatrix, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Eigen-decompose the interval Gram matrix ``A = M^T M`` (Section 4.3.1).

    Returns ``(A, V_lo, sigma_lo, V_hi, sigma_hi)`` where the sigma vectors are
    the square roots of the top-``r`` eigenvalues of ``A_lo`` and ``A_hi``.
    ``kernel`` selects the interval-product kernel for the Gram step; the
    product runs through :func:`~repro.interval.linalg.interval_gram`, so a
    sparse ``matrix`` never densifies and ``gram_block_rows`` bounds the dense
    path's temporaries by accumulating over row chunks.  A low-precision
    ``precision`` policy runs the gram and eigen steps in its accumulation
    dtype and stores the factors in its storage dtype.
    """
    accum = None
    compute = None
    if precision is not None:
        compute = precision.accum_dtype
        if precision.accum_dtype != precision.storage_dtype:
            accum = precision.accum_dtype
    gram = interval_gram(matrix, kernel=kernel, block_rows=gram_block_rows,
                         accum_dtype=accum)
    v_lo, s_lo = _factors_to_storage(
        precision, *truncated_eigh(gram.lower, rank, dtype=compute))
    v_hi, s_hi = _factors_to_storage(
        precision, *truncated_eigh(gram.upper, rank, dtype=compute))
    return gram, v_lo, s_lo, v_hi, s_hi


def _recover_u_from_v(matrix: np.ndarray, v: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Recover left singular vectors via ``U = M (V^T)^+ Sigma^{-1}`` (Section 4.3.2).

    ``matrix`` may be a scipy sparse endpoint matrix: ``sparse @ dense``
    evaluates in sparse BLAS and yields the (dense, ``n x r``) result directly.
    """
    s = np.asarray(s)
    if s.dtype != np.float32:
        s = np.asarray(s, dtype=float)
    s_inv = np.where(s > 0.0, 1.0 / np.where(s > 0.0, s, 1.0), 0.0)
    return np.asarray(matrix @ np.linalg.pinv(v.T)) @ np.diag(s_inv)


# --------------------------------------------------------------------------- #
# ISVD2 — decompose, solve, align
# --------------------------------------------------------------------------- #
def isvd2(
    matrix: IntervalMatrix,
    rank: int,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    align_method: str = "hungarian",
    kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    precision: Optional[PrecisionPolicy] = None,
) -> IntervalDecomposition:
    """Eigen-decompose the interval Gram matrix, solve for U, then align (Alg. 9)."""
    matrix = as_interval_operand(matrix)
    _validate_inputs(matrix, rank)
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    _, v_lo, s_lo, v_hi, s_hi = _gram_eigendecompositions(
        matrix, rank, kernel=kernel, gram_block_rows=gram_block_rows,
        precision=precision)
    timings["preprocessing"] = 0.0
    timings["decomposition"] = time.perf_counter() - start

    start = time.perf_counter()
    u_lo = _recover_u_from_v(matrix.lower, v_lo, s_lo)
    u_hi = _recover_u_from_v(matrix.upper, v_hi, s_hi)
    timings["decomposition"] += time.perf_counter() - start

    start = time.perf_counter()
    alignment = ilsa(v_lo, v_hi, method=align_method)
    u_lo, s_lo_mat, v_lo = align_factor_set(alignment, u_lo, np.diag(s_lo), v_lo)
    timings["alignment"] = time.perf_counter() - start

    start = time.perf_counter()
    decomposition = build_decomposition(
        u_lo, s_lo_mat, v_lo, u_hi, np.diag(s_hi), v_hi,
        target=target, method="ISVD2", rank=rank, timings=timings,
        metadata={"alignment": alignment},
    )
    decomposition.timings["recomposition"] = time.perf_counter() - start
    return decomposition


# --------------------------------------------------------------------------- #
# ISVD3 — decompose, align, solve
# --------------------------------------------------------------------------- #
def _aligned_gram_factors(
    matrix: IntervalMatrix, rank: int, align_method: str, kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    precision: Optional[PrecisionPolicy] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, AlignmentResult, Dict[str, float]]:
    """Shared first phase of ISVD3/ISVD4: eigen-decompose, then align V and Sigma."""
    timings: Dict[str, float] = {"preprocessing": 0.0}

    start = time.perf_counter()
    _, v_lo, s_lo, v_hi, s_hi = _gram_eigendecompositions(
        matrix, rank, kernel=kernel, gram_block_rows=gram_block_rows,
        precision=precision)
    timings["decomposition"] = time.perf_counter() - start

    start = time.perf_counter()
    alignment = ilsa(v_lo, v_hi, method=align_method)
    v_lo = alignment.apply_to_columns(v_lo, flip_signs=True)
    s_lo = alignment.apply_to_diagonal(s_lo)
    timings["alignment"] = time.perf_counter() - start
    return v_lo, s_lo, v_hi, s_hi, alignment, timings


def _solve_interval_u(
    matrix: IntervalMatrix,
    v_lo: np.ndarray,
    s_lo: np.ndarray,
    v_hi: np.ndarray,
    s_hi: np.ndarray,
    condition_threshold: float,
    kernel: KernelLike = None,
) -> Tuple[IntervalMatrix, np.ndarray, np.ndarray]:
    """Recover interval-valued U via ``U = M (V^T)^{-1} Sigma^{-1}`` (Section 4.4.2).

    Returns ``(U_interval, v_t_inverse, core_inverse)`` so ISVD4 can reuse the
    inverses for the V-recomputation step.  ``kernel`` selects the
    interval-product kernel for the recovery product.
    """
    v_avg = 0.5 * (v_lo + v_hi)
    v_t_inverse = safe_inverse(v_avg.T, condition_threshold=condition_threshold)
    core = IntervalMatrix(
        np.diag(np.minimum(s_lo, s_hi)), np.diag(np.maximum(s_lo, s_hi)), check=False
    )
    core_inverse = inverse_core(core)
    recovery = _match_storage(v_t_inverse @ core_inverse, matrix)
    u_interval = interval_matmul(matrix, recovery, kernel=kernel)
    return u_interval, v_t_inverse, core_inverse


def isvd3(
    matrix: IntervalMatrix,
    rank: int,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    align_method: str = "hungarian",
    condition_threshold: float = DEFAULT_CONDITION_THRESHOLD,
    kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    precision: Optional[PrecisionPolicy] = None,
) -> IntervalDecomposition:
    """Align the right factors first, then solve for U with interval algebra (Alg. 10)."""
    matrix = as_interval_operand(matrix)
    _validate_inputs(matrix, rank)

    v_lo, s_lo, v_hi, s_hi, alignment, timings = _aligned_gram_factors(
        matrix, rank, align_method, kernel=kernel, gram_block_rows=gram_block_rows,
        precision=precision,
    )

    start = time.perf_counter()
    u_interval, _, _ = _solve_interval_u(
        matrix, v_lo, s_lo, v_hi, s_hi, condition_threshold, kernel=kernel
    )
    timings["decomposition"] += time.perf_counter() - start

    start = time.perf_counter()
    decomposition = build_decomposition(
        u_interval.lower, np.diag(s_lo), v_lo,
        u_interval.upper, np.diag(s_hi), v_hi,
        target=target, method="ISVD3", rank=rank, timings=timings,
        metadata={"alignment": alignment},
    )
    decomposition.timings["recomposition"] = time.perf_counter() - start
    return decomposition


# --------------------------------------------------------------------------- #
# ISVD4 — decompose, align, solve, recompute
# --------------------------------------------------------------------------- #
def isvd4(
    matrix: IntervalMatrix,
    rank: int,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    align_method: str = "hungarian",
    condition_threshold: float = DEFAULT_CONDITION_THRESHOLD,
    kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    precision: Optional[PrecisionPolicy] = None,
) -> IntervalDecomposition:
    """ISVD3 plus a final recomputation of V from the recovered U (Alg. 11).

    The recomputation ``V = (Sigma^{-1} U^{-1} M)^T`` tightens the interval
    factor V because U inherits the alignment's precision (Section 4.5).
    """
    matrix = as_interval_operand(matrix)
    _validate_inputs(matrix, rank)

    v_lo, s_lo, v_hi, s_hi, alignment, timings = _aligned_gram_factors(
        matrix, rank, align_method, kernel=kernel, gram_block_rows=gram_block_rows,
        precision=precision,
    )

    start = time.perf_counter()
    u_interval, _, core_inverse = _solve_interval_u(
        matrix, v_lo, s_lo, v_hi, s_hi, condition_threshold, kernel=kernel
    )

    u_avg = u_interval.midpoint()
    u_inverse = safe_inverse(u_avg, condition_threshold=condition_threshold)
    recompute = _match_storage(core_inverse @ u_inverse, matrix)
    v_interval = interval_matmul(recompute, matrix, kernel=kernel).T
    timings["decomposition"] += time.perf_counter() - start

    start = time.perf_counter()
    decomposition = build_decomposition(
        u_interval.lower, np.diag(s_lo), v_interval.lower,
        u_interval.upper, np.diag(s_hi), v_interval.upper,
        target=target, method="ISVD4", rank=rank, timings=timings,
        metadata={"alignment": alignment},
    )
    decomposition.timings["recomposition"] = time.perf_counter() - start
    return decomposition


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #
def isvd(
    matrix: Union[IntervalMatrix, np.ndarray],
    rank: int,
    method: Union[str, ISVDMethod] = ISVDMethod.ISVD4,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    align_method: str = "hungarian",
    condition_threshold: float = DEFAULT_CONDITION_THRESHOLD,
    kernel: KernelLike = None,
    gram_block_rows: Optional[int] = None,
    dtype: PrecisionLike = None,
) -> IntervalDecomposition:
    """Decompose an interval-valued matrix with the requested ISVD strategy.

    Parameters
    ----------
    matrix:
        Interval matrix (or scalar ndarray, treated as degenerate intervals),
        or a :class:`~repro.interval.sparse.SparseIntervalMatrix`.  The
        gram-based strategies (ISVD2/3/4) execute sparse input through
        scipy's sparse BLAS without ever materializing the dense endpoint
        matrices; ISVD0/ISVD1 decompose the endpoint matrices directly and
        densify sparse input first (their SVDs are dense).
    rank:
        Target rank ``r <= min(n, m)``.
    method:
        One of :class:`ISVDMethod` (or its string name).  Default: ISVD4, the
        paper's best-performing strategy.
    target:
        Decomposition target ``a`` / ``b`` / ``c`` (Section 3.4).  ISVD0
        supports only ``c``.
    align_method:
        ``"hungarian"`` (optimal) or ``"greedy"`` ILSA assignment.
    condition_threshold:
        Condition number above which ISVD3/ISVD4 switch to the truncated
        pseudo-inverse (Section 4.4.2.2).
    kernel:
        Interval-product kernel (:mod:`repro.interval.kernels`) used by the
        ISVD2/3/4 gram and factor-recovery products.  ``None`` keeps the
        paper-faithful ``endpoint4`` default; ISVD0/ISVD1 never form interval
        products, so they accept and ignore the parameter.
    gram_block_rows:
        Row-chunk size for the dense ISVD2/3/4 gram accumulation (see
        :func:`~repro.interval.linalg.interval_gram`).  ``None`` (default)
        keeps the unblocked, byte-identical product.
    dtype:
        Precision policy (:mod:`repro.precision`): ``None`` or ``"float64"``
        keep the historical full-precision path; ``"float32"`` stores and
        accumulates endpoints in float32; ``"mixed"`` stores float32 but
        accumulates the gram products and LAPACK steps in float64.  The
        input matrix is cast to the storage dtype up front (with an outward
        endpoint nudge so the cast itself never narrows an interval), and
        all factors come back in the storage dtype.

    Returns
    -------
    IntervalDecomposition
        Factors per the requested target, with per-phase timings attached.
    """
    method = ISVDMethod.coerce(method)
    target = DecompositionTarget.coerce(target)
    matrix = as_interval_operand(matrix)
    if is_sparse_interval(matrix) and method in (ISVDMethod.ISVD0, ISVDMethod.ISVD1):
        matrix = matrix.to_dense()

    precision = resolve_precision(dtype)
    if precision is not None and precision.is_default:
        # Explicit float64 must be byte-identical to no policy at all.
        precision = None
    if precision is not None and matrix.dtype != precision.storage_dtype:
        matrix = matrix.astype(precision.storage_dtype, outward=True)

    if method is ISVDMethod.ISVD0:
        if target is not DecompositionTarget.C:
            raise ISVDError("ISVD0 produces scalar factors only (decomposition target 'c')")
        return isvd0(matrix, rank, precision=precision)
    if method is ISVDMethod.ISVD1:
        return isvd1(matrix, rank, target=target, align_method=align_method,
                     precision=precision)
    if method is ISVDMethod.ISVD2:
        return isvd2(matrix, rank, target=target, align_method=align_method,
                     kernel=kernel, gram_block_rows=gram_block_rows,
                     precision=precision)
    if method is ISVDMethod.ISVD3:
        return isvd3(
            matrix, rank, target=target, align_method=align_method,
            condition_threshold=condition_threshold, kernel=kernel,
            gram_block_rows=gram_block_rows, precision=precision,
        )
    return isvd4(
        matrix, rank, target=target, align_method=align_method,
        condition_threshold=condition_threshold, kernel=kernel,
        gram_block_rows=gram_block_rows, precision=precision,
    )
