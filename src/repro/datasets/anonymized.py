"""Anonymized interval data via value generalization (paper Section 6.1.1).

Privacy-preserving publishing replaces precise scalar values with coarser
*generalization intervals* (k-anonymity style recoding).  The paper simulates
this by partitioning the value domain into a number of equal-width buckets per
generalization level and replacing each value by its bucket:

* L1 — 100 buckets (fine, low anonymization)
* L2 — 50 buckets
* L3 — 20 buckets
* L4 — 5 buckets (coarse, high anonymization)

A *privacy profile* mixes the four levels over the cells of the matrix; the
paper's three profiles (high / medium / low privacy) are provided as presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng

#: Number of equal-width generalization buckets per level (paper Section 6.1.1).
GENERALIZATION_LEVELS: Dict[str, int] = {"L1": 100, "L2": 50, "L3": 20, "L4": 5}


@dataclass(frozen=True)
class AnonymizationProfile:
    """A mixture of generalization levels applied across matrix cells.

    ``weights`` maps level names (L1..L4) to the fraction of cells anonymized
    at that level; the fractions must sum to 1.
    """

    name: str
    weights: Mapping[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(GENERALIZATION_LEVELS)
        if unknown:
            raise ValueError(f"unknown generalization levels: {sorted(unknown)}")
        total = float(sum(self.weights.values()))
        if not np.isclose(total, 1.0):
            raise ValueError(f"profile weights must sum to 1, got {total}")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("profile weights must be non-negative")

    def level_fractions(self) -> Tuple[Tuple[str, float], ...]:
        """Deterministically ordered (level, fraction) pairs."""
        return tuple((level, float(self.weights.get(level, 0.0)))
                     for level in GENERALIZATION_LEVELS)


#: The paper's three anonymization mixtures.
PRIVACY_PROFILES: Dict[str, AnonymizationProfile] = {
    "high": AnonymizationProfile(
        "high", {"L1": 0.10, "L2": 0.20, "L3": 0.30, "L4": 0.40}
    ),
    "medium": AnonymizationProfile(
        "medium", {"L1": 0.25, "L2": 0.25, "L3": 0.25, "L4": 0.25}
    ),
    "low": AnonymizationProfile(
        "low", {"L1": 0.40, "L2": 0.30, "L3": 0.20, "L4": 0.10}
    ),
}


def generalization_interval(
    value: float, buckets: int, domain: Tuple[float, float]
) -> Tuple[float, float]:
    """The generalization interval (bucket) containing ``value``.

    The domain is split into ``buckets`` equal-width intervals; the value is
    replaced by the closed interval of the bucket it falls into.
    """
    low, high = domain
    if high <= low:
        raise ValueError(f"invalid domain: {domain}")
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    width = (high - low) / buckets
    index = int(np.clip(np.floor((value - low) / width), 0, buckets - 1))
    return (low + index * width, low + (index + 1) * width)


def generalize_matrix(
    values: np.ndarray,
    profile: AnonymizationProfile,
    domain: Optional[Tuple[float, float]] = None,
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Anonymize a scalar matrix into an interval matrix using a privacy profile.

    Each non-zero cell is independently assigned a generalization level with the
    profile's probabilities and replaced by its generalization bucket.  Zero
    cells are preserved as scalar zeros (they encode missing observations in
    the paper's sparse scenarios).
    """
    values = np.asarray(values, dtype=float)
    rng = default_rng(rng)
    if domain is None:
        positive = values[values != 0.0]
        low = float(positive.min()) if positive.size else 0.0
        high = float(positive.max()) if positive.size else 1.0
        if high <= low:
            high = low + 1.0
        domain = (low, high)

    levels = list(GENERALIZATION_LEVELS)
    probabilities = np.array([profile.weights.get(level, 0.0) for level in levels])
    assignments = rng.choice(len(levels), size=values.shape, p=probabilities)

    lower = values.copy()
    upper = values.copy()
    for level_index, level in enumerate(levels):
        buckets = GENERALIZATION_LEVELS[level]
        mask = (assignments == level_index) & (values != 0.0)
        if not mask.any():
            continue
        low, high = domain
        width = (high - low) / buckets
        bucket_index = np.clip(np.floor((values[mask] - low) / width), 0, buckets - 1)
        lower[mask] = low + bucket_index * width
        upper[mask] = low + (bucket_index + 1) * width
    return IntervalMatrix(lower, upper)


def make_anonymized_matrix(
    shape: Tuple[int, int] = (40, 250),
    profile: str = "medium",
    matrix_density: float = 0.0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Generate a random scalar matrix and anonymize it (Figure 7 workload).

    Parameters
    ----------
    shape:
        Matrix dimensions.
    profile:
        One of ``"high"``, ``"medium"``, ``"low"`` (paper's privacy mixtures),
        or an :class:`AnonymizationProfile` instance.
    matrix_density:
        Fraction of cells forced to zero before anonymization.
    value_range:
        Uniform range of the underlying scalar values.
    rng:
        Seed or generator.
    """
    rng = default_rng(rng)
    if isinstance(profile, str):
        try:
            profile = PRIVACY_PROFILES[profile]
        except KeyError as exc:
            raise ValueError(
                f"unknown privacy profile {profile!r}; expected one of "
                f"{sorted(PRIVACY_PROFILES)}"
            ) from exc
    values = rng.uniform(value_range[0], value_range[1], size=shape)
    if matrix_density > 0.0:
        zero_mask = rng.random(shape) < matrix_density
        values = np.where(zero_mask, 0.0, values)
    return generalize_matrix(values, profile, domain=value_range, rng=rng)
