"""Dataset substrates used by the experiments.

All data in this reproduction is generated synthetically (the paper's real
datasets — ORL faces, MovieLens-100K, Ciao, Epinions — are external downloads
that are not redistributable here); the generators follow the paper's data
construction protocols exactly (Table 1 and supplementary Sections F.1/F.2),
so the experiments exercise the same code paths and exhibit the same
qualitative behaviour.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.synthetic import SyntheticConfig, make_uniform_interval_matrix
from repro.datasets.anonymized import (
    AnonymizationProfile,
    GENERALIZATION_LEVELS,
    PRIVACY_PROFILES,
    generalize_matrix,
    make_anonymized_matrix,
)
from repro.datasets.faces import FaceDataset, make_face_dataset
from repro.datasets.ratings import (
    RatingsDataset,
    make_ratings_dataset,
    make_sparse_rating_matrix,
    user_category_interval_matrix,
    rating_interval_matrix,
    sparse_rating_interval_matrix,
    SOCIAL_MEDIA_PRESETS,
    SPARSE_SCALE_PRESETS,
)

__all__ = [
    "SyntheticConfig",
    "make_uniform_interval_matrix",
    "AnonymizationProfile",
    "GENERALIZATION_LEVELS",
    "PRIVACY_PROFILES",
    "generalize_matrix",
    "make_anonymized_matrix",
    "FaceDataset",
    "make_face_dataset",
    "RatingsDataset",
    "make_ratings_dataset",
    "make_sparse_rating_matrix",
    "user_category_interval_matrix",
    "rating_interval_matrix",
    "sparse_rating_interval_matrix",
    "SOCIAL_MEDIA_PRESETS",
    "SPARSE_SCALE_PRESETS",
]
