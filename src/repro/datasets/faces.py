"""Synthetic face-image dataset (stand-in for the ORL face dataset).

The paper's face experiments (Figure 8, Table 3) use the ORL dataset: 40
individuals x 10 grayscale images, 32 x 32 pixels, arranged as a 400 x 1024
matrix with one image per row.  That dataset is an external download, so this
module generates a *structured* synthetic substitute with the properties the
experiments rely on:

* each individual has a smooth low-rank "identity template" (a combination of
  2-D Gaussian blobs on a shared face-like background), so images of the same
  person are close and low-rank approximations preserve identity;
* each image perturbs its template with a small spatial shift and pixel noise,
  mimicking pose/illumination variation;
* intervals are constructed exactly as the paper describes (supplementary
  F.1): each pixel's interval is ``value +- alpha * std(neighbourhood)``, where
  the neighbourhood contains the pixels within a ``range`` radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng


@dataclass
class FaceDataset:
    """A synthetic face collection with scalar and interval representations.

    Attributes
    ----------
    images:
        ``(n_images, resolution**2)`` scalar pixel matrix, one image per row.
    intervals:
        The interval-valued version of ``images`` (same shape).
    labels:
        ``(n_images,)`` integer subject identifiers.
    resolution:
        Side length of the square images.
    """

    images: np.ndarray
    intervals: IntervalMatrix
    labels: np.ndarray
    resolution: int

    @property
    def n_images(self) -> int:
        """Total number of images."""
        return int(self.images.shape[0])

    @property
    def n_subjects(self) -> int:
        """Number of distinct individuals."""
        return int(np.unique(self.labels).size)

    def train_test_split(
        self, train_fraction: float = 0.5, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split image indices per subject (paper uses 50% of rows per individual).

        Returns ``(train_indices, test_indices)``; every subject contributes the
        same fraction of its images to the training set.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = default_rng(rng)
        train: List[int] = []
        test: List[int] = []
        for subject in np.unique(self.labels):
            indices = np.flatnonzero(self.labels == subject)
            permuted = rng.permutation(indices)
            cut = max(1, int(round(train_fraction * indices.size)))
            cut = min(cut, indices.size - 1)
            train.extend(permuted[:cut].tolist())
            test.extend(permuted[cut:].tolist())
        return np.array(sorted(train)), np.array(sorted(test))

    def image_grid(self, index: int) -> np.ndarray:
        """Reshape one image row back to a ``resolution x resolution`` grid."""
        return self.images[index].reshape(self.resolution, self.resolution)


def _face_template(resolution: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth face-like template: oval background plus random Gaussian blobs."""
    axis = np.linspace(-1.0, 1.0, resolution)
    grid_y, grid_x = np.meshgrid(axis, axis, indexing="ij")

    # Shared oval "head" silhouette.
    template = np.exp(-((grid_x / 0.75) ** 2 + (grid_y / 0.95) ** 2) * 1.8)

    # Subject-specific features: a handful of blobs (eyes / nose / mouth analogues).
    n_blobs = rng.integers(4, 8)
    for _ in range(n_blobs):
        center_x = rng.uniform(-0.6, 0.6)
        center_y = rng.uniform(-0.7, 0.7)
        width = rng.uniform(0.08, 0.35)
        amplitude = rng.uniform(-0.6, 0.9)
        template += amplitude * np.exp(
            -(((grid_x - center_x) ** 2 + (grid_y - center_y) ** 2) / (2 * width**2))
        )
    template -= template.min()
    peak = template.max()
    if peak > 0:
        template /= peak
    return template


def _perturb(template: np.ndarray, rng: np.random.Generator,
             shift_pixels: int, noise: float) -> np.ndarray:
    """One observation of a template: small spatial shift plus pixel noise."""
    shift_x = int(rng.integers(-shift_pixels, shift_pixels + 1))
    shift_y = int(rng.integers(-shift_pixels, shift_pixels + 1))
    shifted = np.roll(np.roll(template, shift_y, axis=0), shift_x, axis=1)
    noisy = shifted + rng.normal(scale=noise, size=template.shape)
    return np.clip(noisy, 0.0, 1.0)


def neighborhood_std(image: np.ndarray, radius: int) -> np.ndarray:
    """Per-pixel standard deviation over the ``(2*radius+1)^2`` neighbourhood.

    This is the ``std(S_ij^(r))`` term of the paper's interval construction
    (supplementary F.1), computed with edge-replicated padding.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    padded = np.pad(image, radius, mode="edge")
    windows = []
    size = 2 * radius + 1
    for dy in range(size):
        for dx in range(size):
            windows.append(padded[dy:dy + image.shape[0], dx:dx + image.shape[1]])
    stacked = np.stack(windows)
    return stacked.std(axis=0)


def make_face_dataset(
    n_subjects: int = 40,
    images_per_subject: int = 10,
    resolution: int = 32,
    interval_range: int = 1,
    alpha: float = 1.0,
    shift_pixels: int = 1,
    noise: float = 0.03,
    seed: Optional[int] = None,
) -> FaceDataset:
    """Generate the synthetic face dataset used by the Figure 8 / Table 3 experiments.

    Parameters
    ----------
    n_subjects, images_per_subject, resolution:
        Collection geometry; the paper's setting is 40 x 10 at 32 x 32 (Table 3
        also uses 64 x 64).
    interval_range:
        Neighbourhood radius ``r`` of the interval construction.
    alpha:
        Multiplicative scale of the neighbourhood standard deviation.
    shift_pixels, noise:
        Magnitude of the per-image perturbations.
    seed:
        Reproducibility seed.
    """
    if n_subjects < 2:
        raise ValueError("need at least two subjects for classification tasks")
    if images_per_subject < 2:
        raise ValueError("need at least two images per subject for train/test splits")
    rng = default_rng(seed)

    rows = []
    lower_rows = []
    upper_rows = []
    labels = []
    for subject in range(n_subjects):
        template = _face_template(resolution, rng)
        for _ in range(images_per_subject):
            image = _perturb(template, rng, shift_pixels=shift_pixels, noise=noise)
            delta = alpha * neighborhood_std(image, radius=interval_range)
            rows.append(image.ravel())
            lower_rows.append((image - delta).ravel())
            upper_rows.append((image + delta).ravel())
            labels.append(subject)

    images = np.vstack(rows)
    intervals = IntervalMatrix(np.vstack(lower_rows), np.vstack(upper_rows))
    return FaceDataset(
        images=images,
        intervals=intervals,
        labels=np.array(labels, dtype=int),
        resolution=resolution,
    )
