"""Uniform synthetic interval matrices (paper Table 1).

The synthetic experiments sweep over matrix dimension, matrix density
(percentage of zero cells), interval density (fraction of non-zero cells that
become genuine intervals) and interval intensity (maximum interval scope as a
fraction of the cell value).  :class:`SyntheticConfig` captures one point of
that grid, with the paper's default configuration as the dataclass defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng, random_interval_matrix


@dataclass(frozen=True)
class SyntheticConfig:
    """One configuration of the paper's synthetic-data grid (Table 1).

    Defaults correspond to the paper's bold default values: a 40 x 250 matrix
    with no zero cells, 100% interval density, 100% interval intensity and a
    target rank of 20.
    """

    shape: Tuple[int, int] = (40, 250)
    matrix_density: float = 0.0
    interval_density: float = 1.0
    interval_intensity: float = 1.0
    rank: int = 20
    value_range: Tuple[float, float] = (0.0, 1.0)

    #: Parameter values explored in the paper, usable for sweep construction.
    MATRIX_SHAPES = ((40, 250), (250, 40), (25, 400), (400, 250), (250, 400))
    MATRIX_DENSITIES = (0.0, 0.5, 0.9)
    INTERVAL_DENSITIES = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)
    INTERVAL_INTENSITIES = (0.1, 0.25, 0.5, 0.75, 1.0)
    RANKS = (5, 10, 20, 40)

    def __post_init__(self) -> None:
        n, m = self.shape
        if n < 1 or m < 1:
            raise ValueError(f"invalid matrix shape: {self.shape}")
        if not 0.0 <= self.matrix_density <= 1.0:
            raise ValueError("matrix_density must be in [0, 1]")
        if not 0.0 <= self.interval_density <= 1.0:
            raise ValueError("interval_density must be in [0, 1]")
        if self.interval_intensity < 0.0:
            raise ValueError("interval_intensity must be >= 0")
        if self.rank < 1 or self.rank > min(n, m):
            raise ValueError(f"rank must be in [1, {min(n, m)}], got {self.rank}")

    def with_(self, **changes) -> "SyntheticConfig":
        """Return a copy of the configuration with some fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact string used in experiment reports."""
        n, m = self.shape
        return (
            f"{n}x{m} zeros={self.matrix_density:.0%} "
            f"int.density={self.interval_density:.0%} "
            f"int.intensity={self.interval_intensity:.0%} rank={self.rank}"
        )


def make_uniform_interval_matrix(
    config: Optional[SyntheticConfig] = None,
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Generate one uniform interval matrix for a synthetic configuration."""
    config = config or SyntheticConfig()
    return random_interval_matrix(
        shape=config.shape,
        matrix_density=config.matrix_density,
        interval_density=config.interval_density,
        interval_intensity=config.interval_intensity,
        value_range=config.value_range,
        rng=rng,
    )


def generate_trials(
    config: Optional[SyntheticConfig] = None,
    trials: int = 10,
    seed: Optional[int] = None,
) -> Iterator[IntervalMatrix]:
    """Yield ``trials`` independent matrices for the same configuration.

    The paper averages each synthetic result over 100 random matrices; the
    experiment harness uses a smaller default so the benches stay laptop-scale,
    and the trial count is configurable everywhere.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = default_rng(seed)
    config = config or SyntheticConfig()
    for _ in range(trials):
        yield make_uniform_interval_matrix(config, rng=rng)


def density_sweep(base: Optional[SyntheticConfig] = None,
                  densities: Optional[Tuple[float, ...]] = None) -> List[SyntheticConfig]:
    """Configurations for the Table 2(a) interval-density sweep."""
    base = base or SyntheticConfig()
    densities = densities or (0.10, 0.25, 0.75, 1.0)
    return [base.with_(interval_density=d) for d in densities]


def intensity_sweep(base: Optional[SyntheticConfig] = None,
                    intensities: Optional[Tuple[float, ...]] = None) -> List[SyntheticConfig]:
    """Configurations for the Table 2(b) interval-intensity sweep."""
    base = base or SyntheticConfig()
    intensities = intensities or (0.10, 0.25, 0.75, 1.0)
    return [base.with_(interval_intensity=i) for i in intensities]


def matrix_density_sweep(base: Optional[SyntheticConfig] = None,
                         densities: Optional[Tuple[float, ...]] = None) -> List[SyntheticConfig]:
    """Configurations for the Table 2(c) matrix-density (zero fraction) sweep."""
    base = base or SyntheticConfig()
    densities = densities or (0.0, 0.5, 0.9)
    return [base.with_(matrix_density=d) for d in densities]


def shape_sweep(base: Optional[SyntheticConfig] = None,
                shapes: Optional[Tuple[Tuple[int, int], ...]] = None) -> List[SyntheticConfig]:
    """Configurations for the Table 2(d) matrix-configuration sweep."""
    base = base or SyntheticConfig()
    shapes = shapes or ((25, 400), (40, 250), (250, 40), (400, 250), (250, 400))
    configs = []
    for shape in shapes:
        rank = min(base.rank, min(shape))
        configs.append(base.with_(shape=shape, rank=rank))
    return configs


def rank_sweep(base: Optional[SyntheticConfig] = None,
               ranks: Optional[Tuple[int, ...]] = None) -> List[SyntheticConfig]:
    """Configurations for the Table 2(e) target-rank sweep."""
    base = base or SyntheticConfig()
    ranks = ranks or (5, 10, 20, 40)
    return [base.with_(rank=min(r, min(base.shape))) for r in ranks]
