"""Synthetic ratings datasets (stand-ins for MovieLens-100K, Ciao and Epinions).

The paper's social-media experiments (Figure 9, Figure 10) use three external
rating datasets.  This module generates seeded synthetic substitutes with a
latent-factor structure (users and items have low-dimensional preference
vectors; items belong to categories/genres), and implements the paper's two
interval constructions:

* **user-category interval matrix** (Section 6.1.3.1 / supplementary F.2,
  Eq. 4): entry ``(i, j)`` is the min..max range of the ratings user ``i`` gave
  to items of category ``j`` — the matrix used for the Figure 9 reconstruction
  study; its full rank is the number of categories.
* **per-rating interval matrix** (supplementary F.2, Eqs. 5-7): each observed
  rating ``X_ij`` becomes ``[X_ij - delta_ij, X_ij + delta_ij]`` where
  ``delta_ij = alpha * std`` of all ratings sharing the row or the column —
  the matrix used for the Figure 10 collaborative-filtering study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng


@dataclass(frozen=True)
class RatingsPreset:
    """Geometry of one of the paper's rating datasets (scaled for laptop runs).

    ``full_n_users`` / ``full_n_items`` record the original dataset sizes for
    reference; the default generator sizes are scaled down so the experiment
    harness runs in seconds, which does not change the qualitative behaviour
    (the user-category matrices have the same number of columns / full rank).
    """

    name: str
    n_users: int
    n_items: int
    n_categories: int
    density: float
    full_n_users: int
    full_n_items: int


#: Scaled-down presets mirroring the paper's three datasets.
SOCIAL_MEDIA_PRESETS: Dict[str, RatingsPreset] = {
    "ciao": RatingsPreset("ciao", 700, 1400, 28, 0.28, 7000, 100000),
    "epinions": RatingsPreset("epinions", 1100, 2200, 27, 0.26, 22000, 300000),
    "movielens": RatingsPreset("movielens", 400, 800, 19, 0.12, 943, 1682),
}


@dataclass
class RatingsDataset:
    """A synthetic user-item rating collection.

    Attributes
    ----------
    ratings:
        ``(n_users, n_items)`` matrix of ratings in ``{0} U [1, 5]``; zero means
        "not rated".
    item_categories:
        ``(n_items,)`` integer category/genre of each item.
    n_categories:
        Number of distinct categories.
    name:
        Preset name (``ciao`` / ``epinions`` / ``movielens`` / ``custom``).
    """

    ratings: np.ndarray
    item_categories: np.ndarray
    n_categories: int
    name: str = "custom"

    @property
    def n_users(self) -> int:
        """Number of users (rows)."""
        return int(self.ratings.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items (columns)."""
        return int(self.ratings.shape[1])

    @property
    def observed_mask(self) -> np.ndarray:
        """Boolean mask of observed (non-zero) ratings."""
        return self.ratings != 0.0

    @property
    def density(self) -> float:
        """Fraction of observed ratings."""
        return float(self.observed_mask.mean())

    def holdout_split(
        self, test_fraction: float = 0.2, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split the observed cells into train/test boolean masks."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = default_rng(rng)
        observed = self.observed_mask
        test = observed & (rng.random(self.ratings.shape) < test_fraction)
        train = observed & ~test
        return train, test


def make_ratings_dataset(
    preset: Optional[str] = "movielens",
    n_users: Optional[int] = None,
    n_items: Optional[int] = None,
    n_categories: Optional[int] = None,
    density: Optional[float] = None,
    latent_rank: int = 8,
    seed: Optional[int] = None,
) -> RatingsDataset:
    """Generate a synthetic rating dataset with latent user/category structure.

    Users and categories have low-dimensional preference/profile vectors; an
    item's appeal to a user is the dot product of the user's preferences with
    its category profile plus item-specific variation, mapped onto the 1..5
    star scale.  A fraction ``density`` of cells is observed.

    Parameters override the preset when given (``None`` means "use the
    preset's value" — an explicit ``0`` is invalid geometry and raises, it
    does not silently fall back to the preset); ``preset=None`` requires all
    geometry parameters explicitly.
    """
    if preset is not None:
        try:
            base = SOCIAL_MEDIA_PRESETS[preset]
        except KeyError as exc:
            raise ValueError(
                f"unknown preset {preset!r}; expected one of {sorted(SOCIAL_MEDIA_PRESETS)}"
            ) from exc
        if n_users is None:
            n_users = base.n_users
        if n_items is None:
            n_items = base.n_items
        if n_categories is None:
            n_categories = base.n_categories
        if density is None:
            density = base.density
        name = base.name
    else:
        name = "custom"
    if n_users is None or n_items is None or n_categories is None or density is None:
        raise ValueError("n_users, n_items, n_categories and density are required")
    for label, value in (("n_users", n_users), ("n_items", n_items),
                         ("n_categories", n_categories)):
        if value != int(value) or int(value) < 1:
            raise ValueError(f"{label} must be a positive integer, got {value!r}")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if n_categories > n_items:
        raise ValueError("cannot have more categories than items")

    rng = default_rng(seed)
    user_preferences = rng.normal(size=(n_users, latent_rank))
    category_profiles = rng.normal(size=(n_categories, latent_rank))
    item_categories = rng.integers(0, n_categories, size=n_items)
    # Ensure every category has at least one item so user-category matrices
    # have no structurally empty columns.
    item_categories[:n_categories] = np.arange(n_categories)
    item_offsets = rng.normal(scale=0.3, size=n_items)

    affinity = user_preferences @ category_profiles[item_categories].T + item_offsets
    affinity += rng.normal(scale=0.5, size=affinity.shape)
    # Map affinities onto the 1..5 star scale.
    scaled = (affinity - affinity.mean()) / (affinity.std() + 1e-12)
    stars = np.clip(np.round(3.0 + 1.25 * scaled), 1, 5)

    observed = rng.random((n_users, n_items)) < density
    ratings = np.where(observed, stars, 0.0)
    return RatingsDataset(
        ratings=ratings,
        item_categories=item_categories,
        n_categories=int(n_categories),
        name=name,
    )


def user_category_interval_matrix(dataset: RatingsDataset) -> IntervalMatrix:
    """User x category interval matrix of rating ranges (Figure 9 workload).

    Entry ``(i, j)`` is ``[min, max]`` over the ratings user ``i`` gave to items
    of category ``j``; users with no rating in a category get a scalar zero.
    """
    n_users, n_categories = dataset.n_users, dataset.n_categories
    lower = np.zeros((n_users, n_categories))
    upper = np.zeros((n_users, n_categories))
    observed = dataset.observed_mask
    for category in range(n_categories):
        columns = dataset.item_categories == category
        block = dataset.ratings[:, columns]
        block_mask = observed[:, columns]
        has_any = block_mask.any(axis=1)
        if not has_any.any():
            continue
        minimum = np.where(block_mask, block, np.inf).min(axis=1)
        maximum = np.where(block_mask, block, -np.inf).max(axis=1)
        lower[has_any, category] = minimum[has_any]
        upper[has_any, category] = maximum[has_any]
    return IntervalMatrix(lower, upper)


def rating_interval_matrix(dataset: RatingsDataset, alpha: float = 0.5) -> IntervalMatrix:
    """Per-rating interval matrix for collaborative filtering (Figure 10 workload).

    Each observed rating ``X_ij`` becomes ``[X_ij - d, X_ij + d]`` with
    ``d = alpha * std(S_ij)``, where ``S_ij`` is the multiset of all observed
    ratings in row ``i`` or column ``j`` (supplementary F.2).  Unobserved cells
    stay scalar zero.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ratings = dataset.ratings
    observed = dataset.observed_mask.astype(float)

    values = ratings * observed
    squares = (ratings**2) * observed

    row_count = observed.sum(axis=1, keepdims=True)
    row_sum = values.sum(axis=1, keepdims=True)
    row_sumsq = squares.sum(axis=1, keepdims=True)

    col_count = observed.sum(axis=0, keepdims=True)
    col_sum = values.sum(axis=0, keepdims=True)
    col_sumsq = squares.sum(axis=0, keepdims=True)

    # Union of row i's and column j's observations: the (i, j) cell itself would
    # be counted twice, subtract one copy when it is observed.
    union_count = row_count + col_count - observed
    union_sum = row_sum + col_sum - values
    union_sumsq = row_sumsq + col_sumsq - squares

    with np.errstate(invalid="ignore", divide="ignore"):
        mean = union_sum / union_count
        variance = union_sumsq / union_count - mean**2
    variance = np.nan_to_num(np.clip(variance, 0.0, None))
    delta = alpha * np.sqrt(variance) * dataset.observed_mask

    return IntervalMatrix(ratings - delta, ratings + delta)
