"""Synthetic ratings datasets (stand-ins for MovieLens-100K, Ciao and Epinions).

The paper's social-media experiments (Figure 9, Figure 10) use three external
rating datasets.  This module generates seeded synthetic substitutes with a
latent-factor structure (users and items have low-dimensional preference
vectors; items belong to categories/genres), and implements the paper's two
interval constructions:

* **user-category interval matrix** (Section 6.1.3.1 / supplementary F.2,
  Eq. 4): entry ``(i, j)`` is the min..max range of the ratings user ``i`` gave
  to items of category ``j`` — the matrix used for the Figure 9 reconstruction
  study; its full rank is the number of categories.
* **per-rating interval matrix** (supplementary F.2, Eqs. 5-7): each observed
  rating ``X_ij`` becomes ``[X_ij - delta_ij, X_ij + delta_ij]`` where
  ``delta_ij = alpha * std`` of all ratings sharing the row or the column —
  the matrix used for the Figure 10 collaborative-filtering study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.random import SeedLike, default_rng
from repro.interval.sparse import SparseIntervalMatrix


@dataclass(frozen=True)
class RatingsPreset:
    """Geometry of one of the paper's rating datasets (scaled for laptop runs).

    ``full_n_users`` / ``full_n_items`` record the original dataset sizes for
    reference; the default generator sizes are scaled down so the experiment
    harness runs in seconds, which does not change the qualitative behaviour
    (the user-category matrices have the same number of columns / full rank).
    """

    name: str
    n_users: int
    n_items: int
    n_categories: int
    density: float
    full_n_users: int
    full_n_items: int


#: Scaled-down presets mirroring the paper's three datasets.
SOCIAL_MEDIA_PRESETS: Dict[str, RatingsPreset] = {
    "ciao": RatingsPreset("ciao", 700, 1400, 28, 0.28, 7000, 100000),
    "epinions": RatingsPreset("epinions", 1100, 2200, 27, 0.26, 22000, 300000),
    "movielens": RatingsPreset("movielens", 400, 800, 19, 0.12, 943, 1682),
}

#: Scale presets for the sparse generator (:func:`make_sparse_rating_matrix`).
#: These sizes are far past what the dense generator can hold (the dense
#: endpoint pair of ``webscale`` alone is 3.2 GB), which is the point: they
#: exercise the :class:`~repro.interval.sparse.SparseIntervalMatrix` path end
#: to end.  ``webscale`` is the geometry the sparse benchmark gates on
#: (100k x 2k at 1% density).
SPARSE_SCALE_PRESETS: Dict[str, RatingsPreset] = {
    "demo": RatingsPreset("demo", 2_000, 400, 20, 0.02, 2_000, 400),
    "webscale": RatingsPreset("webscale", 100_000, 2_000, 20, 0.01, 100_000, 2_000),
}


@dataclass
class RatingsDataset:
    """A synthetic user-item rating collection.

    Attributes
    ----------
    ratings:
        ``(n_users, n_items)`` matrix of ratings in ``{0} U [1, 5]``; zero means
        "not rated".
    item_categories:
        ``(n_items,)`` integer category/genre of each item.
    n_categories:
        Number of distinct categories.
    name:
        Preset name (``ciao`` / ``epinions`` / ``movielens`` / ``custom``).
    """

    ratings: np.ndarray
    item_categories: np.ndarray
    n_categories: int
    name: str = "custom"

    @property
    def n_users(self) -> int:
        """Number of users (rows)."""
        return int(self.ratings.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items (columns)."""
        return int(self.ratings.shape[1])

    @property
    def observed_mask(self) -> np.ndarray:
        """Boolean mask of observed (non-zero) ratings."""
        return self.ratings != 0.0

    @property
    def density(self) -> float:
        """Fraction of observed ratings."""
        return float(self.observed_mask.mean())

    def holdout_split(
        self, test_fraction: float = 0.2, rng: SeedLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split the observed cells into train/test boolean masks."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = default_rng(rng)
        observed = self.observed_mask
        test = observed & (rng.random(self.ratings.shape) < test_fraction)
        train = observed & ~test
        return train, test


def make_ratings_dataset(
    preset: Optional[str] = "movielens",
    n_users: Optional[int] = None,
    n_items: Optional[int] = None,
    n_categories: Optional[int] = None,
    density: Optional[float] = None,
    latent_rank: int = 8,
    seed: Optional[int] = None,
) -> RatingsDataset:
    """Generate a synthetic rating dataset with latent user/category structure.

    Users and categories have low-dimensional preference/profile vectors; an
    item's appeal to a user is the dot product of the user's preferences with
    its category profile plus item-specific variation, mapped onto the 1..5
    star scale.  A fraction ``density`` of cells is observed.

    Parameters override the preset when given (``None`` means "use the
    preset's value" — an explicit ``0`` is invalid geometry and raises, it
    does not silently fall back to the preset); ``preset=None`` requires all
    geometry parameters explicitly.
    """
    if preset is not None:
        try:
            base = SOCIAL_MEDIA_PRESETS[preset]
        except KeyError as exc:
            raise ValueError(
                f"unknown preset {preset!r}; expected one of {sorted(SOCIAL_MEDIA_PRESETS)}"
            ) from exc
        if n_users is None:
            n_users = base.n_users
        if n_items is None:
            n_items = base.n_items
        if n_categories is None:
            n_categories = base.n_categories
        if density is None:
            density = base.density
        name = base.name
    else:
        name = "custom"
    if n_users is None or n_items is None or n_categories is None or density is None:
        raise ValueError("n_users, n_items, n_categories and density are required")
    for label, value in (("n_users", n_users), ("n_items", n_items),
                         ("n_categories", n_categories)):
        if value != int(value) or int(value) < 1:
            raise ValueError(f"{label} must be a positive integer, got {value!r}")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if n_categories > n_items:
        raise ValueError("cannot have more categories than items")

    rng = default_rng(seed)
    user_preferences = rng.normal(size=(n_users, latent_rank))
    category_profiles = rng.normal(size=(n_categories, latent_rank))
    item_categories = rng.integers(0, n_categories, size=n_items)
    # Ensure every category has at least one item so user-category matrices
    # have no structurally empty columns.
    item_categories[:n_categories] = np.arange(n_categories)
    item_offsets = rng.normal(scale=0.3, size=n_items)

    affinity = user_preferences @ category_profiles[item_categories].T + item_offsets
    affinity += rng.normal(scale=0.5, size=affinity.shape)
    # Map affinities onto the 1..5 star scale.
    scaled = (affinity - affinity.mean()) / (affinity.std() + 1e-12)
    stars = np.clip(np.round(3.0 + 1.25 * scaled), 1, 5)

    observed = rng.random((n_users, n_items)) < density
    ratings = np.where(observed, stars, 0.0)
    return RatingsDataset(
        ratings=ratings,
        item_categories=item_categories,
        n_categories=int(n_categories),
        name=name,
    )


def user_category_interval_matrix(dataset: RatingsDataset) -> IntervalMatrix:
    """User x category interval matrix of rating ranges (Figure 9 workload).

    Entry ``(i, j)`` is ``[min, max]`` over the ratings user ``i`` gave to items
    of category ``j``; users with no rating in a category get a scalar zero.
    """
    n_users, n_categories = dataset.n_users, dataset.n_categories
    lower = np.zeros((n_users, n_categories))
    upper = np.zeros((n_users, n_categories))
    observed = dataset.observed_mask
    for category in range(n_categories):
        columns = dataset.item_categories == category
        block = dataset.ratings[:, columns]
        block_mask = observed[:, columns]
        has_any = block_mask.any(axis=1)
        if not has_any.any():
            continue
        minimum = np.where(block_mask, block, np.inf).min(axis=1)
        maximum = np.where(block_mask, block, -np.inf).max(axis=1)
        lower[has_any, category] = minimum[has_any]
        upper[has_any, category] = maximum[has_any]
    return IntervalMatrix(lower, upper)


def rating_interval_matrix(dataset: RatingsDataset, alpha: float = 0.5) -> IntervalMatrix:
    """Per-rating interval matrix for collaborative filtering (Figure 10 workload).

    Each observed rating ``X_ij`` becomes ``[X_ij - d, X_ij + d]`` with
    ``d = alpha * std(S_ij)``, where ``S_ij`` is the multiset of all observed
    ratings in row ``i`` or column ``j`` (supplementary F.2).  Unobserved cells
    stay scalar zero.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ratings = dataset.ratings
    observed = dataset.observed_mask.astype(float)

    values = ratings * observed
    squares = (ratings**2) * observed

    row_count = observed.sum(axis=1, keepdims=True)
    row_sum = values.sum(axis=1, keepdims=True)
    row_sumsq = squares.sum(axis=1, keepdims=True)

    col_count = observed.sum(axis=0, keepdims=True)
    col_sum = values.sum(axis=0, keepdims=True)
    col_sumsq = squares.sum(axis=0, keepdims=True)

    # Union of row i's and column j's observations: the (i, j) cell itself would
    # be counted twice, subtract one copy when it is observed.
    union_count = row_count + col_count - observed
    union_sum = row_sum + col_sum - values
    union_sumsq = row_sumsq + col_sumsq - squares

    with np.errstate(invalid="ignore", divide="ignore"):
        mean = union_sum / union_count
        variance = union_sumsq / union_count - mean**2
    variance = np.nan_to_num(np.clip(variance, 0.0, None))
    delta = alpha * np.sqrt(variance) * dataset.observed_mask

    return IntervalMatrix(ratings - delta, ratings + delta)


def sparse_rating_interval_matrix(dataset: RatingsDataset,
                                  alpha: float = 0.5) -> SparseIntervalMatrix:
    """Sparse per-rating interval matrix (Figure 10 workload, CSR-backed).

    Cell for cell identical to :func:`rating_interval_matrix` — the sparse
    pattern is exactly the observed mask, unobserved cells are implicit
    ``[0, 0]`` — so ``sparse_rating_interval_matrix(d).to_dense()`` reproduces
    the dense construction byte for byte.  Use this for datasets whose dense
    endpoint pair still fits in memory; :func:`make_sparse_rating_matrix`
    generates past that limit.
    """
    return SparseIntervalMatrix.from_dense(rating_interval_matrix(dataset, alpha))


def _resolve_scale_preset(preset: Optional[str]) -> Optional[RatingsPreset]:
    if preset is None:
        return None
    presets = {**SOCIAL_MEDIA_PRESETS, **SPARSE_SCALE_PRESETS}
    try:
        return presets[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; expected one of {sorted(presets)}"
        ) from None


def _sample_unique_keys(rng: np.random.Generator, total: int,
                        count: int) -> np.ndarray:
    """Exactly ``count`` distinct cell keys in ``[0, total)``, uniform.

    Sampling with replacement and de-duplicating undershoots badly once the
    requested fraction is non-trivial (density 0.5 would realize ~0.39), so
    the shortfall is topped up until the target is met, then downsampled to
    the exact count.  Above half density the *complement* is sampled instead
    — its fraction is below one half, where the top-up loop converges
    geometrically; the complement's boolean scratch array costs ``total``
    bytes, one-eighth of a single dense endpoint array.
    """
    if count >= total:
        return np.arange(total, dtype=np.int64)
    if count > total // 2:
        excluded = _sample_unique_keys(rng, total, total - count)
        mask = np.ones(total, dtype=bool)
        mask[excluded] = False
        return np.flatnonzero(mask).astype(np.int64)
    keys = np.unique(rng.integers(0, total, size=count, dtype=np.int64))
    while keys.size < count:
        deficit = count - keys.size
        extra = rng.integers(0, total, size=2 * deficit + 32, dtype=np.int64)
        keys = np.union1d(keys, extra)
    if keys.size > count:
        keys = np.sort(rng.choice(keys, size=count, replace=False))
    return keys


def make_sparse_rating_matrix(
    preset: Optional[str] = "webscale",
    n_users: Optional[int] = None,
    n_items: Optional[int] = None,
    density: Optional[float] = None,
    alpha: float = 0.5,
    seed: Optional[int] = None,
) -> SparseIntervalMatrix:
    """Generate a per-rating interval matrix directly in sparse form.

    Unlike :func:`make_ratings_dataset` + :func:`rating_interval_matrix`,
    nothing of size ``n_users x n_items`` is ever allocated: observed cells
    are sampled as coordinate triplets, star ratings get user/item bias
    structure, and the paper's interval radius (``alpha`` times the standard
    deviation of the union of the cell's row and column observations,
    supplementary F.2) is computed from sparse per-row/per-column
    accumulators.  This is what makes the ``webscale`` preset (100k x 2k at
    1% density — a 3.2 GB dense endpoint pair) generatable in ~40 MB.

    ``preset`` accepts the social-media presets and the
    :data:`SPARSE_SCALE_PRESETS`; explicit geometry parameters override it.
    Observed cells are drawn uniformly without replacement, so the realized
    cell count is exactly ``round(n_users * n_items * density)``.
    """
    base = _resolve_scale_preset(preset)
    if n_users is None and base is not None:
        n_users = base.n_users
    if n_items is None and base is not None:
        n_items = base.n_items
    if density is None and base is not None:
        density = base.density
    if n_users is None or n_items is None or density is None:
        raise ValueError("n_users, n_items and density are required without a preset")
    for label, value in (("n_users", n_users), ("n_items", n_items)):
        if value != int(value) or int(value) < 1:
            raise ValueError(f"{label} must be a positive integer, got {value!r}")
    n_users, n_items = int(n_users), int(n_items)
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")

    rng = default_rng(seed)
    total = n_users * n_items
    target_nnz = max(1, int(round(total * density)))
    keys = _sample_unique_keys(rng, total, target_nnz)
    rows = (keys // n_items).astype(np.int64)
    cols = (keys % n_items).astype(np.int64)
    nnz = keys.size

    # Star ratings with user/item bias structure, mapped onto the 1..5 scale
    # like the dense generator.
    user_bias = rng.normal(scale=0.6, size=n_users)
    item_bias = rng.normal(scale=0.6, size=n_items)
    affinity = user_bias[rows] + item_bias[cols] + rng.normal(scale=0.6, size=nnz)
    stars = np.clip(np.round(3.0 + 1.25 * affinity), 1, 5)

    # Sparse accumulators for the union row/column statistics (F.2): the cell
    # itself would be counted twice in row + column, subtract one copy.
    row_count = np.bincount(rows, minlength=n_users).astype(float)
    row_sum = np.bincount(rows, weights=stars, minlength=n_users)
    row_sumsq = np.bincount(rows, weights=stars**2, minlength=n_users)
    col_count = np.bincount(cols, minlength=n_items).astype(float)
    col_sum = np.bincount(cols, weights=stars, minlength=n_items)
    col_sumsq = np.bincount(cols, weights=stars**2, minlength=n_items)

    union_count = row_count[rows] + col_count[cols] - 1.0
    union_sum = row_sum[rows] + col_sum[cols] - stars
    union_sumsq = row_sumsq[rows] + col_sumsq[cols] - stars**2
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = union_sum / union_count
        variance = union_sumsq / union_count - mean**2
    variance = np.nan_to_num(np.clip(variance, 0.0, None))
    delta = alpha * np.sqrt(variance)

    return SparseIntervalMatrix.from_coo(
        rows, cols, stars - delta, stars + delta, shape=(n_users, n_items)
    )
