"""Interval PCA baselines (centers and midpoint-radius methods).

The symbolic-data-analysis literature the paper reviews (Section 2.3) contains
several PCA variants for interval-valued observations.  Two simple, widely
used ones are implemented here as additional comparison points and for
ablation benchmarks:

* **Centers PCA** — PCA of the midpoint matrix; intervals only influence the
  projection step, where each interval observation is projected to an interval
  score using interval arithmetic.
* **Midpoint–Radius PCA** — PCA of the midpoint matrix augmented with the
  radius matrix (the "spread" information is appended as extra features), a
  common way to let the spread influence the principal directions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.linalg import interval_matmul


class _BasePCA:
    """Shared scaffolding for the interval PCA baselines."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.components_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None

    def _fit_scalar(self, data: np.ndarray) -> None:
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k, :]
        denominator = max(data.shape[0] - 1, 1)
        self.explained_variance_ = (singular_values[:k] ** 2) / denominator

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("call fit() before transforming data")


class CentersPCA(_BasePCA):
    """PCA of the interval midpoints, with interval-valued projections."""

    def fit(self, matrix: IntervalMatrix) -> "CentersPCA":
        """Fit principal directions on the midpoint matrix."""
        matrix = IntervalMatrix.coerce(matrix)
        self._fit_scalar(matrix.midpoint())
        return self

    def transform(self, matrix: IntervalMatrix) -> IntervalMatrix:
        """Project interval rows onto the principal directions with interval algebra."""
        self._check_fitted()
        matrix = IntervalMatrix.coerce(matrix)
        centered = matrix - IntervalMatrix.from_scalar(
            np.broadcast_to(self.mean_, matrix.shape).copy()
        )
        return interval_matmul(centered, self.components_.T)

    def fit_transform(self, matrix: IntervalMatrix) -> IntervalMatrix:
        """Convenience: fit on the matrix, then project it."""
        return self.fit(matrix).transform(matrix)


class MidpointRadiusPCA(_BasePCA):
    """PCA of midpoints stacked with radii, with interval-valued projections.

    The radius block lets the principal directions react to how *imprecise*
    each feature is, not only to where its midpoint lies.
    """

    def fit(self, matrix: IntervalMatrix) -> "MidpointRadiusPCA":
        """Fit principal directions on the ``[midpoint | radius]`` feature matrix."""
        matrix = IntervalMatrix.coerce(matrix)
        features = np.hstack([matrix.midpoint(), matrix.radius()])
        self._fit_scalar(features)
        return self

    def transform(self, matrix: IntervalMatrix) -> IntervalMatrix:
        """Project interval rows; the radius block is treated as scalar features."""
        self._check_fitted()
        matrix = IntervalMatrix.coerce(matrix)
        midpoint_block = IntervalMatrix(matrix.lower, matrix.upper, check=False)
        radius_block = IntervalMatrix.from_scalar(matrix.radius())
        stacked = IntervalMatrix(
            np.hstack([midpoint_block.lower, radius_block.lower]),
            np.hstack([midpoint_block.upper, radius_block.upper]),
            check=False,
        )
        mean = np.broadcast_to(self.mean_, stacked.shape).copy()
        centered = stacked - IntervalMatrix.from_scalar(mean)
        return interval_matmul(centered, self.components_.T)

    def fit_transform(self, matrix: IntervalMatrix) -> IntervalMatrix:
        """Convenience: fit on the matrix, then project it."""
        return self.fit(matrix).transform(matrix)
