"""LP / perturbation-bound interval eigen-decomposition competitors.

The paper compares the ISVD family against linear-programming based interval
eigen-decomposition techniques (Deif 1991; Seif, Hashem & Deif 1992), denoted
``LPa``, ``LPb`` and ``LPc`` depending on the decomposition target.  These
methods bound each eigenvalue and eigenvector of the interval Gram matrix
``A = M^T M`` around the eigen-decomposition of its center matrix, and are
known (and shown in the paper) to be effective only when interval radii are
very small — for realistic interval widths the bounds blow up and the
reconstruction accuracy collapses toward zero.

Two bounding modes are provided:

* ``"perturbation"`` (default) — closed-form Weyl / Davis–Kahan style bounds:
  eigenvalues within the spectral norm of the radius matrix, eigenvectors
  within ``||Delta||_2 / gap_i`` of the center eigenvectors.  This captures the
  same blow-up behaviour at a cost compatible with benchmarking.
* ``"lp"`` — per-component linear programs (scipy ``linprog``) that bound each
  eigenvector entry subject to the linearized residual constraints
  ``|(A_c - lambda_i I) x| <= Delta |v_i| + rho |v_i|``.  Faithful to the cited
  formulation but intended for small matrices only (the paper reports "massive
  execution times" for this class of methods).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy.optimize import linprog

from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.core.targets import build_decomposition
from repro.interval.array import IntervalMatrix
from repro.interval.linalg import interval_matmul


class LPBaselineError(ValueError):
    """Raised for invalid inputs to the LP baseline."""


def _center_and_radius(matrix: IntervalMatrix) -> Tuple[np.ndarray, np.ndarray]:
    center = matrix.midpoint()
    radius = matrix.radius()
    return 0.5 * (center + center.T), 0.5 * (radius + radius.T)


def deif_eigenvalue_bounds(gram: IntervalMatrix, rank: int) -> IntervalMatrix:
    """Interval bounds for the top-``r`` eigenvalues of a symmetric interval matrix.

    Uses Weyl's inequality with the spectral norm of the radius matrix, which is
    the closed-form version of Deif's bounds under the sign-invariance
    assumption.  Returns a 1-D interval vector sorted by decreasing center value.
    """
    center, radius = _center_and_radius(gram)
    eigenvalues = np.linalg.eigvalsh(center)[::-1][:rank]
    rho = float(np.linalg.norm(radius, 2)) if radius.size else 0.0
    return IntervalMatrix(eigenvalues - rho, eigenvalues + rho)


def _eigen_center(gram_center: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray]:
    eigenvalues, eigenvectors = np.linalg.eigh(gram_center)
    order = np.argsort(eigenvalues)[::-1][:rank]
    return eigenvalues[order], eigenvectors[:, order]


def _perturbation_vector_bounds(
    gram: IntervalMatrix, rank: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Davis–Kahan style bounds on eigenvectors: ``v_i +- ||Delta|| / gap_i``."""
    center, radius = _center_and_radius(gram)
    values, vectors = _eigen_center(center, rank)
    all_values = np.linalg.eigvalsh(center)
    rho = float(np.linalg.norm(radius, 2)) if radius.size else 0.0

    lower = np.empty_like(vectors)
    upper = np.empty_like(vectors)
    for i, value in enumerate(values):
        gaps = np.abs(all_values - value)
        gaps = gaps[gaps > 1e-12]
        gap = float(gaps.min()) if gaps.size else 1e-12
        spread = rho / max(gap, 1e-12)
        if spread >= 1.0:
            # The perturbation exceeds the eigen-gap: the bound is vacuous and the
            # method only knows the eigenvector lies somewhere in the unit box.
            # This is the regime in which the paper observes the LP class failing.
            lower[:, i] = -1.0
            upper[:, i] = 1.0
        else:
            lower[:, i] = vectors[:, i] - spread
            upper[:, i] = vectors[:, i] + spread
    return values, vectors, lower, upper


def _lp_vector_bounds(
    gram: IntervalMatrix, rank: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-component LP bounds on the eigenvectors (small matrices only)."""
    center, radius = _center_and_radius(gram)
    values, vectors = _eigen_center(center, rank)
    rho = float(np.linalg.norm(radius, 2)) if radius.size else 0.0
    m = center.shape[0]

    lower = np.empty((m, rank))
    upper = np.empty((m, rank))
    identity = np.eye(m)
    for i in range(rank):
        v_center = vectors[:, i]
        residual_budget = radius @ np.abs(v_center) + rho * np.abs(v_center)
        # Constraints: -budget <= (A_c - lambda_i I) x <= budget, plus |x_j| <= 1.
        system = center - values[i] * identity
        a_ub = np.vstack([system, -system])
        b_ub = np.concatenate([residual_budget, residual_budget])
        bounds = [(-1.0, 1.0)] * m
        for j in range(m):
            cost = np.zeros(m)
            cost[j] = 1.0
            low = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
            high = linprog(-cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
            lower[j, i] = low.x[j] if low.success else -1.0
            upper[j, i] = high.x[j] if high.success else 1.0
    return values, vectors, lower, upper


def eigenvector_bounds(
    gram: IntervalMatrix, rank: int, mode: str = "perturbation"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bounds for the top-``r`` eigenvectors of a symmetric interval matrix.

    Returns ``(center_values, center_vectors, lower_vectors, upper_vectors)``.
    """
    if mode not in ("perturbation", "lp"):
        raise LPBaselineError(f"unknown bounding mode: {mode!r}")
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise LPBaselineError("eigenvector_bounds expects a square interval matrix")
    if rank < 1 or rank > gram.shape[0]:
        raise LPBaselineError(f"rank must be in [1, {gram.shape[0]}], got {rank}")
    if mode == "lp":
        return _lp_vector_bounds(gram, rank)
    return _perturbation_vector_bounds(gram, rank)


def lp_isvd(
    matrix: Union[IntervalMatrix, np.ndarray],
    rank: int,
    target: Union[str, DecompositionTarget] = DecompositionTarget.B,
    mode: str = "perturbation",
) -> IntervalDecomposition:
    """Interval SVD built from LP / perturbation eigen-bounds (the "LP" competitor).

    The decomposition of the interval Gram matrix ``A = M^T M`` is bounded
    around the center eigen-decomposition; the left factor is recovered from
    the center matrix.  For non-trivial interval widths the eigenvalue and
    eigenvector intervals are very wide, so the reconstruction accuracy is poor
    — reproducing the behaviour the paper reports for this class of methods.
    """
    matrix = IntervalMatrix.coerce(matrix)
    n, m = matrix.shape
    if rank < 1 or rank > min(n, m):
        raise LPBaselineError(f"rank must be in [1, {min(n, m)}], got {rank}")

    gram = interval_matmul(matrix.T, matrix)
    eigenvalue_intervals = deif_eigenvalue_bounds(gram, rank)
    _, _, v_lower, v_upper = eigenvector_bounds(gram, rank, mode=mode)

    # Singular values are square roots of (non-negative parts of) the eigenvalues.
    sigma_lower = np.sqrt(np.clip(eigenvalue_intervals.lower, 0.0, None))
    sigma_upper = np.sqrt(np.clip(eigenvalue_intervals.upper, 0.0, None))

    # Recover the left factor from the center matrix and center right factor.
    center = matrix.midpoint()
    v_center = 0.5 * (v_lower + v_upper)
    sigma_center = 0.5 * (sigma_lower + sigma_upper)
    sigma_inv = np.where(sigma_center > 1e-12, 1.0 / np.where(sigma_center > 1e-12, sigma_center, 1.0), 0.0)
    u_center = center @ np.linalg.pinv(v_center.T) @ np.diag(sigma_inv)

    # Propagate the eigenvalue spread into the left factor's interval.
    spread = 0.5 * (sigma_upper - sigma_lower)
    relative_spread = np.divide(
        spread, np.where(sigma_center > 1e-12, sigma_center, 1.0),
        out=np.zeros_like(spread), where=sigma_center > 1e-12,
    )
    u_lower = u_center - np.abs(u_center) * relative_spread[np.newaxis, :]
    u_upper = u_center + np.abs(u_center) * relative_spread[np.newaxis, :]

    return build_decomposition(
        u_lower, np.diag(sigma_lower), v_lower,
        u_upper, np.diag(sigma_upper), v_upper,
        target=target, method="LP", rank=rank,
        metadata={"mode": mode},
    )
