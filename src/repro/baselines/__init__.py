"""Competitor methods the paper compares against.

* :mod:`repro.baselines.lp_eig` — the linear-programming / perturbation-bound
  interval eigen-decomposition competitors ("LPa/LPb/LPc" in the paper),
  following Deif (1991) and Seif, Hashem & Deif (1992).
* :mod:`repro.baselines.interval_pca` — interval PCA baselines (centers and
  midpoint-radius methods) used for ablation comparisons.
"""

from repro.baselines.lp_eig import lp_isvd, deif_eigenvalue_bounds, eigenvector_bounds
from repro.baselines.interval_pca import CentersPCA, MidpointRadiusPCA

__all__ = [
    "lp_isvd",
    "deif_eigenvalue_bounds",
    "eigenvector_bounds",
    "CentersPCA",
    "MidpointRadiusPCA",
]
