"""repro — reproduction of "Matrix Factorization with Interval-Valued Data".

The package provides:

* :mod:`repro.interval` — interval algebra and interval-valued matrices;
* :mod:`repro.core` — the paper's contribution: the ISVD0..ISVD4 interval
  singular value decompositions, ILSA latent-semantic alignment, the
  decomposition targets a/b/c, and the AI-PMF probabilistic model (with PMF,
  I-PMF, NMF and I-NMF baselines);
* :mod:`repro.baselines` — LP-based interval eigen-decomposition competitors
  and interval PCA baselines;
* :mod:`repro.datasets` — synthetic workloads matching the paper's data
  generation protocols (uniform, anonymized, face-like, ratings-like);
* :mod:`repro.eval` — metrics, classification, clustering and collaborative
  filtering evaluation;
* :mod:`repro.experiments` — one module per table/figure of the paper's
  evaluation, regenerating the corresponding rows and series.

Quickstart
----------
>>> import numpy as np
>>> from repro import IntervalMatrix, isvd, reconstruct, harmonic_mean_accuracy
>>> rng = np.random.default_rng(0)
>>> values = rng.uniform(0, 1, size=(20, 30))
>>> matrix = IntervalMatrix(values - 0.05, values + 0.05)
>>> decomposition = isvd(matrix, rank=5, method="isvd4", target="b")
>>> round(harmonic_mean_accuracy(matrix, decomposition), 3) > 0
True
"""

from repro.interval import Interval, IntervalMatrix
from repro.core import (
    AIPMF,
    DecompositionTarget,
    INMF,
    IPMF,
    ISVDMethod,
    IntervalDecomposition,
    NMF,
    PMF,
    harmonic_mean_accuracy,
    ilsa,
    isvd,
    reconstruct,
)

__version__ = "1.0.0"

__all__ = [
    "Interval",
    "IntervalMatrix",
    "DecompositionTarget",
    "IntervalDecomposition",
    "ISVDMethod",
    "isvd",
    "ilsa",
    "reconstruct",
    "harmonic_mean_accuracy",
    "NMF",
    "INMF",
    "PMF",
    "IPMF",
    "AIPMF",
    "__version__",
]
