"""Loading and saving interval-valued matrices and decompositions.

Interval data arrives in two common shapes:

* **endpoint pair** — two scalar matrices holding the lower and upper bounds
  (two CSV files, or one NPZ archive with ``lower``/``upper`` arrays);
* **wide CSV** — a single CSV in which every logical column ``x`` is stored as
  two physical columns ``x_lo`` and ``x_hi``.

This module reads and writes both, plus NPZ round-tripping of
:class:`~repro.core.result.IntervalDecomposition` objects so decompositions can
be computed once and reused by downstream tooling (the CLI uses these helpers).
"""

from __future__ import annotations

import contextlib
import csv
import hashlib
import io
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.result import DecompositionTarget, IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.scalar import IntervalError
from repro.interval.sparse import SparseIntervalMatrix, is_sparse_interval

PathLike = Union[str, Path]

_LO_SUFFIX = "_lo"
_HI_SUFFIX = "_hi"


# --------------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------------- #
def save_interval_csv(matrix: IntervalMatrix, path: PathLike,
                      column_names: Optional[Sequence[str]] = None) -> None:
    """Write an interval matrix as a wide CSV (``col_lo``/``col_hi`` pairs)."""
    matrix = IntervalMatrix.coerce(matrix)
    if matrix.ndim != 2:
        raise IntervalError("save_interval_csv expects a 2-D interval matrix")
    n_rows, n_cols = matrix.shape
    if column_names is None:
        column_names = [f"c{j}" for j in range(n_cols)]
    if len(column_names) != n_cols:
        raise IntervalError(
            f"expected {n_cols} column names, got {len(column_names)}"
        )
    header: List[str] = []
    for name in column_names:
        header.extend([f"{name}{_LO_SUFFIX}", f"{name}{_HI_SUFFIX}"])

    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(n_rows):
            row: List[float] = []
            for j in range(n_cols):
                row.extend([matrix.lower[i, j], matrix.upper[i, j]])
            writer.writerow(row)


def load_interval_csv(path: PathLike) -> Tuple[IntervalMatrix, List[str]]:
    """Read a wide CSV written by :func:`save_interval_csv`.

    Returns the interval matrix and the logical column names.  Scalar CSVs
    (no ``_lo``/``_hi`` suffixes) are accepted and loaded as degenerate
    intervals.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise IntervalError(f"{path} is empty") from exc
        rows = [list(map(float, row)) for row in reader if row]

    data = np.asarray(rows, dtype=float) if rows else np.empty((0, len(header)))

    paired = (
        len(header) % 2 == 0
        and all(header[i].endswith(_LO_SUFFIX) and header[i + 1].endswith(_HI_SUFFIX)
                for i in range(0, len(header), 2))
    )
    if paired:
        names = [header[i][: -len(_LO_SUFFIX)] for i in range(0, len(header), 2)]
        lower = data[:, 0::2]
        upper = data[:, 1::2]
        return IntervalMatrix(lower, upper), names
    return IntervalMatrix.from_scalar(data), list(header)


def load_endpoint_csvs(lower_path: PathLike, upper_path: PathLike) -> IntervalMatrix:
    """Read an interval matrix from two scalar CSVs (no headers required)."""
    lower = _load_scalar_csv(lower_path)
    upper = _load_scalar_csv(upper_path)
    if lower.shape != upper.shape:
        raise IntervalError(
            f"endpoint CSVs have different shapes: {lower.shape} vs {upper.shape}"
        )
    return IntervalMatrix(lower, upper)


def _load_scalar_csv(path: PathLike) -> np.ndarray:
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = []
        for row in reader:
            if not row:
                continue
            try:
                rows.append([float(cell) for cell in row])
            except ValueError:
                # Tolerate a single header row of non-numeric labels.
                if rows:
                    raise
    if not rows:
        raise IntervalError(f"{path} contains no numeric rows")
    return np.asarray(rows, dtype=float)


# --------------------------------------------------------------------------- #
# Atomic writes
# --------------------------------------------------------------------------- #
@contextlib.contextmanager
def atomic_write(path: PathLike) -> Iterator[Path]:
    """Yield a temp path that is atomically renamed onto ``path`` on success.

    The temp file lives in the destination directory (same filesystem, so
    ``os.replace`` is atomic) and keeps the destination's suffix (so writers
    like ``numpy.savez`` that key on the extension behave identically).  A
    concurrent reader therefore only ever sees the old file or the complete
    new one, never a truncated write; on error the temp file is removed and
    the destination is left untouched.  Used by the decomposition cache and
    the model store, whose readers may race their writers.
    """
    path = Path(path)
    tmp = path.with_name(
        f".{path.stem}.{os.getpid()}.{threading.get_ident()}.tmp{path.suffix}"
    )
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()


# --------------------------------------------------------------------------- #
# npy byte strings (the shard-worker wire format)
# --------------------------------------------------------------------------- #
def array_to_npy_bytes(array: np.ndarray) -> bytes:
    """Serialize one ndarray to npy-format bytes, refusing object dtypes.

    The serving layer's worker protocol (:mod:`repro.serve.protocol`) frames
    these byte strings over sockets, so the encoding must never embed pickled
    Python objects — a malicious or corrupted peer could otherwise execute
    code on decode.  ``allow_pickle=False`` enforces that at both ends.
    """
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        # ascontiguousarray only where needed: it would promote 0-d arrays
        # to 1-d, silently changing the shape the peer decodes.
        array = np.ascontiguousarray(array)
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def array_from_npy_bytes(data: bytes) -> np.ndarray:
    """Inverse of :func:`array_to_npy_bytes` (rejects pickled payloads).

    Raises ``ValueError`` on malformed npy bytes or object-dtype archives —
    never unpickles.
    """
    return np.lib.format.read_array(io.BytesIO(data), allow_pickle=False)


# --------------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------------- #
def interval_fingerprint(matrix: Union[IntervalMatrix, SparseIntervalMatrix]) -> str:
    """Stable content hash of an interval matrix (shape + endpoint bytes).

    Used as the data component of on-disk cache keys: two matrices share a
    fingerprint exactly when their shapes and endpoint values are bitwise
    identical.  Sparse matrices hash their canonical CSR representation
    (sorted pattern + endpoint data) without densifying — note a sparse
    matrix and its dense equivalent deliberately do *not* share a
    fingerprint, because the two representations take different execution
    paths and may differ in the last ulp.

    Non-default endpoint dtypes contribute a ``dtype:`` tag to the digest, so
    a float32 matrix never collides with the float64 matrix holding the same
    values; float64 fingerprints are byte-identical to what this function has
    always produced.
    """
    if is_sparse_interval(matrix):
        dtype = matrix.dtype
        digest = hashlib.sha256()
        digest.update(b"csr:")
        digest.update(repr(matrix.shape).encode())
        if dtype != np.float64:
            digest.update(f"dtype:{dtype.name}:".encode())
        digest.update(np.ascontiguousarray(matrix.lower.indptr).tobytes())
        digest.update(np.ascontiguousarray(matrix.lower.indices).tobytes())
        digest.update(np.ascontiguousarray(matrix.lower.data, dtype=dtype).tobytes())
        digest.update(np.ascontiguousarray(matrix.upper.data, dtype=dtype).tobytes())
        return digest.hexdigest()
    matrix = IntervalMatrix.coerce(matrix)
    dtype = matrix.lower.dtype
    digest = hashlib.sha256()
    digest.update(repr(matrix.shape).encode())
    if dtype != np.float64:
        digest.update(f"dtype:{dtype.name}:".encode())
    digest.update(np.ascontiguousarray(matrix.lower, dtype=dtype).tobytes())
    digest.update(np.ascontiguousarray(matrix.upper, dtype=dtype).tobytes())
    return digest.hexdigest()


def decomposition_fingerprint(decomposition: IntervalDecomposition) -> str:
    """Stable content hash of a decomposition (metadata + factor endpoints).

    Two decompositions share a fingerprint exactly when their method, target,
    rank, factor shapes and factor endpoint values are bitwise identical.
    The sharded model store records one per row-range shard at publish time
    and re-verifies on load, so a shard file that was swapped, truncated or
    mixed up between models is caught before it silently serves wrong rows.

    As with :func:`interval_fingerprint`, non-default factor dtypes add a
    ``dtype:`` tag to the digest; float64 decompositions fingerprint exactly
    as they always have.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{decomposition.method}:{decomposition.target.value}:"
        f"{decomposition.rank}:".encode()
    )
    for prefix, factor in (("u", decomposition.u), ("s", decomposition.sigma),
                           ("v", decomposition.v)):
        if isinstance(factor, IntervalMatrix):
            lower, upper = factor.lower, factor.upper
        else:
            scalar = np.asarray(factor)
            if scalar.dtype != np.float32:
                scalar = np.asarray(scalar, dtype=float)
            lower = upper = scalar
        digest.update(f"{prefix}{lower.shape!r}:".encode())
        if lower.dtype != np.float64:
            digest.update(f"dtype:{lower.dtype.name}:".encode())
        digest.update(np.ascontiguousarray(lower, dtype=lower.dtype).tobytes())
        digest.update(np.ascontiguousarray(upper, dtype=lower.dtype).tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# NPZ
# --------------------------------------------------------------------------- #
def save_interval_npz(matrix: Union[IntervalMatrix, SparseIntervalMatrix],
                      path: PathLike) -> None:
    """Write an interval matrix to a compressed NPZ archive.

    Sparse matrices are stored in CSR form (``format="csr"`` marker plus
    ``indptr`` / ``indices`` / ``lower_data`` / ``upper_data`` / ``shape``
    arrays) — the archive stays proportional to the number of observed cells,
    and :func:`load_interval_npz` restores the same representation.
    """
    if is_sparse_interval(matrix):
        np.savez_compressed(
            Path(path),
            format=np.array("csr"),
            shape=np.asarray(matrix.shape, dtype=np.int64),
            indptr=matrix.lower.indptr,
            indices=matrix.lower.indices,
            lower_data=matrix.lower.data,
            upper_data=matrix.upper.data,
        )
        return
    matrix = IntervalMatrix.coerce(matrix)
    np.savez_compressed(Path(path), lower=matrix.lower, upper=matrix.upper)


def load_interval_npz(path: PathLike) -> Union[IntervalMatrix, SparseIntervalMatrix]:
    """Read an interval matrix from an NPZ archive.

    Dense archives carry ``lower``/``upper`` arrays; sparse archives carry
    the CSR fields written by :func:`save_interval_npz` and load back as a
    :class:`~repro.interval.sparse.SparseIntervalMatrix`.
    """
    import scipy.sparse as sp

    with np.load(Path(path)) as archive:
        if "format" in archive and str(archive["format"]) == "csr":
            required = {"shape", "indptr", "indices", "lower_data", "upper_data"}
            if not required.issubset(set(archive.files)):
                raise IntervalError(f"{path} is not a sparse interval archive")
            shape = tuple(int(n) for n in archive["shape"])
            lower = sp.csr_array(
                (archive["lower_data"], archive["indices"], archive["indptr"]),
                shape=shape)
            upper = sp.csr_array(
                (archive["upper_data"], archive["indices"], archive["indptr"]),
                shape=shape)
            return SparseIntervalMatrix(lower, upper)
        if "lower" not in archive or "upper" not in archive:
            raise IntervalError(
                f"{path} does not contain 'lower' and 'upper' arrays"
            )
        return IntervalMatrix(archive["lower"], archive["upper"])


# --------------------------------------------------------------------------- #
# Decompositions
# --------------------------------------------------------------------------- #
def _pack_factor(prefix: str, factor, payload: Dict[str, np.ndarray]) -> None:
    if isinstance(factor, IntervalMatrix):
        payload[f"{prefix}_lower"] = factor.lower
        payload[f"{prefix}_upper"] = factor.upper
    else:
        scalar = np.asarray(factor)
        if scalar.dtype != np.float32:
            scalar = np.asarray(scalar, dtype=float)
        payload[prefix] = scalar


def _unpack_factor(prefix: str, archive) -> Union[np.ndarray, IntervalMatrix]:
    if f"{prefix}_lower" in archive:
        return IntervalMatrix(archive[f"{prefix}_lower"], archive[f"{prefix}_upper"],
                              check=False)
    return archive[prefix]


def save_decomposition_npz(decomposition: IntervalDecomposition, path: PathLike) -> None:
    """Write a decomposition (factors, target, method, rank) to an NPZ archive."""
    payload: Dict[str, np.ndarray] = {}
    _pack_factor("u", decomposition.u, payload)
    _pack_factor("sigma", decomposition.sigma, payload)
    _pack_factor("v", decomposition.v, payload)
    payload["meta_target"] = np.array(decomposition.target.value)
    payload["meta_method"] = np.array(decomposition.method)
    payload["meta_rank"] = np.array(decomposition.rank)
    np.savez_compressed(Path(path), **payload)


def load_decomposition_npz(path: PathLike) -> IntervalDecomposition:
    """Read a decomposition written by :func:`save_decomposition_npz`."""
    with np.load(Path(path)) as archive:
        required = {"meta_target", "meta_method", "meta_rank"}
        if not required.issubset(set(archive.files)):
            raise IntervalError(f"{path} is not a decomposition archive")
        return IntervalDecomposition(
            u=_unpack_factor("u", archive),
            sigma=_unpack_factor("sigma", archive),
            v=_unpack_factor("v", archive),
            target=DecompositionTarget.coerce(str(archive["meta_target"])),
            method=str(archive["meta_method"]),
            rank=int(archive["meta_rank"]),
        )
