"""Pluggable interval matrix-product kernels.

Every hot path of the library — the ISVD gram/U/V steps, target-a
reconstruction, and the serving fold-in — funnels through one operation: the
product of two interval matrices.  The paper's construction (supplementary
Algorithm 1, :data:`endpoint4` here) takes the elementwise min/max over the
four *endpoint-matrix* products.  That is **not** a sound enclosure of the
true product range: min/max must be taken per summand *before* the sum over
the inner dimension, and for mixed-sign operands the four-product shortcut
under-covers.  The canonical counterexample::

    A = [[-1, 1], [-1, 1]]   (one row, two entries, each the interval [-1, 1])
    B = [[2], [-2]]          (scalar column)

    endpoint4:  all four endpoint products are 0      ->  [0, 0]
    true range: x1 * 2 + x2 * (-2),  x1, x2 in [-1, 1] ->  [-4, 4]

This module keeps ``endpoint4`` as the paper-faithful default (reproduction
figures stay byte-identical) and registers two sound alternatives behind one
registry:

``exact``
    The tightest possible enclosure (the interval hull of all products of
    member matrices, entries varying independently).  Vectorized by splitting
    both operands into sign classes — entrywise non-negative, non-positive,
    and zero-straddling ("mixed") — so all class pairs except mixed x mixed
    reduce to masked scalar matmuls; the mixed x mixed remainder needs a
    per-summand min/max and is computed as a memory-bounded chunked
    broadcast.  Asymptotically O(n*m*p) elementwise work in the worst case:
    correctness is not BLAS-shaped, and this kernel documents that cost.

``rump``
    Rump's midpoint-radius fast enclosure: center ``Ac Bc``, radius
    ``|Ac| Br + Ar |Bc| + Ar Br``.  Three BLAS calls as implemented (the
    classical four, with two radius products fused into one), the same
    complexity class as ``endpoint4``, sound everywhere, at most a constant
    factor wider than ``exact`` (the classical bound is 1.5x overestimation
    of the radius).

Select a kernel anywhere an interval product runs: ``interval_matmul(a, b,
kernel="rump")``, ``isvd(..., kernel="exact")``, ``QueryEngine(...,
kernel="rump")``, or ``--interval-kernel`` on the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.interval.array import IntervalMatrix
from repro.interval.scalar import IntervalError
from repro.interval.sparse import SparseIntervalMatrix, is_sparse_interval

#: The paper's construction stays the default so reproduction outputs are
#: byte-identical to the seed implementation.
DEFAULT_KERNEL = "endpoint4"

#: Default upper bound on the elements of one (n, chunk, p) temporary in the
#: exact kernel's mixed x mixed correction (~32 MB of float64 per temporary).
#: Override per call (``mixed_chunk_elements=``) or process-wide via the
#: ``REPRO_MIXED_CHUNK_ELEMENTS`` environment variable.
_MIXED_CHUNK_ELEMENTS = 4_000_000

#: Environment variable overriding :data:`_MIXED_CHUNK_ELEMENTS`.
MIXED_CHUNK_ENV = "REPRO_MIXED_CHUNK_ELEMENTS"


def resolve_mixed_chunk_elements(override: Optional[int] = None) -> int:
    """Effective chunk bound: explicit override, else env var, else default.

    Raises :class:`~repro.interval.scalar.IntervalError` for non-positive or
    unparseable values so a bad tuning knob fails loudly at the call site.
    """
    if override is None:
        text = os.environ.get(MIXED_CHUNK_ENV, "").strip()
        if not text:
            return _MIXED_CHUNK_ELEMENTS
        try:
            override = int(text)
        except ValueError:
            raise IntervalError(
                f"{MIXED_CHUNK_ENV}={text!r} is not an integer"
            ) from None
    override = int(override)
    if override < 1:
        raise IntervalError(
            f"mixed chunk elements must be a positive integer, got {override}"
        )
    return override


#: Kernel callable: (a, b, scalar_matmul, mixed_chunk_elements) -> (lower, upper).
ProductFn = Callable[..., Tuple[np.ndarray, np.ndarray]]


# --------------------------------------------------------------------------- #
# Low-precision enclosure inflation (directed-rounding-style)
# --------------------------------------------------------------------------- #
def enclosure_pad(magnitude: np.ndarray, inner_dim: int, dtype) -> np.ndarray:
    """Per-entry radius pad making a float32 product a true enclosure.

    numpy has no directed-rounding mode, so a float32 interval product is
    computed round-to-nearest and each endpoint may land on the wrong side
    of the exact value.  The classical forward-error bound for a length-n
    dot product is ``|fl(x.y) - x.y| <= gamma_n * (|x|.|y|)`` with
    ``gamma_n = n*eps / (1 - n*eps)``; ``magnitude`` is the entrywise bound
    ``max(|lower|, |upper|)_A @ max(|lower|, |upper|)_B``, which dominates
    ``|x|.|y|`` over every member product the kernel summed.  The
    coefficient is doubled because the magnitude product itself was
    computed with the same rounding error, and a multiple of the smallest
    normal guards against products underflowing below the bound entirely.
    The sound kernels add this pad — then nudge one more ulp outward via
    ``np.nextafter`` — whenever they execute in float32, so ``exact`` and
    ``rump`` remain true enclosures in low precision (verified by the
    brute-force suite in ``tests/precision/``, not assumed).
    """
    dtype = np.dtype(dtype)
    eps = float(np.finfo(dtype).eps)
    n_ops = int(inner_dim) + 8  # inner sum plus the kernel's few extra adds
    gamma = (n_ops * eps) / (1.0 - n_ops * eps)
    return (2.0 * gamma) * magnitude + dtype.type(np.finfo(dtype).tiny * n_ops)


def _operand_magnitude(operand):
    """Entrywise magnitude bound ``max(|lower|, |upper|)`` of an operand
    (sparse operands keep their pattern)."""
    if is_sparse_interval(operand):
        data = np.maximum(np.abs(operand.lower.data), np.abs(operand.upper.data))
        return sp.csr_array((data, operand.lower.indices, operand.lower.indptr),
                            shape=operand.shape)
    return np.maximum(np.abs(operand.lower), np.abs(operand.upper))


def _inflate_product(lower, upper, a, b, matmul: Callable):
    """Outward-inflate a float32 product of a sound kernel (no-op otherwise)."""
    if lower.dtype != np.float32:
        return lower, upper
    magnitude = _operand_magnitude(a)
    mag_b = _operand_magnitude(b)
    if sp.issparse(magnitude) or sp.issparse(mag_b):
        magnitude = magnitude @ mag_b
    else:
        magnitude = matmul(magnitude, mag_b)
    if sp.issparse(lower):
        # Cells structurally absent from the magnitude product are exactly
        # [0, 0] (every summand has a structural zero), so padding only the
        # stored pattern is sound.
        pad = magnitude.tocsr()
        pad.data = np.asarray(enclosure_pad(pad.data, a.shape[-1], lower.dtype),
                              dtype=lower.dtype)
        lower = (lower - pad).tocsr()
        upper = (upper + pad).tocsr()
        lower.data = np.nextafter(lower.data, np.float32(-np.inf))
        upper.data = np.nextafter(upper.data, np.float32(np.inf))
        return lower, upper
    if sp.issparse(magnitude):
        magnitude = magnitude.toarray()
    pad = enclosure_pad(magnitude, a.shape[-1], lower.dtype)
    return (np.nextafter(lower - pad, np.float32(-np.inf)),
            np.nextafter(upper + pad, np.float32(np.inf)))


def _inflate_gram(lower, upper, matrix, matmul: Callable,
                  accum_dtype=None):
    """Outward-inflate a float32 gram result of a sound kernel.

    With float64 accumulation (the mixed policy) the forward error is
    orders of magnitude below one float32 ulp, so the narrowing cast is the
    only inward move and a one-ulp ``nextafter`` nudge suffices; pure
    float32 execution gets the full :func:`enclosure_pad`.
    """
    if lower.dtype != np.float32:
        return lower, upper
    if accum_dtype is not None and np.dtype(accum_dtype) == np.float64:
        return (np.nextafter(lower, np.float32(-np.inf)),
                np.nextafter(upper, np.float32(np.inf)))
    magnitude = _operand_magnitude(matrix)
    if sp.issparse(magnitude):
        magnitude = (magnitude.T.tocsr() @ magnitude).toarray()
    else:
        magnitude = matmul(magnitude.T, magnitude)
    pad = enclosure_pad(magnitude, matrix.shape[0], lower.dtype)
    return (np.nextafter(lower - pad, np.float32(-np.inf)),
            np.nextafter(upper + pad, np.float32(np.inf)))


@dataclass(frozen=True)
class KernelInfo:
    """One registered interval-product kernel: capability metadata + callables.

    Attributes
    ----------
    key:
        Registry key (``"endpoint4"`` / ``"exact"`` / ``"rump"``).
    summary:
        One-line description for ``repro list-methods``-style tables.
    sound:
        True when the result encloses the true product range for *every*
        input.  ``endpoint4`` is not sound: it under-covers on mixed-sign
        operands (it is exact only on sign-consistent ones).
    tight:
        True when the result is the interval hull itself (no overestimation).
    paper_faithful:
        True for the construction the original authors use; reproduction
        paths must keep this one to stay byte-identical.
    cost:
        Coarse cost class, e.g. ``"4 blas"`` or ``"blas + O(nmp) mixed"``.
    sparse:
        True when the kernel executes :class:`SparseIntervalMatrix` operands
        through scipy's sparse BLAS instead of densifying them.  Kernels
        without sparse support raise on sparse operands rather than silently
        materializing a dense copy.
    """

    key: str
    summary: str
    sound: bool
    tight: bool
    paper_faithful: bool
    cost: str
    sparse: bool = False
    _product: ProductFn = field(repr=False, default=None)
    _sparse_product: Optional[Callable] = field(repr=False, default=None)
    _gram: Optional[Callable] = field(repr=False, default=None)

    def product(self, a, b, matmul: Optional[Callable] = None,
                mixed_chunk_elements: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays of ``a @ b`` under this kernel.

        ``matmul`` overrides the scalar product primitive (default
        ``numpy.matmul``); the serving layer passes its batch-size-invariant
        einsum so micro-batching never changes served bytes.  Sparse operands
        route through scipy's sparse BLAS (``matmul`` does not apply there);
        when both operands are sparse the returned endpoints are sparse too.
        ``mixed_chunk_elements`` tunes the ``exact`` kernel's mixed x mixed
        chunking; other kernels ignore it.
        """
        if is_sparse_interval(a) or is_sparse_interval(b):
            if self._sparse_product is None:
                supported = ", ".join(sorted(
                    key for key, info in _KERNELS.items() if info.sparse))
                raise IntervalError(
                    f"kernel {self.key!r} has no sparse execution; densify the "
                    f"operands with .to_dense() or use one of: {supported}"
                )
            lower, upper = self._sparse_product(a, b)
            if self.sound:
                lower, upper = _inflate_product(lower, upper, a, b, np.matmul)
            return lower, upper
        if matmul is None:
            matmul = np.matmul
        if mixed_chunk_elements is None:
            # Three-argument call keeps kernels registered against the PR-3
            # ProductFn contract working; the built-ins default the kwarg.
            lower, upper = self._product(a, b, matmul)
        else:
            lower, upper = self._product(a, b, matmul,
                                         mixed_chunk_elements=mixed_chunk_elements)
        if self.sound:
            lower, upper = _inflate_product(lower, upper, a, b, matmul)
        return lower, upper

    def gram(self, matrix, matmul: Optional[Callable] = None,
             block_rows: Optional[int] = None,
             accum_dtype=None) -> Tuple[np.ndarray, np.ndarray]:
        """Dense endpoint arrays of the Gram product ``matrix.T @ matrix``.

        The ISVD2/3/4 hot path.  Kernels with a dedicated gram routine
        (``endpoint4``, ``rump``) support two executions beyond the plain
        product:

        * **sparse** — ``matrix`` may be a :class:`SparseIntervalMatrix`; the
          endpoint products run in scipy's sparse BLAS and only the (small,
          dense) ``m x m`` results are materialized;
        * **blocked** — with ``block_rows`` set, dense endpoint products
          accumulate over row chunks of ``matrix``, so no more than four
          ``m x m`` accumulators plus one chunk's temporaries are live at
          once (instead of four full products plus their stacked copy).
          Blockwise accumulation regroups the inner-dimension sum, which is
          algebraically exact for ``endpoint4`` (min/max happens after the
          full sum) and for ``rump`` (center/radius are sums of per-row
          outer products); floating-point results may differ from the
          unblocked path in the last ulp.

        ``block_rows=None`` (default) reproduces the unblocked product byte
        for byte.  Kernels without a gram routine fall back to
        ``product(matrix.T, matrix)`` and reject ``block_rows``.

        ``accum_dtype`` (the mixed-precision policy's accumulation dtype)
        makes the endpoint/center/radius sums run in that dtype before the
        result is cast back to the operand's storage dtype; ``None``
        reproduces the storage-dtype execution exactly.
        """
        if matmul is None:
            matmul = np.matmul
        if accum_dtype is not None and \
                np.dtype(accum_dtype) == getattr(matrix, "dtype", None):
            accum_dtype = None  # accumulating in the storage dtype is a no-op
        if self._gram is not None:
            if accum_dtype is None:
                lower, upper = self._gram(matrix, matmul, block_rows)
            else:
                lower, upper = self._gram(matrix, matmul, block_rows,
                                          accum_dtype=accum_dtype)
            if self.sound:
                lower, upper = _inflate_gram(lower, upper, matrix, matmul,
                                             accum_dtype=accum_dtype)
            return lower, upper
        if block_rows is not None:
            raise IntervalError(
                f"kernel {self.key!r} has no blocked gram path; leave "
                "block_rows unset"
            )
        if accum_dtype is not None:
            # Upcast-execute-downcast: the product inflates itself only at
            # float32 execution, so the float64-accumulated result needs the
            # outward narrowing cast here to stay an enclosure.
            storage = matrix.dtype
            wide = matrix.astype(accum_dtype)
            lower, upper = self.product(wide.T, wide, matmul=matmul)
            if np.dtype(storage) != np.dtype(accum_dtype) and self.sound:
                lower, upper = _inflate_gram(lower.astype(storage),
                                             upper.astype(storage),
                                             matrix, matmul,
                                             accum_dtype=accum_dtype)
            else:
                lower = lower.astype(storage)
                upper = upper.astype(storage)
            return lower, upper
        return self.product(matrix.T, matrix, matmul=matmul)


_KERNELS: Dict[str, KernelInfo] = {}

KernelLike = Union[str, KernelInfo, None]


def register_kernel(info: KernelInfo) -> KernelInfo:
    """Add a kernel to the registry (last registration of a key wins)."""
    _KERNELS[info.key] = info
    return info


def get_kernel(kernel: KernelLike = None) -> KernelInfo:
    """Resolve a kernel key (or pass an info through); ``None`` is the default.

    Raises :class:`~repro.interval.scalar.IntervalError` for unknown keys, so
    a typo in ``--interval-kernel`` or a config file fails loudly instead of
    silently computing with the wrong enclosure semantics.
    """
    if kernel is None:
        kernel = DEFAULT_KERNEL
    if isinstance(kernel, KernelInfo):
        return kernel
    try:
        return _KERNELS[str(kernel).lower()]
    except KeyError:
        raise IntervalError(
            f"unknown interval kernel {kernel!r}; available: {', '.join(available_kernels())}"
        ) from None


def available_kernels() -> List[str]:
    """Sorted list of registered kernel keys."""
    return sorted(_KERNELS)


def kernel_infos() -> List[KernelInfo]:
    """All registered kernels, sorted by key."""
    return [_KERNELS[key] for key in available_kernels()]


# --------------------------------------------------------------------------- #
# endpoint4 — the paper's four-endpoint construction (supplementary Alg. 1)
# --------------------------------------------------------------------------- #
def _endpoint4_product(a: IntervalMatrix, b: IntervalMatrix, matmul: Callable,
                       mixed_chunk_elements: Optional[int] = None,
                       ) -> Tuple[np.ndarray, np.ndarray]:
    products = (
        matmul(a.lower, b.lower),
        matmul(a.lower, b.upper),
        matmul(a.upper, b.lower),
        matmul(a.upper, b.upper),
    )
    stacked = np.stack(products)
    return stacked.min(axis=0), stacked.max(axis=0)


def _endpoint4_sparse_product(a, b) -> Tuple[np.ndarray, np.ndarray]:
    """Four endpoint products with at least one sparse operand.

    sparse x dense (either order) yields dense ndarrays from scipy's sparse
    BLAS and reduces with the dense min/max.  sparse x sparse stays sparse end
    to end: the elementwise ``minimum``/``maximum`` of the four sparse
    products treats absent cells as 0, exactly like the dense reduction over
    a structurally-zero column.
    """
    products = (
        a.lower @ b.lower,
        a.lower @ b.upper,
        a.upper @ b.lower,
        a.upper @ b.upper,
    )
    if all(sp.issparse(product) for product in products):
        first, *rest = products
        lower = upper = first
        for product in rest:
            lower = lower.minimum(product)
            upper = upper.maximum(product)
        return lower.tocsr(), upper.tocsr()
    stacked = np.stack([np.asarray(product) for product in products])
    return stacked.min(axis=0), stacked.max(axis=0)


def _endpoint4_gram(m, matmul: Callable, block_rows: Optional[int],
                    accum_dtype=None) -> Tuple[np.ndarray, np.ndarray]:
    """Gram-product specialization: sparse BLAS input, optional row blocking.

    ``accum_dtype`` (mixed precision) runs every endpoint product and sum in
    that dtype and casts the result back to the storage dtype; ``None``
    executes entirely in the storage dtype, byte-identical to before.
    """
    # The two cross endpoint products of a Gram matrix are mutual transposes
    # (LᵀU = (UᵀL)ᵀ — same summand products, reassociated), so the sparse and
    # blocked paths compute one and transpose it: 3 products instead of 4.
    storage = m.dtype
    if accum_dtype is not None:
        m = m.astype(accum_dtype)
    if is_sparse_interval(m):
        lower_t = m.lower.T.tocsr()
        upper_t = m.upper.T.tocsr()
        cross = (lower_t @ m.upper).toarray()
        stacked = np.stack([
            (lower_t @ m.lower).toarray(),
            cross,
            cross.T,
            (upper_t @ m.upper).toarray(),
        ])
        return (stacked.min(axis=0).astype(storage, copy=False),
                stacked.max(axis=0).astype(storage, copy=False))
    lower, upper = m.lower, m.upper
    n = lower.shape[0]
    if block_rows is None or block_rows >= n:
        lo, hi = _endpoint4_product(m.T, m, matmul)
        return lo.astype(storage, copy=False), hi.astype(storage, copy=False)
    if block_rows < 1:
        raise IntervalError(f"block_rows must be >= 1, got {block_rows}")
    width = lower.shape[1]
    acc_dtype = lower.dtype if accum_dtype is None else np.dtype(accum_dtype)
    acc_ll = np.zeros((width, width), dtype=acc_dtype)
    acc_cross = np.zeros((width, width), dtype=acc_dtype)
    acc_uu = np.zeros((width, width), dtype=acc_dtype)
    for start in range(0, n, block_rows):
        stop = start + block_rows
        lower_block = lower[start:stop]
        upper_block = upper[start:stop]
        acc_ll += matmul(lower_block.T, lower_block)
        acc_cross += matmul(lower_block.T, upper_block)
        acc_uu += matmul(upper_block.T, upper_block)
    candidates = (acc_ll, acc_cross, acc_cross.T, acc_uu)
    return (np.minimum.reduce(candidates).astype(storage, copy=False),
            np.maximum.reduce(candidates).astype(storage, copy=False))


# --------------------------------------------------------------------------- #
# exact — sign-class decomposition of the interval hull
# --------------------------------------------------------------------------- #
def _exact_product(a: IntervalMatrix, b: IntervalMatrix, matmul: Callable,
                   mixed_chunk_elements: Optional[int] = None,
                   ) -> Tuple[np.ndarray, np.ndarray]:
    # The hull needs per-summand case analysis, so 1-D operands are promoted
    # to matrices and the result squeezed back to numpy.matmul's shape.
    al, au = np.atleast_2d(a.lower), np.atleast_2d(a.upper)
    squeeze_rows = a.lower.ndim == 1
    if b.lower.ndim == 1:
        bl, bu = b.lower[:, np.newaxis], b.upper[:, np.newaxis]
        squeeze_cols = True
    else:
        bl, bu = b.lower, b.upper
        squeeze_cols = False

    # Sign classes per entry.  Degenerate zeros land in the non-negative
    # class; every entry belongs to exactly one class, so each summand of the
    # product is accounted for exactly once below.
    a_pos = al >= 0.0
    a_neg = ~a_pos & (au <= 0.0)
    a_mix = ~(a_pos | a_neg)
    b_pos = bl >= 0.0
    b_neg = ~b_pos & (bu <= 0.0)
    b_mix = ~(b_pos | b_neg)

    # For sign-consistent A entries the extremal B endpoint depends only on
    # the sign of B's own endpoint, so clipping B at zero folds all three B
    # classes into two matmuls per bound:
    #   a >= 0:  lo = al*max(bl,0) + au*min(bl,0),  hi = au*max(bu,0) + al*min(bu,0)
    #   a <= 0:  lo = al*max(bu,0) + au*min(bu,0),  hi = au*max(bl,0) + al*min(bl,0)
    bl_pos, bl_neg = np.maximum(bl, 0.0), np.minimum(bl, 0.0)
    bu_pos, bu_neg = np.maximum(bu, 0.0), np.minimum(bu, 0.0)

    ap_l, ap_u = np.where(a_pos, al, 0.0), np.where(a_pos, au, 0.0)
    lower = matmul(ap_l, bl_pos) + matmul(ap_u, bl_neg)
    upper = matmul(ap_u, bu_pos) + matmul(ap_l, bu_neg)

    an_l, an_u = np.where(a_neg, al, 0.0), np.where(a_neg, au, 0.0)
    lower += matmul(an_l, bu_pos) + matmul(an_u, bu_neg)
    upper += matmul(an_u, bl_pos) + matmul(an_l, bl_neg)

    # Mixed A entries against sign-consistent B entries are still one product
    # per bound:  b >= 0: [al*bu, au*bu];  b <= 0: [au*bl, al*bl].  When A has
    # no mixed entry at all, every one of these operands is the zero matrix,
    # so the four matmuls (and the mixed x mixed correction below) are skipped
    # outright — sign-consistent left operands pay for 8 BLAS calls, not 12.
    a_has_mixed = bool(a_mix.any())
    if a_has_mixed:
        am_l, am_u = np.where(a_mix, al, 0.0), np.where(a_mix, au, 0.0)
        bp_u = np.where(b_pos, bu, 0.0)
        bn_l = np.where(b_neg, bl, 0.0)
        lower += matmul(am_l, bp_u) + matmul(am_u, bn_l)
        upper += matmul(am_u, bp_u) + matmul(am_l, bn_l)

    # Mixed x mixed is the irreducible part: the bound is a per-summand
    # min/max of two products — [min(al*bu, au*bl), max(al*bl, au*bu)] — and
    # cannot be expressed with a constant number of matmuls.  Entries outside
    # the mixed classes are zeroed, so their min/max contributions vanish and
    # no boolean masking is needed inside the chunk loop.  The chunk bound is
    # tunable: ``mixed_chunk_elements`` keyword, else REPRO_MIXED_CHUNK_ELEMENTS.
    if a_has_mixed and b_mix.any():
        bm_l = np.where(b_mix, bl, 0.0)
        bm_u = np.where(b_mix, bu, 0.0)
        columns = np.flatnonzero(a_mix.any(axis=0) & b_mix.any(axis=1))
        n, p = al.shape[0], bl.shape[1]
        chunk = resolve_mixed_chunk_elements(mixed_chunk_elements)
        step = max(1, int(chunk // max(1, n * p)))
        for start in range(0, columns.size, step):
            j = columns[start:start + step]
            a_lo = am_l[:, j][:, :, np.newaxis]
            a_hi = am_u[:, j][:, :, np.newaxis]
            b_lo = bm_l[j][np.newaxis, :, :]
            b_hi = bm_u[j][np.newaxis, :, :]
            lower += np.minimum(a_lo * b_hi, a_hi * b_lo).sum(axis=1)
            upper += np.maximum(a_lo * b_lo, a_hi * b_hi).sum(axis=1)

    if squeeze_cols:
        lower, upper = lower[..., 0], upper[..., 0]
    if squeeze_rows:
        lower, upper = lower[0], upper[0]
    return lower, upper


# --------------------------------------------------------------------------- #
# rump — midpoint-radius fast enclosure (Rump 1999)
# --------------------------------------------------------------------------- #
def _rump_product(a: IntervalMatrix, b: IntervalMatrix, matmul: Callable,
                  mixed_chunk_elements: Optional[int] = None,
                  ) -> Tuple[np.ndarray, np.ndarray]:
    a_center, a_radius = a.midpoint(), a.radius()
    b_center, b_radius = b.midpoint(), b.radius()
    center = matmul(a_center, b_center)
    # |Ac| Br + Ar (|Bc| + Br): three radius products fused into two matmuls.
    radius = matmul(np.abs(a_center), b_radius) + matmul(
        a_radius, np.abs(b_center) + b_radius
    )
    return center - radius, center + radius


def _rump_sparse_product(a, b) -> Tuple[np.ndarray, np.ndarray]:
    """Midpoint-radius enclosure with at least one sparse operand.

    Midpoint/radius of a sparse operand share its sparsity pattern, so the
    whole construction runs in scipy's sparse BLAS.  sparse x sparse keeps the
    endpoints sparse (``center ± radius``); a dense partner makes the result
    dense, as with the scalar product.
    """
    a_center, a_radius = a.midpoint(), a.radius()
    b_center, b_radius = b.midpoint(), b.radius()
    center = a_center @ b_center
    radius = abs(a_center) @ b_radius + a_radius @ (abs(b_center) + b_radius)
    if sp.issparse(center) and sp.issparse(radius):
        return (center - radius).tocsr(), (center + radius).tocsr()
    center = np.asarray(center)
    radius = np.asarray(radius)
    return center - radius, center + radius


def _rump_gram(m, matmul: Callable, block_rows: Optional[int],
               accum_dtype=None) -> Tuple[np.ndarray, np.ndarray]:
    """Gram-product specialization of ``rump``: sparse input, row blocking.

    ``accum_dtype`` (mixed precision) runs the center/radius products and
    sums in that dtype and casts back to the storage dtype; ``None``
    executes entirely in the storage dtype, byte-identical to before.
    """
    storage = m.dtype
    if accum_dtype is not None:
        m = m.astype(accum_dtype)
    if is_sparse_interval(m):
        center, radius = m.midpoint(), m.radius()
        center_t = center.T.tocsr()
        radius_t = radius.T.tocsr()
        gram_center = (center_t @ center).toarray()
        gram_radius = (abs(center_t) @ radius).toarray() + (
            radius_t @ (abs(center) + radius)).toarray()
        return ((gram_center - gram_radius).astype(storage, copy=False),
                (gram_center + gram_radius).astype(storage, copy=False))
    n = m.lower.shape[0]
    if block_rows is None or block_rows >= n:
        lo, hi = _rump_product(m.T, m, matmul)
        return lo.astype(storage, copy=False), hi.astype(storage, copy=False)
    if block_rows < 1:
        raise IntervalError(f"block_rows must be >= 1, got {block_rows}")
    width = m.lower.shape[1]
    acc_dtype = m.lower.dtype if accum_dtype is None else np.dtype(accum_dtype)
    gram_center = np.zeros((width, width), dtype=acc_dtype)
    gram_radius = np.zeros((width, width), dtype=acc_dtype)
    center, radius = m.midpoint(), m.radius()
    for start in range(0, n, block_rows):
        stop = start + block_rows
        center_block = center[start:stop]
        radius_block = radius[start:stop]
        abs_center = np.abs(center_block)
        gram_center += matmul(center_block.T, center_block)
        gram_radius += matmul(abs_center.T, radius_block) + matmul(
            radius_block.T, abs_center + radius_block)
    return ((gram_center - gram_radius).astype(storage, copy=False),
            (gram_center + gram_radius).astype(storage, copy=False))


register_kernel(KernelInfo(
    key="endpoint4",
    summary="paper's four-endpoint-product min/max (Alg. 1); unsound on mixed signs",
    sound=False, tight=False, paper_faithful=True, cost="4 blas", sparse=True,
    _product=_endpoint4_product,
    _sparse_product=_endpoint4_sparse_product,
    _gram=_endpoint4_gram,
))
register_kernel(KernelInfo(
    key="exact",
    summary="sign-class-decomposed interval hull; tightest, O(nmp) on mixed x mixed",
    sound=True, tight=True, paper_faithful=False, cost="12 blas + O(nmp) mixed",
    sparse=False,
    _product=_exact_product,
))
register_kernel(KernelInfo(
    key="rump",
    summary="midpoint-radius enclosure (Rump); sound, 3 blas, slightly wider",
    sound=True, tight=False, paper_faithful=False, cost="3 blas", sparse=True,
    _product=_rump_product,
    _sparse_product=_rump_sparse_product,
    _gram=_rump_gram,
))
