"""Interval algebra substrate.

This subpackage implements the interval-valued data model the paper builds on
(Section 2.1): a scalar :class:`~repro.interval.scalar.Interval` value type,
dense :class:`~repro.interval.array.IntervalMatrix` arrays backed by numpy,
and the interval linear-algebra kernels (interval matrix multiplication,
average replacement, diagonal-core inversion, L2 column normalization) that
the ISVD algorithms are built from.

The interval matrix product is pluggable (:mod:`repro.interval.kernels`):
the paper-faithful ``endpoint4`` construction stays the default, with sound
``exact`` and ``rump`` alternatives selectable wherever a product runs.
"""

from repro.interval.scalar import Interval
from repro.interval.array import IntervalMatrix
from repro.interval.sparse import (
    SparseIntervalMatrix,
    as_interval_operand,
    is_sparse_interval,
)
from repro.interval.kernels import (
    DEFAULT_KERNEL,
    KernelInfo,
    available_kernels,
    get_kernel,
    kernel_infos,
    register_kernel,
    resolve_mixed_chunk_elements,
)
from repro.interval.linalg import (
    interval_matmul,
    interval_gram,
    average_replacement_matrix,
    average_replacement_vector,
    inverse_core,
    norm_mat,
    interval_dot,
    interval_frobenius_norm,
)
from repro.interval.random import (
    random_interval_matrix,
    intervalize,
)

__all__ = [
    "Interval",
    "IntervalMatrix",
    "SparseIntervalMatrix",
    "as_interval_operand",
    "is_sparse_interval",
    "DEFAULT_KERNEL",
    "KernelInfo",
    "available_kernels",
    "get_kernel",
    "kernel_infos",
    "register_kernel",
    "resolve_mixed_chunk_elements",
    "interval_matmul",
    "interval_gram",
    "average_replacement_matrix",
    "average_replacement_vector",
    "inverse_core",
    "norm_mat",
    "interval_dot",
    "interval_frobenius_norm",
    "random_interval_matrix",
    "intervalize",
]
