"""Sparse interval matrices: a CSR endpoint pair sharing one sparsity pattern.

The dense :class:`~repro.interval.array.IntervalMatrix` stores every entry of
both endpoint matrices, which wastes ~99% of its memory (and all of its matmul
FLOPs) on structural zeros for workloads like the paper's rating matrices,
where a cell is the degenerate interval ``[0, 0]`` unless the user actually
rated the item.  :class:`SparseIntervalMatrix` stores only the observed cells:
one CSR sparsity pattern (``indices`` / ``indptr``) shared by two data arrays,
the lower and upper endpoint values.  Cells outside the pattern are the scalar
zero interval, exactly as in the dense rating construction.

The validation contract matches the dense type: every *stored* entry must
satisfy ``lower <= upper`` and carry no NaN (implicit zeros are trivially
valid).  Misordered stored entries raise
:class:`~repro.interval.scalar.IntervalError` unless ``check=False``.

Sparse execution lives in :mod:`repro.interval.kernels`: the ``endpoint4`` and
``rump`` kernels multiply sparse operands through scipy's sparse BLAS
(sparse x dense and sparse x sparse), and :func:`repro.interval.linalg.interval_gram`
computes the ISVD Gram step without ever densifying the input.  The ``exact``
kernel has no sparse path — its mixed-sign correction is inherently dense — and
raises rather than silently materializing the dense operands.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.interval.array import IntervalMatrix
from repro.interval.scalar import IntervalError


def _endpoint_dtype(lower, upper) -> np.dtype:
    """Common endpoint dtype of a pair of operands: float32 only when both
    already are (the opt-in low-precision mode), float64 otherwise — so the
    default path stays byte-identical and integer/list inputs still land on
    float64."""
    if (getattr(lower, "dtype", None) == np.float32
            and getattr(upper, "dtype", None) == np.float32):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _row_keys(matrix: "sp.csr_array") -> np.ndarray:
    """Global row-major cell keys (``row * n_cols + col``) of a CSR pattern."""
    rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64),
                     np.diff(matrix.indptr))
    return rows * np.int64(matrix.shape[1]) + matrix.indices.astype(np.int64)


def _unify_patterns(lower: "sp.csr_array",
                    upper: "sp.csr_array") -> Tuple["sp.csr_array", "sp.csr_array"]:
    """Expand two CSR matrices onto the union of their sparsity patterns.

    Cells present in only one operand get an explicit stored zero in the
    other, so both results share one (sorted) pattern.  scipy's sparse
    addition prunes numerically-zero results, so the union is built from the
    merged cell keys instead.
    """
    shape = lower.shape
    keys_lower = _row_keys(lower)
    keys_upper = _row_keys(upper)
    union = np.union1d(keys_lower, keys_upper)
    lower_data = np.zeros(union.size, dtype=lower.data.dtype)
    lower_data[np.searchsorted(union, keys_lower)] = lower.data
    upper_data = np.zeros(union.size, dtype=upper.data.dtype)
    upper_data[np.searchsorted(union, keys_upper)] = upper.data
    rows = (union // shape[1]).astype(np.int64)
    cols = (union % shape[1]).astype(np.int64)
    pattern = sp.csr_array((lower_data, (rows, cols)), shape=shape)
    pattern.sort_indices()
    return pattern, sp.csr_array((upper_data, pattern.indices, pattern.indptr),
                                 shape=shape)


class SparseIntervalMatrix:
    """A 2-D sparse matrix whose stored entries are closed intervals.

    Parameters
    ----------
    lower:
        Lower endpoint values: a scipy sparse matrix/array or anything
        ``scipy.sparse.csr_array`` accepts.
    upper:
        Upper endpoint values, same shape.  If the two operands' sparsity
        patterns differ, both are expanded onto the union pattern (the missing
        entries become explicit zeros) so one pattern describes both.
    check:
        When True (default), validates that every stored entry satisfies
        ``lower <= upper`` and contains no NaN, raising
        :class:`~repro.interval.scalar.IntervalError` otherwise.

    Examples
    --------
    >>> import scipy.sparse as sp
    >>> m = SparseIntervalMatrix(sp.csr_array([[1.0, 0.0]]), sp.csr_array([[2.0, 0.0]]))
    >>> m.shape, m.nnz
    ((1, 2), 1)
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower, upper, *, check: bool = True):
        dtype = _endpoint_dtype(lower, upper)
        lower = sp.csr_array(lower, dtype=dtype)
        upper = sp.csr_array(upper, dtype=dtype)
        if lower.shape != upper.shape:
            raise IntervalError(
                f"lower/upper shape mismatch: {lower.shape} vs {upper.shape}"
            )
        if lower.ndim != 2:
            raise IntervalError("SparseIntervalMatrix requires 2-D operands")
        for side in (lower, upper):
            side.sum_duplicates()
            side.sort_indices()
        if (lower.nnz != upper.nnz
                or not np.array_equal(lower.indices, upper.indices)
                or not np.array_equal(lower.indptr, upper.indptr)):
            lower, upper = _unify_patterns(lower, upper)
        # Re-point the upper matrix at the lower's pattern arrays so the
        # pattern is physically shared, not merely equal (the csr constructor
        # may copy index arrays, so assign the attributes directly).
        upper.indices = lower.indices
        upper.indptr = lower.indptr
        if check:
            if np.isnan(lower.data).any() or np.isnan(upper.data).any():
                raise IntervalError("interval matrices must not contain NaN")
            if (lower.data > upper.data).any():
                bad = int((lower.data > upper.data).sum())
                raise IntervalError(
                    f"{bad} stored entries have lower > upper; use check=False "
                    "for intermediate matrices"
                )
        self.lower = lower
        self.upper = upper

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, matrix: Union[IntervalMatrix, np.ndarray],
                   *, check: bool = True) -> "SparseIntervalMatrix":
        """Convert a dense interval matrix, dropping ``[0, 0]`` cells.

        A cell enters the pattern when either endpoint is non-zero, so the
        conversion is lossless: ``from_dense(m).to_dense()`` reproduces ``m``
        byte for byte.
        """
        matrix = IntervalMatrix.coerce(matrix)
        if matrix.ndim != 2:
            raise IntervalError("from_dense expects a 2-D interval matrix")
        mask = (matrix.lower != 0.0) | (matrix.upper != 0.0)
        pattern = sp.csr_array(mask)
        pattern.sort_indices()
        # np.nonzero / boolean masking iterate row-major, matching the sorted
        # CSR enumeration order, so the data lines up with the pattern.
        lower = sp.csr_array((matrix.lower[mask], pattern.indices, pattern.indptr),
                             shape=matrix.shape)
        upper = sp.csr_array((matrix.upper[mask], pattern.indices, pattern.indptr),
                             shape=matrix.shape)
        return cls(lower, upper, check=check)

    @classmethod
    def from_coo(cls, rows, cols, lower_data, upper_data,
                 shape: Tuple[int, int], *, check: bool = True) -> "SparseIntervalMatrix":
        """Build from coordinate triplets (duplicates are summed per endpoint)."""
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        dtype = _endpoint_dtype(np.asarray(lower_data), np.asarray(upper_data))
        lower = sp.csr_array((np.asarray(lower_data, dtype=dtype), (rows, cols)),
                             shape=shape)
        upper = sp.csr_array((np.asarray(upper_data, dtype=dtype), (rows, cols)),
                             shape=shape)
        return cls(lower, upper, check=check)

    @classmethod
    def coerce(cls, value) -> "SparseIntervalMatrix":
        """Pass sparse matrices through; convert anything dense via ``from_dense``."""
        if isinstance(value, SparseIntervalMatrix):
            return value
        return cls.from_dense(value)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """Logical (rows, cols) shape."""
        return self.lower.shape

    @property
    def ndim(self) -> int:
        """Always 2."""
        return 2

    @property
    def size(self) -> int:
        """Total number of logical entries (including implicit zeros)."""
        return int(self.shape[0]) * int(self.shape[1])

    @property
    def nnz(self) -> int:
        """Number of stored cells (the shared pattern's size)."""
        return int(self.lower.nnz)

    @property
    def density(self) -> float:
        """Fraction of cells stored explicitly."""
        return self.nnz / self.size if self.size else 0.0

    @property
    def dtype(self) -> np.dtype:
        """Endpoint dtype (shared by the lower and upper data arrays)."""
        return self.lower.dtype

    @property
    def T(self) -> "SparseIntervalMatrix":
        """Transpose (endpointwise)."""
        return SparseIntervalMatrix(self.lower.T.tocsr(), self.upper.T.tocsr(),
                                    check=False)

    def astype(self, dtype, *, outward: bool = False) -> "SparseIntervalMatrix":
        """Endpoint cast to another dtype (no-op when already there).

        Same contract as :meth:`IntervalMatrix.astype`: a narrowing cast
        rounds to nearest (order-preserving but possibly shrinking), and
        ``outward=True`` nudges inward-rounded endpoints one ulp back out
        so the cast encloses the original stored intervals.
        """
        dtype = np.dtype(dtype)
        if dtype == self.lower.dtype:
            return self
        lower_data = self.lower.data.astype(dtype)
        upper_data = self.upper.data.astype(dtype)
        if outward:
            lower_data = np.where(
                lower_data.astype(self.lower.dtype) > self.lower.data,
                np.nextafter(lower_data, dtype.type(-np.inf)), lower_data)
            upper_data = np.where(
                upper_data.astype(self.upper.dtype) < self.upper.data,
                np.nextafter(upper_data, dtype.type(np.inf)), upper_data)
        lower = sp.csr_array((lower_data, self.lower.indices, self.lower.indptr),
                             shape=self.shape)
        upper = sp.csr_array((upper_data, self.lower.indices, self.lower.indptr),
                             shape=self.shape)
        return SparseIntervalMatrix(lower, upper, check=False)

    def copy(self) -> "SparseIntervalMatrix":
        """Deep copy of both endpoint matrices."""
        return SparseIntervalMatrix(self.lower.copy(), self.upper.copy(), check=False)

    def endpoint_nbytes(self) -> int:
        """Bytes of the representation: two data arrays plus one shared pattern.

        This is the sparse side of the memory model documented in the README:
        ``nnz * (2 * 8 + indices itemsize) + indptr`` versus the dense
        ``2 * rows * cols * 8``.
        """
        return int(self.lower.data.nbytes + self.upper.data.nbytes
                   + self.lower.indices.nbytes + self.lower.indptr.nbytes)

    # ------------------------------------------------------------------ #
    # Interval views
    # ------------------------------------------------------------------ #
    def midpoint(self) -> "sp.csr_array":
        """Sparse elementwise midpoints (same pattern as the endpoints)."""
        return sp.csr_array((0.5 * (self.lower.data + self.upper.data),
                             self.lower.indices, self.lower.indptr),
                            shape=self.shape)

    def radius(self) -> "sp.csr_array":
        """Sparse elementwise radii (half spans)."""
        return sp.csr_array((0.5 * (self.upper.data - self.lower.data),
                             self.lower.indices, self.lower.indptr),
                            shape=self.shape)

    def span(self) -> "sp.csr_array":
        """Sparse elementwise spans ``upper - lower``."""
        return sp.csr_array((self.upper.data - self.lower.data,
                             self.lower.indices, self.lower.indptr),
                            shape=self.shape)

    def is_valid(self) -> bool:
        """True when every stored entry satisfies ``lower <= upper``."""
        return bool((self.lower.data <= self.upper.data).all())

    def max_span(self) -> float:
        """Largest span over all entries (implicit zeros have span 0)."""
        if self.nnz == 0:
            return 0.0
        return float(max((self.upper.data - self.lower.data).max(), 0.0))

    def mean_span(self) -> float:
        """Average span over all logical entries."""
        if self.size == 0:
            return 0.0
        return float((self.upper.data - self.lower.data).sum() / self.size)

    # ------------------------------------------------------------------ #
    # Conversions / slicing
    # ------------------------------------------------------------------ #
    def to_dense(self) -> IntervalMatrix:
        """Materialize the full dense :class:`IntervalMatrix`."""
        return IntervalMatrix(self.lower.toarray(), self.upper.toarray(),
                              check=False)

    def rows(self, indices) -> "SparseIntervalMatrix":
        """Sub-matrix of the selected rows (still sparse)."""
        indices = np.asarray(indices)
        return SparseIntervalMatrix(self.lower[indices], self.upper[indices],
                                    check=False)

    def row_pattern(self, index: int) -> np.ndarray:
        """Column indices of the cells stored in one row."""
        start, stop = self.lower.indptr[index], self.lower.indptr[index + 1]
        return self.lower.indices[start:stop]

    def __matmul__(self, other):
        from repro.interval.linalg import interval_matmul

        return interval_matmul(self, other)

    def __repr__(self) -> str:
        return (
            f"SparseIntervalMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4g}, valid={self.is_valid()})"
        )


IntervalOperand = Union[SparseIntervalMatrix, IntervalMatrix, np.ndarray]


def is_sparse_interval(value) -> bool:
    """True for :class:`SparseIntervalMatrix` operands."""
    return isinstance(value, SparseIntervalMatrix)


def as_interval_operand(value: IntervalOperand) -> Union[SparseIntervalMatrix, IntervalMatrix]:
    """Coerce to an interval operand, preserving sparsity.

    Sparse interval matrices pass through untouched; everything else goes
    through :meth:`IntervalMatrix.coerce` (scalar ndarrays become degenerate
    dense intervals).  This is the coercion every sparse-aware entry point
    (``interval_matmul``, ``interval_gram``, ``isvd``, the experiment engine)
    uses in place of a bare ``IntervalMatrix.coerce``.
    """
    if isinstance(value, SparseIntervalMatrix):
        return value
    return IntervalMatrix.coerce(value)
