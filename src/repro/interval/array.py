"""Dense interval-valued matrices backed by numpy arrays.

An :class:`IntervalMatrix` stores the elementwise minimum matrix ``lower``
(``M_*`` in the paper) and maximum matrix ``upper`` (``M^*``), and vectorizes
the interval arithmetic rules of Section 2.1 over whole matrices.  All the
ISVD/IPMF algorithms in :mod:`repro.core` consume and produce this type.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro.interval.scalar import Interval, IntervalError

ArrayLike = Union[np.ndarray, Sequence[Sequence[float]], Sequence[float], float]


def _endpoint_array(values: ArrayLike) -> np.ndarray:
    """Coerce one endpoint operand, preserving float32.

    float32 arrays pass through untouched (the opt-in low-precision mode);
    every other input — float64, integers, nested lists — lands on float64
    exactly as before, so the default path stays byte-identical.
    """
    values = np.asarray(values)
    if values.dtype == np.float32:
        return values
    return np.asarray(values, dtype=float)


def _common_endpoints(lower: ArrayLike, upper: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce an endpoint pair to a common dtype.

    The pair stays float32 only when *both* operands are float32; a mixed
    pair promotes to float64 (numpy's own promotion rule), so an interval
    matrix never silently mixes endpoint precisions.
    """
    lower = np.asarray(lower)
    upper = np.asarray(upper)
    if lower.dtype == np.float32 and upper.dtype == np.float32:
        return lower, upper
    return np.asarray(lower, dtype=float), np.asarray(upper, dtype=float)


class IntervalMatrix:
    """A dense matrix whose entries are closed intervals.

    Parameters
    ----------
    lower:
        Array of minimum values, any shape.
    upper:
        Array of maximum values, same shape as ``lower``.
    check:
        When True (default), validates ``lower <= upper`` everywhere and raises
        :class:`~repro.interval.scalar.IntervalError` otherwise.  Algorithms
        that intentionally carry *misordered* intermediate matrices (the paper
        notes SVD of min/max components may produce them) pass ``check=False``
        and correct the ordering later via average replacement.  Scalar
        indexing normalizes misordered entries (swapping the endpoints) only on
        such unchecked matrices; on a validated matrix it raises instead, so
        invalid in-place mutations are surfaced rather than masked.

    Examples
    --------
    >>> m = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.0]])
    >>> m.shape
    (1, 2)
    >>> m.midpoint()
    array([[1.25, 2.  ]])
    """

    __slots__ = ("lower", "upper", "_unchecked")
    __array_priority__ = 100  # make ndarray defer to our reflected operators

    def __init__(self, lower: ArrayLike, upper: ArrayLike, *, check: bool = True):
        lower, upper = _common_endpoints(lower, upper)
        if lower.shape != upper.shape:
            raise IntervalError(
                f"lower/upper shape mismatch: {lower.shape} vs {upper.shape}"
            )
        if check:
            if np.isnan(lower).any() or np.isnan(upper).any():
                raise IntervalError("interval matrices must not contain NaN")
            if (lower > upper).any():
                bad = int((lower > upper).sum())
                raise IntervalError(
                    f"{bad} entries have lower > upper; use check=False for "
                    "intermediate matrices and correct them with average replacement"
                )
        self.lower = lower
        self.upper = upper
        self._unchecked = not check

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scalar(cls, values: ArrayLike) -> "IntervalMatrix":
        """Wrap a scalar matrix as degenerate intervals ``[x, x]``."""
        values = _endpoint_array(values)
        return cls(values.copy(), values.copy())

    @classmethod
    def from_center(cls, center: ArrayLike, radius: ArrayLike) -> "IntervalMatrix":
        """Build from a midpoint matrix and a non-negative radius matrix."""
        center, radius = _common_endpoints(center, radius)
        if (radius < 0).any():
            raise IntervalError("radius matrix must be non-negative")
        return cls(center - radius, center + radius)

    @classmethod
    def from_intervals(cls, entries: Sequence[Sequence[Interval]]) -> "IntervalMatrix":
        """Build from a nested sequence of :class:`Interval` objects."""
        rows = len(entries)
        cols = len(entries[0]) if rows else 0
        lower = np.empty((rows, cols), dtype=float)
        upper = np.empty((rows, cols), dtype=float)
        for i, row in enumerate(entries):
            if len(row) != cols:
                raise IntervalError("ragged interval matrix")
            for j, entry in enumerate(row):
                entry = Interval.coerce(entry)
                lower[i, j] = entry.lo
                upper[i, j] = entry.hi
        return cls(lower, upper)

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype=float) -> "IntervalMatrix":
        """All-zero (scalar) interval matrix of the given shape."""
        return cls(np.zeros(shape, dtype=dtype), np.zeros(shape, dtype=dtype))

    @classmethod
    def coerce(cls, value: Union["IntervalMatrix", ArrayLike]) -> "IntervalMatrix":
        """Coerce a scalar ndarray (or nested list) into an :class:`IntervalMatrix`."""
        if isinstance(value, IntervalMatrix):
            return value
        return cls.from_scalar(value)

    def _derive(self, lower: np.ndarray, upper: np.ndarray) -> "IntervalMatrix":
        """Endpoint view/copy of this matrix, inheriting its validation state."""
        result = IntervalMatrix(lower, upper, check=False)
        result._unchecked = self._unchecked
        return result

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape shared by the lower and upper endpoint arrays."""
        return self.lower.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.lower.ndim

    @property
    def size(self) -> int:
        """Total number of entries."""
        return self.lower.size

    @property
    def dtype(self) -> np.dtype:
        """Endpoint dtype (shared by ``lower`` and ``upper``)."""
        return self.lower.dtype

    @property
    def T(self) -> "IntervalMatrix":
        """Transpose (endpointwise)."""
        return self._derive(self.lower.T, self.upper.T)

    def astype(self, dtype, *, outward: bool = False) -> "IntervalMatrix":
        """Endpoint cast to another dtype (no-op when already there).

        A narrowing cast (float64 -> float32) rounds each endpoint to
        nearest, which keeps ``lower <= upper`` (rounding is monotone) but
        may *shrink* the interval — a rounded-up lower or rounded-down
        upper excludes values the original contained.  Pass
        ``outward=True`` to nudge any endpoint that moved inward one ulp
        back out (:func:`numpy.nextafter`), making the cast itself a true
        enclosure of the original intervals.
        """
        dtype = np.dtype(dtype)
        if dtype == self.lower.dtype:
            return self
        lower = self.lower.astype(dtype)
        upper = self.upper.astype(dtype)
        if outward:
            lower = np.where(lower.astype(self.lower.dtype) > self.lower,
                             np.nextafter(lower, dtype.type(-np.inf)), lower)
            upper = np.where(upper.astype(self.upper.dtype) < self.upper,
                             np.nextafter(upper, dtype.type(np.inf)), upper)
        return self._derive(lower, upper)

    def copy(self) -> "IntervalMatrix":
        """Deep copy of both endpoint arrays."""
        return self._derive(self.lower.copy(), self.upper.copy())

    def midpoint(self) -> np.ndarray:
        """Elementwise midpoints ``(lower + upper) / 2`` (the ``M_avg`` matrix)."""
        return 0.5 * (self.lower + self.upper)

    def span(self) -> np.ndarray:
        """Elementwise spans ``upper - lower`` (Definition 2)."""
        return self.upper - self.lower

    def radius(self) -> np.ndarray:
        """Elementwise radii (half spans)."""
        return 0.5 * (self.upper - self.lower)

    def is_scalar(self, tol: float = 0.0) -> bool:
        """True when every entry is (numerically) degenerate."""
        return bool(np.all(self.upper - self.lower <= tol))

    def is_valid(self) -> bool:
        """True when every entry satisfies ``lower <= upper``."""
        return bool(np.all(self.lower <= self.upper))

    def misordered_mask(self) -> np.ndarray:
        """Boolean mask of entries with ``lower > upper``."""
        return self.lower > self.upper

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def __getitem__(self, key) -> Union["IntervalMatrix", Interval]:
        """Scalar keys return an :class:`Interval`; everything else a sub-matrix.

        Misordered entries (``lower > upper``) are normalized by swapping the
        endpoints **only** on matrices constructed with ``check=False`` — the
        intermediate matrices whose misordering is expected and later corrected
        by average replacement.  On a validated matrix a misordered entry can
        only mean the endpoint arrays were mutated into an invalid state, so
        scalar access raises instead of silently masking the bug.
        """
        lower = self.lower[key]
        upper = self.upper[key]
        if np.isscalar(lower) or lower.ndim == 0:
            lo, hi = float(lower), float(upper)
            if lo > hi:
                if not self._unchecked:
                    raise IntervalError(
                        f"entry {key} has lower={lo} > upper={hi} on a validated "
                        "matrix; its endpoint arrays were mutated inconsistently"
                    )
                lo, hi = hi, lo
            return Interval(lo, hi)
        return self._derive(lower, upper)

    def __setitem__(self, key, value) -> None:
        if isinstance(value, Interval):
            self.lower[key] = value.lo
            self.upper[key] = value.hi
        elif isinstance(value, IntervalMatrix):
            self.lower[key] = value.lower
            self.upper[key] = value.upper
        else:
            value = np.asarray(value, dtype=self.lower.dtype)
            self.lower[key] = value
            self.upper[key] = value

    def row(self, index: int) -> "IntervalMatrix":
        """Row ``index`` as a 1-D interval vector."""
        return self._derive(self.lower[index, :], self.upper[index, :])

    def column(self, index: int) -> "IntervalMatrix":
        """Column ``index`` as a 1-D interval vector."""
        return self._derive(self.lower[:, index], self.upper[:, index])

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["IntervalMatrix", ArrayLike]) -> "IntervalMatrix":
        other = IntervalMatrix.coerce(other)
        return IntervalMatrix(self.lower + other.lower, self.upper + other.upper, check=False)

    def __radd__(self, other: ArrayLike) -> "IntervalMatrix":
        return self.__add__(other)

    def __sub__(self, other: Union["IntervalMatrix", ArrayLike]) -> "IntervalMatrix":
        other = IntervalMatrix.coerce(other)
        return IntervalMatrix(self.lower - other.upper, self.upper - other.lower, check=False)

    def __rsub__(self, other: ArrayLike) -> "IntervalMatrix":
        return IntervalMatrix.coerce(other).__sub__(self)

    def __neg__(self) -> "IntervalMatrix":
        return IntervalMatrix(-self.upper, -self.lower, check=False)

    def __mul__(self, other: Union["IntervalMatrix", ArrayLike]) -> "IntervalMatrix":
        """Elementwise (Hadamard) interval multiplication."""
        other = IntervalMatrix.coerce(other)
        candidates = np.stack(
            [
                self.lower * other.lower,
                self.lower * other.upper,
                self.upper * other.lower,
                self.upper * other.upper,
            ]
        )
        return IntervalMatrix(candidates.min(axis=0), candidates.max(axis=0), check=False)

    def __rmul__(self, other: ArrayLike) -> "IntervalMatrix":
        return self.__mul__(other)

    def scale(self, factor: float) -> "IntervalMatrix":
        """Multiply every entry by a scalar."""
        lower = self.lower * factor
        upper = self.upper * factor
        if factor < 0:
            lower, upper = upper, lower
        return IntervalMatrix(lower, upper, check=False)

    def square(self) -> "IntervalMatrix":
        """Elementwise square as a range image (tighter than ``self * self``)."""
        lo_sq = self.lower**2
        hi_sq = self.upper**2
        straddles = (self.lower < 0) & (self.upper > 0)
        lower = np.minimum(lo_sq, hi_sq)
        upper = np.maximum(lo_sq, hi_sq)
        lower = np.where(straddles, 0.0, lower)
        return IntervalMatrix(lower, upper, check=False)

    # ------------------------------------------------------------------ #
    # Matrix products (delegated to linalg to avoid import cycles at call time)
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: Union["IntervalMatrix", ArrayLike]) -> "IntervalMatrix":
        from repro.interval.linalg import interval_matmul

        return interval_matmul(self, IntervalMatrix.coerce(other))

    def __rmatmul__(self, other: ArrayLike) -> "IntervalMatrix":
        from repro.interval.linalg import interval_matmul

        return interval_matmul(IntervalMatrix.coerce(other), self)

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def frobenius_norm(self) -> Interval:
        """Interval enclosing the Frobenius norm over all member matrices."""
        squares = self.square()
        return Interval(
            float(np.sqrt(squares.lower.sum())), float(np.sqrt(squares.upper.sum()))
        )

    def sum(self) -> Interval:
        """Interval sum of all entries."""
        return Interval(float(self.lower.sum()), float(self.upper.sum()))

    def max_span(self) -> float:
        """Largest span over all entries (a global imprecision measure)."""
        if self.size == 0:
            return 0.0
        return float((self.upper - self.lower).max())

    def mean_span(self) -> float:
        """Average span over all entries."""
        if self.size == 0:
            return 0.0
        return float((self.upper - self.lower).mean())

    # ------------------------------------------------------------------ #
    # Set-style helpers
    # ------------------------------------------------------------------ #
    def contains(self, other: Union["IntervalMatrix", ArrayLike], tol: float = 0.0) -> bool:
        """True when the other matrix is elementwise contained in this one."""
        other = IntervalMatrix.coerce(other)
        return bool(
            np.all(self.lower - tol <= other.lower) and np.all(other.upper <= self.upper + tol)
        )

    def hull(self, other: "IntervalMatrix") -> "IntervalMatrix":
        """Elementwise smallest enclosing intervals of the two operands."""
        other = IntervalMatrix.coerce(other)
        return IntervalMatrix(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
            check=False,
        )

    def clip_nonnegative(self) -> "IntervalMatrix":
        """Clamp both endpoints below at zero (used by NMF-style algorithms)."""
        return IntervalMatrix(
            np.clip(self.lower, 0.0, None), np.clip(self.upper, 0.0, None), check=False
        )

    def sorted_endpoints(self) -> "IntervalMatrix":
        """Return a valid interval matrix by swapping misordered endpoints."""
        return IntervalMatrix(
            np.minimum(self.lower, self.upper), np.maximum(self.lower, self.upper)
        )

    # ------------------------------------------------------------------ #
    # Comparisons / conversions
    # ------------------------------------------------------------------ #
    def allclose(self, other: "IntervalMatrix", atol: float = 1e-8, rtol: float = 1e-5) -> bool:
        """Endpointwise :func:`numpy.allclose` against another interval matrix."""
        other = IntervalMatrix.coerce(other)
        return bool(
            np.allclose(self.lower, other.lower, atol=atol, rtol=rtol)
            and np.allclose(self.upper, other.upper, atol=atol, rtol=rtol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalMatrix):
            return NotImplemented
        return bool(
            np.array_equal(self.lower, other.lower) and np.array_equal(self.upper, other.upper)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("IntervalMatrix is mutable and unhashable")

    def to_intervals(self) -> list:
        """Nested list of :class:`Interval` objects (2-D matrices only)."""
        if self.ndim != 2:
            raise IntervalError("to_intervals() requires a 2-D matrix")
        return [
            [Interval(float(self.lower[i, j]), float(self.upper[i, j]))
             for j in range(self.shape[1])]
            for i in range(self.shape[0])
        ]

    def __repr__(self) -> str:
        return (
            f"IntervalMatrix(shape={self.shape}, mean_span={self.mean_span():.4g}, "
            f"valid={self.is_valid()})"
        )


def stack_columns(columns: Iterable[IntervalMatrix]) -> IntervalMatrix:
    """Stack 1-D interval vectors as the columns of a new interval matrix."""
    columns = list(columns)
    if not columns:
        raise IntervalError("stack_columns() requires at least one column")
    lower = np.column_stack([c.lower for c in columns])
    upper = np.column_stack([c.upper for c in columns])
    return IntervalMatrix(lower, upper, check=False)
