"""Interval linear-algebra kernels used by the ISVD family.

Implements the supporting routines of the paper's supplementary material:

* Algorithm 1  — interval-valued matrix multiplication (:func:`interval_matmul`)
* Algorithm 2  — vector average replacement (:func:`average_replacement_vector`)
* Algorithm 3  — matrix average replacement (:func:`average_replacement_matrix`)
* Algorithm 4  — inverse of a non-negative interval diagonal core (:func:`inverse_core`)
* Algorithm 5  — L2-norm column normalization (:func:`norm_mat`)

plus interval dot products, interval Frobenius norms, and the condition-number
guarded (pseudo-)inverse used by ISVD3/ISVD4 (Section 4.4.2.2).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.interval.array import IntervalMatrix
from repro.interval.kernels import KernelLike, get_kernel
from repro.interval.scalar import Interval, IntervalError
from repro.interval.sparse import SparseIntervalMatrix, as_interval_operand

MatrixLike = Union[IntervalMatrix, SparseIntervalMatrix, np.ndarray]

#: Singular values below this fraction of the largest one are zeroed when the
#: paper's pseudo-inverse fallback is used (Section 4.4.2.2 uses 0.1).
PSEUDO_INVERSE_CUTOFF = 0.1

#: Condition-number threshold above which ISVD3/4 switch to the pseudo-inverse.
DEFAULT_CONDITION_THRESHOLD = 1e8


def interval_matmul(a: MatrixLike, b: MatrixLike, matmul=None,
                    kernel: KernelLike = None,
                    mixed_chunk_elements: Optional[int] = None,
                    ) -> Union[IntervalMatrix, SparseIntervalMatrix]:
    """Interval-valued matrix product ``a @ b`` (supplementary Algorithm 1).

    Operands may be dense interval matrices, plain scalar ndarrays, or
    :class:`~repro.interval.sparse.SparseIntervalMatrix` instances.  The
    default construction is the paper's pseudo-code: the elementwise min/max
    over the four endpoint-matrix products.

    ``matmul`` overrides the scalar product primitive (default
    ``numpy.matmul``); the serving layer passes a batch-size-invariant kernel
    so micro-batched queries reproduce unbatched results bit for bit.  Sparse
    operands run in scipy's sparse BLAS instead, on the kernels that support
    it (``endpoint4`` and ``rump``; ``exact`` raises).  When *both* operands
    are sparse the result is a :class:`SparseIntervalMatrix`; a dense partner
    makes the result dense.

    ``kernel`` selects the interval-product kernel from
    :mod:`repro.interval.kernels` (a key or a
    :class:`~repro.interval.kernels.KernelInfo`): ``"endpoint4"`` (default),
    ``"exact"``, or ``"rump"``.  ``mixed_chunk_elements`` tunes the ``exact``
    kernel's mixed x mixed chunk size (default: the
    ``REPRO_MIXED_CHUNK_ELEMENTS`` environment variable, else ~4M elements).

    Notes
    -----
    The default four-product construction is **not** a sound enclosure of the
    product range in general: min/max over the four endpoint products is
    taken *after* the sum over the inner dimension, so cancellations between
    summands of opposite sign shrink the reported interval below the true
    range.  ``[[-1,1], [-1,1]] @ [[2], [-2]]`` returns the degenerate
    ``[0, 0]`` while the achievable range is ``[-4, 4]``.  The construction
    is exact precisely on sign-consistent operands (no entry of either
    operand straddling zero with a mixed-sign partner); it is kept as the
    default because it is what the original authors compute, so reproduction
    figures match the paper.  Pass ``kernel="exact"`` for the true hull or
    ``kernel="rump"`` for a fast sound enclosure.
    """
    a = as_interval_operand(a)
    b = as_interval_operand(b)
    if matmul is None:
        matmul = np.matmul
    if a.shape[-1] != b.shape[0]:
        raise IntervalError(
            f"incompatible shapes for interval matmul: {a.shape} @ {b.shape}"
        )
    lower, upper = get_kernel(kernel).product(
        a, b, matmul=matmul, mixed_chunk_elements=mixed_chunk_elements)
    if sp.issparse(lower) and sp.issparse(upper):
        return SparseIntervalMatrix(lower, upper, check=False)
    return IntervalMatrix(lower, upper, check=False)


def interval_gram(matrix: MatrixLike, kernel: KernelLike = None, matmul=None,
                  block_rows: Optional[int] = None,
                  accum_dtype=None) -> IntervalMatrix:
    """Dense interval Gram matrix ``matrix.T @ matrix`` (the ISVD2/3/4 step).

    The result is always a dense ``m x m`` :class:`IntervalMatrix` (the
    eigen-decomposition that consumes it needs dense endpoint arrays), but
    the *computation* adapts to the input:

    * a :class:`~repro.interval.sparse.SparseIntervalMatrix` runs its
      endpoint products through scipy's sparse BLAS — the ``n x m`` input is
      never densified, so an ``n`` of 100k rows at 1% density costs megabytes
      and milliseconds instead of gigabytes and minutes;
    * a dense matrix with ``block_rows`` set accumulates each endpoint
      product over row chunks, bounding the live temporaries to four
      ``m x m`` accumulators plus one chunk (see
      :meth:`~repro.interval.kernels.KernelInfo.gram`).

    With ``block_rows=None`` and a dense input this is byte-identical to
    ``interval_matmul(matrix.T, matrix, kernel=kernel)``.

    ``accum_dtype`` opts into mixed-precision accumulation: a float32 input
    runs its endpoint products in ``accum_dtype`` (float64 for the ``mixed``
    policy) and the result is cast back to the storage dtype, with the sound
    kernels' enclosure inflation applied after the downcast.  ``None`` (the
    default) accumulates in the input's own dtype.
    """
    matrix = as_interval_operand(matrix)
    if matrix.ndim != 2:
        raise IntervalError("interval_gram expects a 2-D interval matrix")
    lower, upper = get_kernel(kernel).gram(matrix, matmul=matmul,
                                           block_rows=block_rows,
                                           accum_dtype=accum_dtype)
    return IntervalMatrix(np.asarray(lower), np.asarray(upper), check=False)


def interval_dot(x: MatrixLike, y: MatrixLike, kernel: KernelLike = "exact") -> Interval:
    """Interval dot product of two 1-D interval vectors.

    The default kernel is ``"exact"`` — unlike the matrix product, the dot
    product has always been computed here as the sum of per-element interval
    products, which *is* the exact hull, so the default is unchanged.  Pass
    ``kernel="endpoint4"`` for the (unsound) four-endpoint construction or
    ``"rump"`` for the midpoint-radius enclosure.
    """
    x = IntervalMatrix.coerce(x)
    y = IntervalMatrix.coerce(y)
    if x.shape != y.shape or x.ndim != 1:
        raise IntervalError(f"interval_dot expects matching 1-D vectors, got {x.shape}, {y.shape}")
    lower, upper = get_kernel(kernel).product(x, y)
    return Interval(float(lower), float(upper))


def interval_self_dot(x: MatrixLike) -> Interval:
    """Dot product of an interval vector with itself (Theorem 2 semantics).

    Uses the range image of the squares, so the result is scalar exactly when
    the input vector is scalar — matching the paper's Theorem 2.
    """
    x = IntervalMatrix.coerce(x)
    if x.ndim != 1:
        raise IntervalError("interval_self_dot expects a 1-D vector")
    squares = x.square()
    return Interval(float(squares.lower.sum()), float(squares.upper.sum()))


def interval_frobenius_norm(m: MatrixLike) -> Interval:
    """Interval Frobenius norm of an interval matrix."""
    return IntervalMatrix.coerce(m).frobenius_norm()


def average_replacement_vector(v: IntervalMatrix) -> IntervalMatrix:
    """Replace misordered interval entries of a vector by their average (Alg. 2)."""
    if v.ndim != 1:
        raise IntervalError("average_replacement_vector expects a 1-D vector")
    return average_replacement_matrix(v)


def average_replacement_matrix(m: IntervalMatrix) -> IntervalMatrix:
    """Replace misordered interval entries by their average (Alg. 3).

    Entries with ``lower > upper`` — which can legitimately appear when the
    minimum and maximum components are decomposed independently — are replaced
    by the degenerate interval at their midpoint.  Valid entries are untouched.
    """
    misordered = m.lower > m.upper
    if not misordered.any():
        return IntervalMatrix(m.lower.copy(), m.upper.copy())
    midpoint = 0.5 * (m.lower + m.upper)
    lower = np.where(misordered, midpoint, m.lower)
    upper = np.where(misordered, midpoint, m.upper)
    return IntervalMatrix(lower, upper)


def inverse_core(sigma: IntervalMatrix) -> np.ndarray:
    """Scalar inverse of a non-negative interval diagonal core matrix (Alg. 4).

    The paper shows (Section 4.4.2.1) that the epsilon-optimal inverse of an
    interval diagonal entry ``[s_lo, s_hi]`` is the *scalar* ``2 / (s_lo + s_hi)``;
    zero diagonal entries invert to zero, and half-zero entries fall back to
    ``2 / s`` on the non-zero endpoint.

    Each diagonal entry must be a valid interval (``lo <= hi``): a misordered
    entry like ``[5, 0]`` is not an interval at all, and silently averaging
    its endpoints would hide an upstream alignment/decomposition bug, so it
    raises :class:`~repro.interval.scalar.IntervalError` instead.
    """
    if sigma.ndim != 2 or sigma.shape[0] != sigma.shape[1]:
        raise IntervalError(f"inverse_core expects a square matrix, got {sigma.shape}")
    r = sigma.shape[0]
    inverse = np.zeros((r, r), dtype=float)
    lo = np.diag(sigma.lower)
    hi = np.diag(sigma.upper)
    misordered = lo > hi
    if misordered.any():
        raise IntervalError(
            f"{int(misordered.sum())} diagonal entries have lower > upper; "
            "correct the core with average replacement before inverting it"
        )
    if (lo < 0).any() or (hi < 0).any():
        raise IntervalError("inverse_core expects a non-negative diagonal core")
    for i in range(r):
        if hi[i] == 0.0:  # lo <= hi and lo >= 0, so the whole entry is zero
            inverse[i, i] = 0.0
        elif lo[i] == 0.0:
            inverse[i, i] = 2.0 / hi[i]
        else:
            inverse[i, i] = 2.0 / (lo[i] + hi[i])
    return inverse


def norm_mat(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """L2-normalize the columns of a scalar matrix (Alg. 5).

    Returns
    -------
    normalized:
        The matrix with each column scaled to unit L2 norm (zero columns are
        left untouched).
    column_norms:
        The original column norms, used by the decomposition targets to rescale
        the core matrix.
    """
    a = np.asarray(a)
    if a.dtype != np.float32:
        a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise IntervalError(f"norm_mat expects a 2-D matrix, got ndim={a.ndim}")
    column_norms = np.linalg.norm(a, axis=0)
    safe = np.where(column_norms == 0.0, 1.0, column_norms)
    return a / safe, column_norms


def safe_inverse(
    a: np.ndarray,
    condition_threshold: float = DEFAULT_CONDITION_THRESHOLD,
    cutoff: float = PSEUDO_INVERSE_CUTOFF,
) -> np.ndarray:
    """Invert a scalar matrix, falling back to a truncated pseudo-inverse.

    Mirrors Section 4.4.2.2: if the matrix is non-square or ill-conditioned
    (condition number above ``condition_threshold``), compute a Moore–Penrose
    pseudo-inverse in which singular values below ``cutoff`` times the largest
    singular value are treated as zero.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise IntervalError("safe_inverse expects a 2-D matrix")
    square = a.shape[0] == a.shape[1]
    if square:
        condition = np.linalg.cond(a)
        if np.isfinite(condition) and condition <= condition_threshold:
            return np.linalg.inv(a)
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    if s.size == 0:
        return a.T.copy()
    threshold = cutoff * s[0]
    s_inv = np.where(s > threshold, 1.0 / np.where(s > threshold, s, 1.0), 0.0)
    return vt.T @ np.diag(s_inv) @ u.T


def diag_interval(values: IntervalMatrix) -> IntervalMatrix:
    """Build an interval diagonal matrix from a 1-D interval vector."""
    if values.ndim != 1:
        raise IntervalError("diag_interval expects a 1-D interval vector")
    r = values.shape[0]
    lower = np.zeros((r, r), dtype=values.lower.dtype)
    upper = np.zeros((r, r), dtype=values.upper.dtype)
    np.fill_diagonal(lower, values.lower)
    np.fill_diagonal(upper, values.upper)
    return IntervalMatrix(lower, upper, check=False)


def diagonal_of(m: IntervalMatrix) -> IntervalMatrix:
    """Extract the diagonal of an interval matrix as a 1-D interval vector."""
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise IntervalError("diagonal_of expects a square matrix")
    return IntervalMatrix(np.diag(m.lower).copy(), np.diag(m.upper).copy(), check=False)


def interval_euclidean_distance(a: IntervalMatrix, b: IntervalMatrix) -> float:
    """Interval Euclidean distance used by the paper's NN classification.

    ``dist(a, b) = sqrt(sum_i (a_lo[i] - b_lo[i])^2 + (a_hi[i] - b_hi[i])^2)``
    (Section 6.1.2).  Both operands are 1-D interval vectors.
    """
    a = IntervalMatrix.coerce(a)
    b = IntervalMatrix.coerce(b)
    if a.shape != b.shape:
        raise IntervalError(f"distance requires matching shapes: {a.shape} vs {b.shape}")
    return float(
        np.sqrt(((a.lower - b.lower) ** 2).sum() + ((a.upper - b.upper) ** 2).sum())
    )
