"""Scalar interval type and interval arithmetic (paper Section 2.1).

An interval ``a = [a_lo, a_hi]`` with ``a_lo <= a_hi`` represents an imprecise
observation.  The paper adopts Sunaga-style interval arithmetic:

* addition:        ``[a_lo, a_hi] + [b_lo, b_hi] = [a_lo + b_lo, a_hi + b_hi]``
* subtraction:     ``[a_lo, a_hi] - [b_lo, b_hi] = [a_lo - b_hi, a_hi - b_lo]``
* multiplication:  the min/max over the four endpoint products
* division:        multiplication by the reciprocal interval (when 0 is not
  contained in the divisor)

The class is intentionally a small immutable value type; bulk numeric work is
done by :class:`repro.interval.array.IntervalMatrix`, which vectorizes the same
rules over numpy arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union

Number = Union[int, float]


class IntervalError(ValueError):
    """Raised for invalid interval constructions or undefined operations."""


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[lo, hi]``.

    Parameters
    ----------
    lo:
        Minimum value of the interval.
    hi:
        Maximum value of the interval.  Must satisfy ``hi >= lo``.

    Examples
    --------
    >>> a = Interval(1.0, 2.0)
    >>> b = Interval(3.0, 5.0)
    >>> (a + b).as_tuple()
    (4.0, 7.0)
    >>> (a * b).as_tuple()
    (3.0, 10.0)
    >>> a.span
    1.0
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        lo = float(self.lo)
        hi = float(self.hi)
        if math.isnan(lo) or math.isnan(hi):
            raise IntervalError("interval endpoints must not be NaN")
        if lo > hi:
            raise IntervalError(f"invalid interval: lo={lo} > hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scalar(cls, value: Number) -> "Interval":
        """Build a degenerate (scalar) interval ``[value, value]``."""
        return cls(float(value), float(value))

    @classmethod
    def from_center(cls, center: Number, radius: Number) -> "Interval":
        """Build an interval from its midpoint and non-negative radius."""
        radius = float(radius)
        if radius < 0:
            raise IntervalError(f"radius must be non-negative, got {radius}")
        center = float(center)
        return cls(center - radius, center + radius)

    @classmethod
    def coerce(cls, value: Union["Interval", Number, Tuple[Number, Number]]) -> "Interval":
        """Coerce a scalar, 2-tuple, or interval into an :class:`Interval`."""
        if isinstance(value, Interval):
            return value
        if isinstance(value, tuple):
            if len(value) != 2:
                raise IntervalError(f"expected a (lo, hi) pair, got {value!r}")
            return cls(float(value[0]), float(value[1]))
        return cls.from_scalar(value)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def span(self) -> float:
        """Interval span ``hi - lo`` (paper Definition 2)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Interval midpoint ``(lo + hi) / 2``."""
        return 0.5 * (self.lo + self.hi)

    @property
    def radius(self) -> float:
        """Half the span."""
        return 0.5 * (self.hi - self.lo)

    @property
    def is_scalar(self) -> bool:
        """True when the interval is degenerate (``lo == hi``)."""
        return self.lo == self.hi

    def as_tuple(self) -> Tuple[float, float]:
        """Return the ``(lo, hi)`` endpoint pair."""
        return (self.lo, self.hi)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def contains(self, value: Union[Number, "Interval"]) -> bool:
        """True if a scalar lies in the interval, or an interval is a subset."""
        if isinstance(value, Interval):
            return self.lo <= value.lo and value.hi <= self.hi
        value = float(value)
        return self.lo <= value <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one point."""
        other = Interval.coerce(other)
        return self.lo <= other.hi and other.lo <= self.hi

    def __contains__(self, value: Union[Number, "Interval"]) -> bool:
        return self.contains(value)

    # ------------------------------------------------------------------ #
    # Arithmetic (Definition 3)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __radd__(self, other: Number) -> "Interval":
        return self.__add__(other)

    def __sub__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __rsub__(self, other: Number) -> "Interval":
        return Interval.coerce(other).__sub__(self)

    def __mul__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    def __rmul__(self, other: Number) -> "Interval":
        return self.__mul__(other)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __truediv__(self, other: Union["Interval", Number]) -> "Interval":
        other = Interval.coerce(other)
        if other.contains(0.0):
            raise IntervalError(f"division by an interval containing zero: {other}")
        return self * Interval(1.0 / other.hi, 1.0 / other.lo)

    def __rtruediv__(self, other: Number) -> "Interval":
        return Interval.coerce(other).__truediv__(self)

    def __abs__(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return Interval(-self.hi, -self.lo)
        return Interval(0.0, max(-self.lo, self.hi))

    def square(self) -> "Interval":
        """Elementwise square ``{x^2 : x in [lo, hi]}`` (tighter than ``self * self``)."""
        if self.lo >= 0:
            return Interval(self.lo * self.lo, self.hi * self.hi)
        if self.hi <= 0:
            return Interval(self.hi * self.hi, self.lo * self.lo)
        return Interval(0.0, max(self.lo * self.lo, self.hi * self.hi))

    def scale(self, factor: Number) -> "Interval":
        """Multiply by a scalar, keeping endpoint order valid."""
        factor = float(factor)
        lo, hi = self.lo * factor, self.hi * factor
        if factor < 0:
            lo, hi = hi, lo
        return Interval(lo, hi)

    # ------------------------------------------------------------------ #
    # Lattice-style helpers
    # ------------------------------------------------------------------ #
    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        other = Interval.coerce(other)
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersection(self, other: "Interval") -> "Interval":
        """Set intersection; raises :class:`IntervalError` if disjoint."""
        other = Interval.coerce(other)
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            raise IntervalError(f"intervals {self} and {other} are disjoint")
        return Interval(lo, hi)

    def widen(self, amount: Number) -> "Interval":
        """Symmetrically widen the interval by ``amount`` on each side."""
        amount = float(amount)
        if amount < 0:
            raise IntervalError("widen amount must be non-negative")
        return Interval(self.lo - amount, self.hi + amount)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[float]:
        return iter((self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_scalar:
            return f"Interval({self.lo:g})"
        return f"Interval({self.lo:g}, {self.hi:g})"


def span(value: Union[Interval, Number]) -> float:
    """Span of an interval (Definition 2); 0 for scalars."""
    return Interval.coerce(value).span


def hull_of(values: Iterable[Union[Interval, Number]]) -> Interval:
    """Smallest interval covering every value in ``values``."""
    iterator = iter(values)
    try:
        result = Interval.coerce(next(iterator))
    except StopIteration as exc:
        raise IntervalError("hull_of() requires at least one value") from exc
    for value in iterator:
        result = result.hull(Interval.coerce(value))
    return result
