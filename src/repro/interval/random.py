"""Seeded random generators for interval-valued matrices.

These generators underpin both the synthetic-data experiments (Table 1 of the
paper) and the property-based tests: they produce interval matrices with a
controlled *interval density* (fraction of non-zero cells that become genuine
intervals) and *interval intensity* (how wide the intervals are relative to the
cell value), matching the paper's data-generation protocol.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.interval.array import IntervalMatrix
from repro.interval.scalar import IntervalError

SeedLike = Union[None, int, np.random.Generator]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator, passing through existing generators unchanged."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def intervalize(
    values: np.ndarray,
    interval_density: float = 1.0,
    interval_intensity: float = 1.0,
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Turn a scalar matrix into an interval matrix per the paper's protocol.

    A fraction ``interval_density`` of the *non-zero* cells is selected
    uniformly at random; each selected scalar ``x`` is replaced by an interval
    whose scope is drawn uniformly between 0% and ``interval_intensity * 100%``
    of ``|x|`` (Section 6.1.1).  Zero cells and unselected cells stay scalar.

    Parameters
    ----------
    values:
        Scalar source matrix.
    interval_density:
        Fraction in [0, 1] of non-zero cells that become intervals.
    interval_intensity:
        Maximum interval scope as a fraction of the cell magnitude, in [0, inf).
    rng:
        Seed or generator for reproducibility.
    """
    if not 0.0 <= interval_density <= 1.0:
        raise IntervalError(f"interval_density must be in [0, 1], got {interval_density}")
    if interval_intensity < 0.0:
        raise IntervalError(f"interval_intensity must be >= 0, got {interval_intensity}")
    rng = default_rng(rng)
    values = np.asarray(values, dtype=float)

    nonzero = values != 0.0
    selected = nonzero & (rng.random(values.shape) < interval_density)
    scope_fraction = rng.random(values.shape) * interval_intensity
    scope = np.abs(values) * scope_fraction
    # The interval replaces the scalar x with [x - scope/2, x + scope/2]; the
    # paper only requires that the scope be bounded by the intensity fraction.
    radius = np.where(selected, 0.5 * scope, 0.0)
    return IntervalMatrix(values - radius, values + radius)


def random_interval_matrix(
    shape: Tuple[int, int],
    matrix_density: float = 0.0,
    interval_density: float = 1.0,
    interval_intensity: float = 1.0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Generate a random interval matrix following Table 1's parameters.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` of the matrix.
    matrix_density:
        Fraction in [0, 1] of cells forced to zero (the paper's
        "percentage of 0-values").
    interval_density:
        Fraction of the remaining non-zero cells turned into intervals.
    interval_intensity:
        Maximum interval scope as a fraction of the cell value.
    value_range:
        Uniform range for the underlying scalar values.
    rng:
        Seed or generator.
    """
    if not 0.0 <= matrix_density <= 1.0:
        raise IntervalError(f"matrix_density must be in [0, 1], got {matrix_density}")
    lo, hi = value_range
    if hi < lo:
        raise IntervalError(f"invalid value_range: {value_range}")
    rng = default_rng(rng)
    values = rng.uniform(lo, hi, size=shape)
    if matrix_density > 0.0:
        zero_mask = rng.random(shape) < matrix_density
        values = np.where(zero_mask, 0.0, values)
    return intervalize(
        values,
        interval_density=interval_density,
        interval_intensity=interval_intensity,
        rng=rng,
    )


def random_low_rank_matrix(
    shape: Tuple[int, int],
    rank: int,
    noise: float = 0.0,
    nonnegative: bool = True,
    rng: SeedLike = None,
) -> np.ndarray:
    """Generate a scalar matrix with (approximately) the requested rank.

    Useful for building datasets where low-rank reconstruction is meaningful
    (faces, ratings).  When ``nonnegative`` is set, the factors are drawn from
    a uniform distribution so the product stays non-negative.
    """
    n, m = shape
    if rank <= 0 or rank > min(n, m):
        raise IntervalError(f"rank must be in [1, min(n, m)], got {rank}")
    rng = default_rng(rng)
    if nonnegative:
        left = rng.uniform(0.0, 1.0, size=(n, rank))
        right = rng.uniform(0.0, 1.0, size=(rank, m))
    else:
        left = rng.normal(size=(n, rank))
        right = rng.normal(size=(rank, m))
    values = left @ right
    if noise > 0.0:
        values = values + rng.normal(scale=noise, size=shape)
        if nonnegative:
            values = np.clip(values, 0.0, None)
    return values


def random_interval_vector(
    length: int,
    interval_intensity: float = 1.0,
    value_range: Tuple[float, float] = (-1.0, 1.0),
    rng: SeedLike = None,
) -> IntervalMatrix:
    """Generate a 1-D interval vector (used mainly by tests)."""
    rng = default_rng(rng)
    lo, hi = value_range
    values = rng.uniform(lo, hi, size=length)
    radius = np.abs(values) * rng.random(length) * interval_intensity * 0.5
    return IntervalMatrix(values - radius, values + radius)
