"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.datasets.faces import make_face_dataset
from repro.datasets.ratings import make_ratings_dataset
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix

# Hypothesis profiles the CI tiers select via HYPOTHESIS_PROFILE.  "ci"
# disables the per-example deadline (shared runners spike on BLAS warm-up);
# "derandomize" additionally pins example generation so the long-running
# chaos / worker-smoke jobs never fail on a draw their retry can't replay.
# Local runs keep hypothesis defaults.
settings.register_profile(
    "ci", deadline=None, suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "derandomize", deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng():
    """A deterministic numpy generator shared by tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_interval_matrix(rng):
    """A small dense interval matrix with moderate interval widths."""
    return random_interval_matrix(
        shape=(12, 18), interval_density=1.0, interval_intensity=0.5, rng=rng
    )


@pytest.fixture
def sparse_interval_matrix(rng):
    """A small interval matrix with zero cells and partial interval coverage."""
    return random_interval_matrix(
        shape=(15, 20), matrix_density=0.4, interval_density=0.6,
        interval_intensity=0.8, rng=rng,
    )


@pytest.fixture
def scalar_matrix(rng):
    """A scalar (degenerate) interval matrix."""
    return IntervalMatrix.from_scalar(rng.uniform(0.0, 1.0, size=(10, 14)))


@pytest.fixture(scope="session")
def tiny_face_dataset():
    """A small face dataset reused across classification/clustering tests."""
    return make_face_dataset(
        n_subjects=6, images_per_subject=5, resolution=12, seed=3
    )


@pytest.fixture(scope="session")
def tiny_ratings_dataset():
    """A small ratings dataset reused across collaborative-filtering tests."""
    return make_ratings_dataset(
        preset="movielens", n_users=40, n_items=80, n_categories=8,
        density=0.3, seed=5,
    )
