"""Tests for interval-valued latent semantic alignment (ILSA, Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ilsa import (
    AlignmentError,
    alignment_report,
    align_factor_set,
    cosine_similarity_matrix,
    ilsa,
    matched_cosines,
)


def random_orthonormal(rank: int, dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(dim, rank)))
    return q


class TestCosineSimilarityMatrix:
    def test_identity_for_same_basis(self):
        basis = random_orthonormal(4, 10)
        similarity = cosine_similarity_matrix(basis, basis)
        np.testing.assert_allclose(similarity, np.eye(4), atol=1e-10)

    def test_values_bounded_by_one(self, rng):
        a = rng.normal(size=(8, 5))
        b = rng.normal(size=(8, 5))
        similarity = cosine_similarity_matrix(a, b)
        assert np.all(np.abs(similarity) <= 1.0 + 1e-12)

    def test_zero_column_gives_zero_similarity(self):
        a = np.zeros((4, 2))
        b = random_orthonormal(2, 4)
        similarity = cosine_similarity_matrix(a, b)
        np.testing.assert_allclose(similarity, 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(AlignmentError):
            cosine_similarity_matrix(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_requires_2d(self):
        with pytest.raises(AlignmentError):
            cosine_similarity_matrix(np.zeros(3), np.zeros(3))


class TestIlsaMapping:
    @pytest.mark.parametrize("method", ["hungarian", "greedy"])
    def test_identity_alignment(self, method):
        basis = random_orthonormal(5, 12)
        result = ilsa(basis, basis, method=method)
        np.testing.assert_array_equal(result.mapping, np.arange(5))
        np.testing.assert_array_equal(result.signs, np.ones(5))

    @pytest.mark.parametrize("method", ["hungarian", "greedy"])
    def test_recovers_permutation(self, method):
        basis = random_orthonormal(6, 15, seed=1)
        permutation = np.array([2, 0, 5, 1, 4, 3])
        permuted = basis[:, permutation]
        # Align permuted (min side) to basis (max side): column j of the max side
        # corresponds to column mapping[j] of the min side.
        result = ilsa(permuted, basis, method=method)
        assert result.is_permutation()
        aligned = result.apply_to_columns(permuted)
        np.testing.assert_allclose(np.abs(np.sum(aligned * basis, axis=0)), 1.0, atol=1e-8)

    @pytest.mark.parametrize("method", ["hungarian", "greedy"])
    def test_sign_correction(self, method):
        basis = random_orthonormal(4, 10, seed=2)
        flipped = basis.copy()
        flipped[:, 1] *= -1.0
        flipped[:, 3] *= -1.0
        result = ilsa(flipped, basis, method=method)
        aligned = result.apply_to_columns(flipped)
        # After alignment every column should point in the same direction.
        dots = np.sum(aligned * basis, axis=0)
        assert np.all(dots > 0.99)

    def test_unknown_method_raises(self):
        basis = random_orthonormal(3, 6)
        with pytest.raises(AlignmentError):
            ilsa(basis, basis, method="bogus")

    def test_mapping_is_always_permutation(self, rng):
        a = rng.normal(size=(10, 6))
        b = rng.normal(size=(10, 6))
        for method in ("hungarian", "greedy"):
            assert ilsa(a, b, method=method).is_permutation()

    def test_hungarian_objective_at_least_greedy(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            a = local.normal(size=(12, 7))
            b = local.normal(size=(12, 7))
            hungarian = ilsa(a, b, method="hungarian").total_similarity
            greedy = ilsa(a, b, method="greedy").total_similarity
            assert hungarian >= greedy - 1e-9

    def test_matched_similarity_not_lower_than_before(self, rng):
        """Alignment never decreases the average matched |cos|."""
        a = rng.normal(size=(20, 8))
        b = rng.normal(size=(20, 8))
        before = np.abs(matched_cosines(a, b)).mean()
        after = ilsa(a, b).matched_similarity.mean()
        assert after >= before - 1e-9

    def test_rank_property(self):
        basis = random_orthonormal(5, 9)
        assert ilsa(basis, basis).rank == 5


class TestApplyHelpers:
    def test_apply_to_columns_wrong_width_raises(self):
        basis = random_orthonormal(3, 6)
        result = ilsa(basis, basis)
        with pytest.raises(AlignmentError):
            result.apply_to_columns(np.zeros((6, 4)))

    def test_apply_to_diagonal_accepts_matrix_or_vector(self):
        basis = random_orthonormal(3, 6)
        result = ilsa(basis, basis)
        vector = np.array([3.0, 2.0, 1.0])
        np.testing.assert_array_equal(result.apply_to_diagonal(vector), vector)
        np.testing.assert_array_equal(result.apply_to_diagonal(np.diag(vector)), vector)

    def test_apply_to_diagonal_wrong_length_raises(self):
        basis = random_orthonormal(3, 6)
        with pytest.raises(AlignmentError):
            ilsa(basis, basis).apply_to_diagonal(np.ones(4))

    def test_align_factor_set_preserves_product(self, rng):
        """Permuting and sign-flipping U and V together leaves U S V^T unchanged."""
        u = random_orthonormal(4, 8, seed=3)
        v = random_orthonormal(4, 10, seed=4)
        s = np.diag([4.0, 3.0, 2.0, 1.0])
        target_v = v[:, [1, 0, 3, 2]] * np.array([1, -1, 1, -1])
        alignment = ilsa(v, target_v)
        u_aligned, s_aligned, v_aligned = align_factor_set(alignment, u, s, v)
        original = u @ s @ v.T
        realigned = u_aligned @ s_aligned @ v_aligned.T
        np.testing.assert_allclose(realigned, original, atol=1e-8)


class TestAlignmentReport:
    def test_report_improvement_nonnegative(self, rng):
        a = rng.normal(size=(15, 6))
        b = rng.normal(size=(15, 6))
        report = alignment_report(a, b)
        assert report.improvement >= -1e-9
        assert 0.0 <= report.mean_before <= 1.0
        assert 0.0 <= report.mean_after <= 1.0

    def test_report_extras_contain_mapping(self, rng):
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=(10, 4))
        report = alignment_report(a, b)
        assert "mapping" in report.extras and "signs" in report.extras

    def test_perfect_alignment_report(self):
        basis = random_orthonormal(4, 8)
        report = alignment_report(basis, basis)
        assert report.mean_before == pytest.approx(1.0)
        assert report.mean_after == pytest.approx(1.0)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_alignment_objective_never_below_identity_pairing(self, rank, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rank + 4, rank))
        b = rng.normal(size=(rank + 4, rank))
        identity_objective = np.abs(matched_cosines(a, b)).sum()
        assert ilsa(a, b).total_similarity >= identity_objective - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_signs_are_plus_minus_one(self, rank, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(rank + 2, rank))
        b = rng.normal(size=(rank + 2, rank))
        result = ilsa(a, b)
        assert set(np.unique(result.signs)).issubset({-1.0, 1.0})
