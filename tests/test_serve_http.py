"""Smoke tests of the HTTP serving layer.

The central assertion: answers served over HTTP — including concurrent
single-row queries that the server stacks through the micro-batcher — are
identical to direct in-process :class:`QueryEngine` calls.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import registry
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix
from repro.serve.http import ServingApp, create_server, rows_from_payload
from repro.serve.query import QueryEngine
from repro.serve.store import ModelStore


@pytest.fixture(scope="module")
def served():
    """A live server over one published model, shared by the module's tests."""
    matrix = random_interval_matrix((20, 12), interval_intensity=0.5, rng=42)
    decomposition = registry.get("isvd4").fit(matrix, 5, target="b")
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        store = ModelStore(directory)
        store.save("m1", decomposition, matrix=matrix)
        server = create_server(store, port=0, max_batch=8, batch_delay=0.01)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield {
                "url": f"http://{host}:{port}",
                "engine": QueryEngine(decomposition),
                "matrix": matrix,
            }
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


def _post(url, path, payload):
    request = urllib.request.Request(
        f"{url}{path}", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def _get(url, path):
    with urllib.request.urlopen(f"{url}{path}") as response:
        return json.load(response)


class TestEndpoints:
    def test_healthz(self, served):
        payload = _get(served["url"], "/healthz")
        assert payload["status"] == "ok"
        assert payload["models"] == 1
        assert isinstance(payload["serving"], dict)

    def test_models_lists_published_metadata(self, served):
        payload = _get(served["url"], "/models")
        assert [m["name"] for m in payload["models"]] == ["m1"]
        record = payload["models"][0]
        assert record["method"] == "ISVD4"
        assert record["rank"] == 5
        assert record["shape"] == [20, 12]

    def test_recommend_matches_in_process_engine(self, served):
        matrix, engine = served["matrix"], served["engine"]
        payload = _post(served["url"], "/recommend", {
            "model": "m1", "k": 4,
            "lower": matrix.lower.tolist(), "upper": matrix.upper.tolist(),
        })
        expected = engine.top_k_items(matrix, 4)
        assert payload["items"] == expected.indices.tolist()
        assert payload["scores"] == expected.scores.tolist()

    def test_neighbors_matches_in_process_engine(self, served):
        matrix, engine = served["matrix"], served["engine"]
        payload = _post(served["url"], "/neighbors", {
            "model": "m1", "k": 3,
            "lower": matrix.lower.tolist(), "upper": matrix.upper.tolist(),
        })
        expected = engine.nearest_neighbors(matrix, 3)
        assert payload["neighbors"] == expected.indices.tolist()
        assert payload["distances"] == expected.scores.tolist()

    def test_scalar_rows_accepted(self, served):
        matrix, engine = served["matrix"], served["engine"]
        payload = _post(served["url"], "/recommend", {
            "model": "m1", "k": 2, "rows": matrix.midpoint().tolist(),
        })
        expected = engine.top_k_items(matrix.midpoint(), 2)
        assert payload["items"] == expected.indices.tolist()


class TestConcurrentQueriesMatchDirectCalls:
    def test_threaded_single_row_queries_are_microbatched_and_identical(self, served):
        matrix, engine = served["matrix"], served["engine"]
        n_rows = matrix.shape[0]
        barrier = threading.Barrier(n_rows)
        responses = [None] * n_rows
        errors = []

        def worker(i):
            body = {
                "model": "m1", "k": 5,
                "lower": matrix.lower[i].tolist(),
                "upper": matrix.upper[i].tolist(),
            }
            try:
                barrier.wait()
                responses[i] = _post(served["url"], "/recommend", body)
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append((i, error))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_rows)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        expected = engine.top_k_items(matrix, 5)
        for i, response in enumerate(responses):
            assert response["items"] == [expected.indices[i].tolist()]
            assert response["scores"] == [expected.scores[i].tolist()]

    def test_mixed_k_neighbors_queries(self, served):
        matrix, engine = served["matrix"], served["engine"]
        ks = [1, 2, 3, 4] * 3
        barrier = threading.Barrier(len(ks))
        responses = [None] * len(ks)

        def worker(slot):
            body = {
                "model": "m1", "k": ks[slot],
                "lower": matrix.lower[slot].tolist(),
                "upper": matrix.upper[slot].tolist(),
            }
            barrier.wait()
            responses[slot] = _post(served["url"], "/neighbors", body)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(ks))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for slot, response in enumerate(responses):
            expected = engine.nearest_neighbors(matrix.row(slot), ks[slot])
            assert response["neighbors"] == expected.indices.tolist()
            assert response["distances"] == expected.scores.tolist()


class TestErrorHandling:
    def _status_of(self, url, path, payload=None, method="POST"):
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(f"{url}{path}", data=data, method=method)
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    def test_unknown_model_is_404(self, served):
        status, body = self._status_of(served["url"], "/recommend",
                                       {"model": "ghost", "row": [0.0] * 12})
        assert status == 404
        assert "ghost" in body["error"]

    def test_unknown_path_is_404(self, served):
        status, _ = self._status_of(served["url"], "/nope", {"model": "m1"})
        assert status == 404
        status, _ = self._status_of(served["url"], "/nope", method="GET")
        assert status == 404

    def test_bad_json_is_400(self, served):
        request = urllib.request.Request(
            f"{served['url']}/recommend", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_missing_rows_is_400(self, served):
        status, body = self._status_of(served["url"], "/recommend", {"model": "m1"})
        assert status == 400
        assert "rows" in body["error"]

    def test_wrong_row_width_is_400(self, served):
        status, body = self._status_of(served["url"], "/recommend",
                                       {"model": "m1", "row": [1.0, 2.0]})
        assert status == 400
        assert "12" in body["error"]

    def test_bad_k_is_400(self, served):
        status, _ = self._status_of(served["url"], "/recommend",
                                    {"model": "m1", "row": [0.0] * 12, "k": 0})
        assert status == 400

    def test_misordered_interval_is_400(self, served):
        status, body = self._status_of(served["url"], "/recommend", {
            "model": "m1",
            "lower": [[2.0] * 12], "upper": [[1.0] * 12],
        })
        assert status == 400

    def test_non_finite_rows_are_400(self, served):
        status, body = self._status_of(served["url"], "/recommend",
                                       {"model": "m1", "row": [1e400] * 12})
        assert status == 400
        assert "finite" in body["error"]

    def test_keep_alive_survives_error_responses(self, served):
        # An error reply must not leave unread body bytes on the connection:
        # the next request on the same socket would be parsed from them.
        import http.client

        host, port = served["url"].replace("http://", "").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=5)
        try:
            body = json.dumps({"model": "m1", "row": [0.0] * 12}).encode()
            connection.request("POST", "/typo", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # Same connection, next request: must parse cleanly.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["status"] == "ok" and payload["models"] == 1
        finally:
            connection.close()


class TestServingAppLifecycle:
    @pytest.fixture
    def app(self, tmp_path, small_interval_matrix):
        store = ModelStore(tmp_path / "store")
        decomposition = registry.get("isvd4").fit(small_interval_matrix, 4, target="b")
        store.save("m", decomposition, matrix=small_interval_matrix)
        return ServingApp(store), small_interval_matrix

    def test_republished_model_served_without_restart(self, app, small_interval_matrix):
        serving, matrix = app
        assert serving.engine("m").decomposition.rank == 4
        other = registry.get("isvd0").fit(matrix, 3, target="c")
        serving.store.save("m", other, matrix=matrix)
        # The engine cache revalidates against the store metadata per access.
        assert serving.engine("m").decomposition.rank == 3

    def test_half_deleted_model_is_request_error_not_crash(self, app):
        serving, matrix = app
        serving.engine("m")
        # Simulate a reader racing a delete: metadata survives, factors gone,
        # and the republish-detection forces a reload attempt.
        serving._engines.clear()
        (serving.store.directory / "m.npz").unlink()
        from repro.serve.http import RequestError

        with pytest.raises(RequestError) as excinfo:
            serving.recommend({"model": "m", "row": [0.0] * matrix.shape[1]})
        assert excinfo.value.status == 404

    def test_deleted_model_is_evicted_from_caches(self, app):
        serving, matrix = app
        serving.recommend({"model": "m", "row": [0.0] * matrix.shape[1]})
        assert "m" in serving._engines and serving._batchers
        serving.store.delete("m")
        from repro.serve.http import RequestError

        with pytest.raises(RequestError):
            serving.engine("m")
        # The dropped model no longer pins its factors or batchers in memory.
        assert "m" not in serving._engines
        assert not any(key[0] == "m" for key in serving._batchers)

    def test_mixed_k_batch_with_tied_scores_matches_direct_calls(self, tmp_path):
        # An item map with duplicated columns produces exactly tied scores —
        # the case where slicing a shared top-max(k) list diverges from a
        # direct per-request top-k at the selection boundary.
        import numpy as np
        from repro.core.result import IntervalDecomposition

        v = np.array([[1.0, 0.0], [0.5, 0.5], [0.5, 0.5], [0.5, 0.5], [0.0, 1.0]])
        decomposition = IntervalDecomposition(
            u=np.ones((3, 2)), sigma=np.eye(2), v=v, target="c", method="stub", rank=2,
        )
        store = ModelStore(tmp_path / "tied")
        store.save("tied", decomposition)
        serving = ServingApp(store)
        engine = serving.engine("tied")

        rows = [IntervalMatrix.from_scalar(np.full((1, 5), 2.0)) for _ in range(3)]
        ks = [2, 3, 4]
        batcher = serving._batcher("tied", "recommend")
        results = batcher._run_batch(list(zip(rows, ks)))
        # Each batched result carries the batch's missing-shard set (empty
        # for a healthy in-process engine) alongside the top-k answer.
        for (row, k), (result, dropped) in zip(zip(rows, ks), results):
            assert dropped == frozenset()
            direct = engine.top_k_items(row, k)
            assert result.indices.tolist() == direct.indices.tolist()
            assert result.scores.tolist() == direct.scores.tolist()


class TestPayloadParsing:
    def test_single_row_flag(self):
        rows, single = rows_from_payload({"row": [1.0, 2.0]})
        assert single and rows.shape == (1, 2)
        rows, single = rows_from_payload({"rows": [[1.0, 2.0]]})
        assert not single and rows.shape == (1, 2)
        rows, single = rows_from_payload({"lower": [1.0], "upper": [2.0]})
        assert single and rows.shape == (1, 1)

    def test_lower_without_upper_rejected(self):
        from repro.serve.http import RequestError

        with pytest.raises(RequestError, match="both"):
            rows_from_payload({"lower": [[1.0]]})

    def test_in_process_app_requires_model_name(self, tmp_path):
        app = ServingApp(ModelStore(tmp_path))
        from repro.serve.http import RequestError

        with pytest.raises(RequestError, match="model"):
            app.recommend({"row": [1.0]})
