"""Tests for the ISVD0..ISVD4 decomposition family (Section 4)."""

import numpy as np
import pytest

from repro.core.accuracy import harmonic_mean_accuracy, reconstruction_accuracy
from repro.core.isvd import (
    ISVDError,
    ISVDMethod,
    isvd,
    isvd0,
    isvd1,
    isvd2,
    isvd3,
    isvd4,
    truncated_eigh,
    truncated_svd,
)
from repro.core.reconstruct import reconstruct
from repro.core.result import DecompositionTarget
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix

ALL_METHODS = ["isvd0", "isvd1", "isvd2", "isvd3", "isvd4"]
ALIGNED_METHODS = ["isvd1", "isvd2", "isvd3", "isvd4"]


@pytest.fixture(scope="module")
def interval_matrix():
    return random_interval_matrix((20, 30), interval_density=1.0,
                                  interval_intensity=0.5, rng=7)


class TestHelpers:
    def test_truncated_svd_shapes(self, rng):
        matrix = rng.normal(size=(10, 15))
        u, s, v = truncated_svd(matrix, 4)
        assert u.shape == (10, 4) and s.shape == (4,) and v.shape == (15, 4)

    def test_truncated_svd_reconstruction_full_rank(self, rng):
        matrix = rng.normal(size=(6, 8))
        u, s, v = truncated_svd(matrix, 6)
        np.testing.assert_allclose(u @ np.diag(s) @ v.T, matrix, atol=1e-8)

    def test_truncated_svd_rank_clipped(self, rng):
        matrix = rng.normal(size=(4, 5))
        u, s, v = truncated_svd(matrix, 100)
        assert s.shape == (4,)

    def test_truncated_eigh_matches_svd_for_gram(self, rng):
        matrix = rng.normal(size=(8, 6))
        gram = matrix.T @ matrix
        _, s, _ = truncated_svd(matrix, 6)
        _, eig_s = truncated_eigh(gram, 6)
        np.testing.assert_allclose(np.sort(eig_s), np.sort(s), atol=1e-6)

    def test_truncated_eigh_clips_negative_eigenvalues(self):
        matrix = -np.eye(3)
        _, values = truncated_eigh(matrix, 3)
        assert np.all(values >= 0.0)

    def test_method_coercion(self):
        assert ISVDMethod.coerce("ISVD4") is ISVDMethod.ISVD4
        assert ISVDMethod.coerce(ISVDMethod.ISVD1) is ISVDMethod.ISVD1
        assert ISVDMethod.ISVD3.display_name == "ISVD3"

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            ISVDMethod.coerce("isvd9")


class TestInputValidation:
    def test_rank_too_large_raises(self, interval_matrix):
        with pytest.raises(ISVDError):
            isvd(interval_matrix, rank=100)

    def test_rank_zero_raises(self, interval_matrix):
        with pytest.raises(ISVDError):
            isvd(interval_matrix, rank=0)

    def test_isvd0_rejects_non_c_targets(self, interval_matrix):
        with pytest.raises(ISVDError):
            isvd(interval_matrix, rank=5, method="isvd0", target="b")

    def test_scalar_ndarray_is_accepted(self, rng):
        matrix = rng.uniform(0, 1, size=(10, 12))
        decomposition = isvd(matrix, rank=3, method="isvd1", target="b")
        assert decomposition.rank == 3


class TestScalarConsistency:
    """On degenerate (scalar) interval matrices every ISVD reduces to plain SVD."""

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_scalar_input_reconstructs_like_svd(self, method, rng):
        matrix = rng.uniform(0, 1, size=(12, 16))
        wrapped = IntervalMatrix.from_scalar(matrix)
        rank = 12
        target = "c" if method == "isvd0" else "b"
        decomposition = isvd(wrapped, rank=rank, method=method, target=target)
        rebuilt = reconstruct(decomposition)
        np.testing.assert_allclose(rebuilt.midpoint(), matrix, atol=1e-6)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_scalar_input_full_accuracy(self, method, rng):
        matrix = IntervalMatrix.from_scalar(rng.uniform(0, 1, size=(10, 10)))
        target = "c" if method == "isvd0" else "b"
        decomposition = isvd(matrix, rank=10, method=method, target=target)
        assert harmonic_mean_accuracy(matrix, decomposition) > 0.999


class TestTargets:
    @pytest.mark.parametrize("method", ALIGNED_METHODS)
    def test_target_a_returns_interval_factors(self, method, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method=method, target="a")
        assert decomposition.is_interval_factors
        assert decomposition.is_interval_core

    @pytest.mark.parametrize("method", ALIGNED_METHODS)
    def test_target_b_returns_scalar_factors_interval_core(self, method, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method=method, target="b")
        assert not decomposition.is_interval_factors
        assert decomposition.is_interval_core

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_target_c_returns_all_scalar(self, method, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method=method, target="c") \
            if method != "isvd0" else isvd0(interval_matrix, 5)
        assert not decomposition.is_interval_factors
        assert not decomposition.is_interval_core

    @pytest.mark.parametrize("method", ALIGNED_METHODS)
    def test_target_b_factor_columns_unit_norm(self, method, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method=method, target="b")
        np.testing.assert_allclose(np.linalg.norm(decomposition.u, axis=0), 1.0, atol=1e-8)
        np.testing.assert_allclose(np.linalg.norm(decomposition.v, axis=0), 1.0, atol=1e-8)

    @pytest.mark.parametrize("method", ALIGNED_METHODS)
    def test_interval_outputs_are_valid_intervals(self, method, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method=method, target="a")
        assert decomposition.u.is_valid()
        assert decomposition.sigma.is_valid()
        assert decomposition.v.is_valid()


class TestAccuracyBehaviour:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_reasonable_accuracy_on_moderate_intervals(self, method, interval_matrix):
        target = "c" if method == "isvd0" else "b"
        decomposition = isvd(interval_matrix, rank=15, method=method, target=target)
        assert harmonic_mean_accuracy(interval_matrix, decomposition) > 0.5

    def test_accuracy_increases_with_rank(self, interval_matrix):
        accuracies = [
            harmonic_mean_accuracy(
                interval_matrix, isvd(interval_matrix, rank=r, method="isvd4", target="b")
            )
            for r in (2, 8, 18)
        ]
        assert accuracies[0] < accuracies[1] < accuracies[2]

    def test_isvd4_not_worse_than_isvd0_on_wide_intervals(self):
        matrix = random_interval_matrix((30, 40), interval_density=1.0,
                                        interval_intensity=1.0, rng=3)
        naive = harmonic_mean_accuracy(matrix, isvd(matrix, 10, method="isvd0", target="c"))
        aligned = harmonic_mean_accuracy(matrix, isvd(matrix, 10, method="isvd4", target="b"))
        assert aligned >= naive - 0.02

    def test_alignment_metadata_present(self, interval_matrix):
        decomposition = isvd(interval_matrix, rank=5, method="isvd1", target="b")
        assert "alignment" in decomposition.metadata

    def test_both_align_methods_supported(self, interval_matrix):
        hungarian = isvd(interval_matrix, rank=5, method="isvd2", target="b",
                         align_method="hungarian")
        greedy = isvd(interval_matrix, rank=5, method="isvd2", target="b",
                      align_method="greedy")
        assert hungarian.rank == greedy.rank == 5

    def test_isvd4_v_factor_better_aligned_than_isvd3(self):
        """ISVD4's recomputation makes V_lo and V_hi more similar (Section 4.5, Fig. 5)."""
        from repro.core.ilsa import matched_cosines

        matrix = random_interval_matrix((30, 25), interval_density=1.0,
                                        interval_intensity=1.0, rng=11)
        v3 = isvd(matrix, 10, method="isvd3", target="a").v
        v4 = isvd(matrix, 10, method="isvd4", target="a").v
        cos3 = np.abs(matched_cosines(v3.lower, v3.upper)).mean()
        cos4 = np.abs(matched_cosines(v4.lower, v4.upper)).mean()
        assert cos4 >= cos3 - 1e-9


class TestTimings:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_timings_recorded_for_all_phases(self, method, interval_matrix):
        target = "c" if method == "isvd0" else "b"
        decomposition = isvd(interval_matrix, rank=5, method=method, target=target)
        for phase in ("preprocessing", "decomposition", "alignment", "recomposition"):
            assert phase in decomposition.timings
            assert decomposition.timings[phase] >= 0.0

    def test_method_name_recorded(self, interval_matrix):
        assert isvd(interval_matrix, 5, method="isvd3", target="b").method == "ISVD3"


class TestSparseAndEdgeCases:
    def test_sparse_matrix(self, sparse_interval_matrix):
        decomposition = isvd(sparse_interval_matrix, rank=5, method="isvd4", target="b")
        assert harmonic_mean_accuracy(sparse_interval_matrix, decomposition) > 0.2

    def test_rank_one(self, interval_matrix):
        decomposition = isvd(interval_matrix, rank=1, method="isvd4", target="b")
        assert decomposition.sigma.shape == (1, 1)

    def test_tall_matrix(self):
        matrix = random_interval_matrix((40, 8), interval_intensity=0.5, rng=5)
        decomposition = isvd(matrix, rank=4, method="isvd2", target="b")
        assert decomposition.shape == (40, 8)

    def test_wide_matrix(self):
        matrix = random_interval_matrix((8, 40), interval_intensity=0.5, rng=5)
        decomposition = isvd(matrix, rank=4, method="isvd3", target="b")
        assert decomposition.shape == (8, 40)

    def test_all_zero_matrix(self):
        matrix = IntervalMatrix.zeros((6, 6))
        decomposition = isvd(matrix, rank=2, method="isvd1", target="b")
        rebuilt = reconstruct(decomposition)
        np.testing.assert_allclose(rebuilt.midpoint(), 0.0, atol=1e-8)

    def test_direct_function_entry_points(self, interval_matrix):
        assert isvd1(interval_matrix, 4).method == "ISVD1"
        assert isvd2(interval_matrix, 4).method == "ISVD2"
        assert isvd3(interval_matrix, 4).method == "ISVD3"
        assert isvd4(interval_matrix, 4).method == "ISVD4"
