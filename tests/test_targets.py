"""Tests for the decomposition-target construction (Section 3.4)."""

import numpy as np
import pytest

from repro.core.result import DecompositionTarget
from repro.core.targets import build_decomposition, combine_min_max
from repro.interval.array import IntervalMatrix


@pytest.fixture
def factor_set(rng):
    """A synthetic aligned min/max factor set with a known reconstruction."""
    n, m, r = 8, 10, 4
    u_lo = np.linalg.qr(rng.normal(size=(n, r)))[0]
    v_lo = np.linalg.qr(rng.normal(size=(m, r)))[0]
    s_lo = np.diag([4.0, 3.0, 2.0, 1.0])
    u_hi = u_lo + 0.01 * rng.normal(size=(n, r))
    v_hi = v_lo + 0.01 * rng.normal(size=(m, r))
    s_hi = s_lo + np.diag([0.2, 0.2, 0.1, 0.1])
    return u_lo, s_lo, v_lo, u_hi, s_hi, v_hi


class TestCombineMinMax:
    def test_ordered_entries_become_intervals(self):
        result = combine_min_max(np.array([[1.0]]), np.array([[2.0]]))
        assert result.lower[0, 0] == 1.0 and result.upper[0, 0] == 2.0

    def test_misordered_entries_become_average(self):
        result = combine_min_max(np.array([[3.0]]), np.array([[1.0]]))
        assert result.lower[0, 0] == result.upper[0, 0] == 2.0

    def test_always_valid(self, rng):
        lower = rng.normal(size=(5, 5))
        upper = rng.normal(size=(5, 5))
        assert combine_min_max(lower, upper).is_valid()


class TestTargetA:
    def test_all_factors_interval(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="a", method="ISVD1", rank=4)
        assert isinstance(decomposition.u, IntervalMatrix)
        assert isinstance(decomposition.sigma, IntervalMatrix)
        assert isinstance(decomposition.v, IntervalMatrix)
        assert decomposition.target is DecompositionTarget.A

    def test_interval_factors_enclose_inputs(self, factor_set):
        u_lo, s_lo, v_lo, u_hi, s_hi, v_hi = factor_set
        decomposition = build_decomposition(*factor_set, target="a", method="X", rank=4)
        # Where the input pair was ordered, the interval covers both endpoints.
        ordered = u_lo <= u_hi
        assert np.all(decomposition.u.lower[ordered] <= u_lo[ordered] + 1e-12)
        assert np.all(decomposition.u.upper[ordered] >= u_hi[ordered] - 1e-12)


class TestTargetB:
    def test_scalar_factors_interval_core(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="b", method="ISVD4", rank=4)
        assert isinstance(decomposition.u, np.ndarray)
        assert isinstance(decomposition.v, np.ndarray)
        assert isinstance(decomposition.sigma, IntervalMatrix)

    def test_factor_columns_unit_length(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="b", method="X", rank=4)
        np.testing.assert_allclose(np.linalg.norm(decomposition.u, axis=0), 1.0, atol=1e-10)
        np.testing.assert_allclose(np.linalg.norm(decomposition.v, axis=0), 1.0, atol=1e-10)

    def test_core_rescaling_preserves_reconstruction(self, factor_set):
        """Normalization of U,V plus the rho rescaling of Sigma must cancel out."""
        u_lo, s_lo, v_lo, u_hi, s_hi, v_hi = factor_set
        decomposition = build_decomposition(*factor_set, target="b", method="X", rank=4)
        expected_mid = 0.5 * (u_lo @ s_lo @ v_lo.T + u_hi @ s_hi @ v_hi.T)
        rebuilt_mid = decomposition.u @ decomposition.sigma.midpoint() @ decomposition.v.T
        # The averaged reconstruction is preserved up to the (small) interaction
        # terms dropped by averaging the factors before the product.
        assert np.linalg.norm(rebuilt_mid - expected_mid) / np.linalg.norm(expected_mid) < 0.05

    def test_core_is_valid_interval(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="b", method="X", rank=4)
        assert decomposition.sigma.is_valid()


class TestTargetC:
    def test_all_scalar(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="c", method="ISVD0", rank=4)
        assert not decomposition.is_interval_factors
        assert not decomposition.is_interval_core

    def test_core_is_midpoint_of_target_b_core(self, factor_set):
        b = build_decomposition(*factor_set, target="b", method="X", rank=4)
        c = build_decomposition(*factor_set, target="c", method="X", rank=4)
        np.testing.assert_allclose(np.diag(c.sigma), np.diag(b.sigma.midpoint()), atol=1e-10)


class TestInputFlexibility:
    def test_sigma_accepts_vectors(self, factor_set):
        u_lo, s_lo, v_lo, u_hi, s_hi, v_hi = factor_set
        decomposition = build_decomposition(
            u_lo, np.diag(s_lo), v_lo, u_hi, np.diag(s_hi), v_hi,
            target="b", method="X", rank=4,
        )
        assert decomposition.sigma.shape == (4, 4)

    def test_target_coercion_accepts_uppercase(self, factor_set):
        decomposition = build_decomposition(*factor_set, target="B", method="X", rank=4)
        assert decomposition.target is DecompositionTarget.B

    def test_metadata_and_timings_are_attached(self, factor_set):
        decomposition = build_decomposition(
            *factor_set, target="a", method="X", rank=4,
            timings={"decomposition": 1.0}, metadata={"note": "test"},
        )
        assert decomposition.timings["decomposition"] == 1.0
        assert decomposition.metadata["note"] == "test"
