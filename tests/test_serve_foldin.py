"""Property-based tests of the fold-in projector.

The contract that lets the serving layer answer queries without ever
re-running a factorization: fold-in is an exact left inverse of the model's
scoring map on the latent row span.  Concretely, for **every** registry
method and every decomposition target it supports, folding in what the model
serves for a training row (its reconstruction) recovers that reconstruction
to numerical tolerance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import registry
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix
from repro.serve.foldin import FoldInProjector
from repro.serve.query import QueryEngine

COMMON_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every (method key, target) combination the registry supports.
ALL_METHOD_TARGETS = [
    (info.key, target) for info in registry.infos() for target in info.targets
]

#: Keep the iterative models tiny — the property is about fold-in, not fit
#: quality, so a handful of epochs is plenty.
FAST_OPTIONS = {
    "nmf": {"max_iter": 15},
    "inmf": {"max_iter": 15},
    "pmf": {"epochs": 5},
    "ipmf": {"epochs": 5},
    "aipmf": {"epochs": 5},
}

matrix_params = st.tuples(
    st.integers(7, 12),          # rows
    st.integers(5, 9),           # cols
    st.floats(0.0, 0.8),         # interval intensity
    st.integers(0, 10_000),      # seed
)


def _matrix_from(params):
    rows, cols, intensity, seed = params
    # Values in [0, 1]: non-negative, so the NMF family applies unmodified.
    return random_interval_matrix((rows, cols), interval_density=1.0,
                                  interval_intensity=intensity, rng=seed)


def _fit(matrix, method, target, seed=7):
    rank = min(3, min(matrix.shape))
    options = FAST_OPTIONS.get(method, {})
    return registry.get(method).fit(matrix, rank, target=target, seed=seed, **options)


class TestFoldInRecoversServedReconstructions:
    @pytest.mark.parametrize("method,target", ALL_METHOD_TARGETS)
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_left_inverse_on_latent_span(self, method, target, params):
        """fold_in(model's served row) -> scores == that served row, always."""
        matrix = _matrix_from(params)
        decomposition = _fit(matrix, method, target)
        engine = QueryEngine(decomposition)
        served = engine.scores_for_users()          # rows in the latent span
        recovered = engine.reconstruct_rows(served)  # fold-in + item map
        scale = max(1.0, float(np.abs(served).max()))
        np.testing.assert_allclose(recovered, served, atol=1e-6 * scale)

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_isvd0_training_rows_recover_reconstruction(self, params):
        """For the plain SVD model the property extends to the raw data rows.

        ISVD0's reconstruction *is* the orthogonal projection of the midpoint
        matrix onto the top singular subspace, and least-squares fold-in
        computes exactly that projection — so folding in the original rows
        reproduces the reconstruction, not just its span.
        """
        matrix = _matrix_from(params)
        decomposition = _fit(matrix, "isvd0", "c")
        engine = QueryEngine(decomposition)
        recovered = engine.reconstruct_rows(matrix)
        np.testing.assert_allclose(recovered, engine.scores_for_users(), atol=1e-8)


class TestIntervalFoldIn:
    @pytest.mark.parametrize("method,target", [
        ("isvd4", "a"), ("isvd4", "b"), ("inmf", "a"), ("interval-pca", "a"),
    ])
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_interval_projection_is_valid_and_consistent(self, method, target, params):
        matrix = _matrix_from(params)
        decomposition = _fit(matrix, method, target)
        projector = FoldInProjector(decomposition)

        latent = projector.fold_in_interval(matrix)
        assert latent.shape == (matrix.shape[0], decomposition.rank)
        assert latent.is_valid()

        features = projector.latent_features(matrix)
        assert features.shape == latent.shape
        assert features.is_valid()

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_degenerate_rows_match_scalar_path_for_scalar_factors(self, params):
        """With scalar factors both paths share one pseudo-inverse exactly."""
        matrix = _matrix_from(params)
        decomposition = _fit(matrix, "isvd0", "c")
        projector = FoldInProjector(decomposition)
        rows = IntervalMatrix.from_scalar(matrix.midpoint())
        interval = projector.fold_in_interval(rows)
        scalar = projector.fold_in(rows)
        np.testing.assert_allclose(interval.midpoint(), scalar, atol=1e-12)
        assert interval.is_scalar(tol=1e-12)


class TestShapeValidation:
    def test_wrong_width_raises(self, small_interval_matrix):
        decomposition = _fit(small_interval_matrix, "isvd4", "b")
        projector = FoldInProjector(decomposition)
        with pytest.raises(ValueError, match="width"):
            projector.fold_in(np.ones((2, small_interval_matrix.shape[1] + 1)))

    def test_single_1d_row_is_promoted(self, small_interval_matrix):
        decomposition = _fit(small_interval_matrix, "isvd4", "b")
        projector = FoldInProjector(decomposition)
        folded = projector.fold_in(small_interval_matrix.row(0))
        assert folded.shape == (1, decomposition.rank)
