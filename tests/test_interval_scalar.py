"""Tests for the scalar Interval type and its arithmetic (paper Section 2.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interval.scalar import Interval, IntervalError, hull_of, span


finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def interval_strategy():
    return st.tuples(finite, finite).map(lambda ab: Interval(min(ab), max(ab)))


class TestConstruction:
    def test_valid_interval(self):
        a = Interval(1.0, 2.0)
        assert a.lo == 1.0 and a.hi == 2.0

    def test_invalid_order_raises(self):
        with pytest.raises(IntervalError):
            Interval(2.0, 1.0)

    def test_nan_raises(self):
        with pytest.raises(IntervalError):
            Interval(float("nan"), 1.0)

    def test_from_scalar_is_degenerate(self):
        a = Interval.from_scalar(3.5)
        assert a.is_scalar
        assert a.lo == a.hi == 3.5

    def test_from_center(self):
        a = Interval.from_center(2.0, 0.5)
        assert a.as_tuple() == (1.5, 2.5)

    def test_from_center_negative_radius_raises(self):
        with pytest.raises(IntervalError):
            Interval.from_center(0.0, -0.1)

    def test_coerce_interval_passthrough(self):
        a = Interval(1, 2)
        assert Interval.coerce(a) is a

    def test_coerce_tuple(self):
        assert Interval.coerce((1, 2)).as_tuple() == (1.0, 2.0)

    def test_coerce_bad_tuple_raises(self):
        with pytest.raises(IntervalError):
            Interval.coerce((1, 2, 3))

    def test_coerce_scalar(self):
        assert Interval.coerce(4).is_scalar

    def test_endpoints_cast_to_float(self):
        a = Interval(1, 2)
        assert isinstance(a.lo, float) and isinstance(a.hi, float)

    def test_repr_scalar_and_interval(self):
        assert "Interval(1" in repr(Interval(1, 1))
        assert "2" in repr(Interval(1, 2))


class TestProperties:
    def test_span_definition(self):
        assert Interval(1.0, 3.5).span == 2.5

    def test_span_of_scalar_is_zero(self):
        assert Interval.from_scalar(7.0).span == 0.0

    def test_midpoint_and_radius(self):
        a = Interval(2.0, 6.0)
        assert a.midpoint == 4.0
        assert a.radius == 2.0

    def test_module_level_span_helper(self):
        assert span((1.0, 4.0)) == 3.0
        assert span(2.0) == 0.0

    def test_iteration_yields_endpoints(self):
        assert list(Interval(1, 2)) == [1.0, 2.0]


class TestPredicates:
    def test_contains_scalar(self):
        assert 1.5 in Interval(1, 2)
        assert 2.5 not in Interval(1, 2)

    def test_contains_interval(self):
        assert Interval(1.2, 1.8) in Interval(1, 2)
        assert Interval(0.5, 1.5) not in Interval(1, 2)

    def test_intersects(self):
        assert Interval(1, 2).intersects(Interval(1.5, 3))
        assert not Interval(1, 2).intersects(Interval(2.5, 3))

    def test_intersects_at_endpoint(self):
        assert Interval(1, 2).intersects(Interval(2, 3))


class TestArithmetic:
    def test_addition(self):
        assert (Interval(1, 2) + Interval(3, 5)).as_tuple() == (4.0, 7.0)

    def test_addition_with_scalar(self):
        assert (Interval(1, 2) + 1).as_tuple() == (2.0, 3.0)
        assert (1 + Interval(1, 2)).as_tuple() == (2.0, 3.0)

    def test_subtraction(self):
        assert (Interval(1, 2) - Interval(3, 5)).as_tuple() == (-4.0, -1.0)

    def test_rsub(self):
        assert (1 - Interval(1, 2)).as_tuple() == (-1.0, 0.0)

    def test_multiplication_positive(self):
        assert (Interval(1, 2) * Interval(3, 5)).as_tuple() == (3.0, 10.0)

    def test_multiplication_mixed_signs(self):
        assert (Interval(-2, 3) * Interval(-1, 4)).as_tuple() == (-8.0, 12.0)

    def test_multiplication_by_negative_scalar(self):
        assert (Interval(1, 2) * -1).as_tuple() == (-2.0, -1.0)

    def test_negation(self):
        assert (-Interval(1, 2)).as_tuple() == (-2.0, -1.0)

    def test_division(self):
        assert (Interval(1, 2) / Interval(2, 4)).as_tuple() == (0.25, 1.0)

    def test_division_by_zero_interval_raises(self):
        with pytest.raises(IntervalError):
            Interval(1, 2) / Interval(-1, 1)

    def test_rtruediv(self):
        assert (1 / Interval(2, 4)).as_tuple() == (0.25, 0.5)

    def test_abs_positive(self):
        assert abs(Interval(1, 2)) == Interval(1, 2)

    def test_abs_negative(self):
        assert abs(Interval(-3, -1)) == Interval(1, 3)

    def test_abs_straddling_zero(self):
        assert abs(Interval(-2, 1)) == Interval(0, 2)

    def test_square_straddling_zero(self):
        assert Interval(-2, 1).square() == Interval(0, 4)

    def test_square_tighter_than_product(self):
        a = Interval(-2, 1)
        assert a.square().span <= (a * a).span

    def test_scale_negative_factor(self):
        assert Interval(1, 2).scale(-2).as_tuple() == (-4.0, -2.0)

    def test_scalar_theorem_for_multiplication(self):
        """Theorem 1: the product of two non-degenerate intervals is never scalar."""
        product = Interval(1, 2) * Interval(3, 4)
        assert not product.is_scalar


class TestLatticeOperations:
    def test_hull(self):
        assert Interval(1, 2).hull(Interval(3, 4)) == Interval(1, 4)

    def test_intersection(self):
        assert Interval(1, 3).intersection(Interval(2, 4)) == Interval(2, 3)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(IntervalError):
            Interval(1, 2).intersection(Interval(3, 4))

    def test_widen(self):
        assert Interval(1, 2).widen(0.5) == Interval(0.5, 2.5)

    def test_widen_negative_raises(self):
        with pytest.raises(IntervalError):
            Interval(1, 2).widen(-0.1)

    def test_hull_of_sequence(self):
        assert hull_of([1.0, Interval(2, 3), -1.0]) == Interval(-1, 3)

    def test_hull_of_empty_raises(self):
        with pytest.raises(IntervalError):
            hull_of([])


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(interval_strategy(), interval_strategy())
    def test_addition_is_commutative(self, a, b):
        assert (a + b).as_tuple() == pytest.approx((b + a).as_tuple())

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy(), interval_strategy())
    def test_multiplication_is_commutative(self, a, b):
        assert (a * b).as_tuple() == pytest.approx((b * a).as_tuple())

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy(), interval_strategy())
    def test_operations_preserve_ordering(self, a, b):
        for result in (a + b, a - b, a * b):
            assert result.lo <= result.hi

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy(), interval_strategy(),
           st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_product_enclosure(self, a, b, ta, tb):
        """Any member product lies inside the interval product (soundness)."""
        x = a.lo + ta * a.span
        y = b.lo + tb * b.span
        product = a * b
        assert product.lo - 1e-6 * (1 + abs(x * y)) <= x * y <= product.hi + 1e-6 * (1 + abs(x * y))

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy())
    def test_subtraction_of_self_contains_zero(self, a):
        assert (a - a).contains(0.0)

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy())
    def test_square_contains_member_squares(self, a):
        squared = a.square()
        for x in (a.lo, a.midpoint, a.hi):
            assert squared.lo - 1e-9 <= x * x <= squared.hi + 1e-6 * (1 + x * x)

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy(), interval_strategy())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains(a) and hull.contains(b)

    @settings(max_examples=50, deadline=None)
    @given(interval_strategy())
    def test_midpoint_inside_interval(self, a):
        assert a.contains(a.midpoint)
