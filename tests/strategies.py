"""Shared hypothesis strategies and random-matrix builders for the suite.

One home for the generator idioms the property tiers kept reinventing:
bounded float draws, random dense interval-matrix pairs, integer-valued
sparse patterns, and the brute-force product hull — all dtype-parametrized
so the float32 precision tier (``tests/precision/``) exercises the exact
same input families as the float64 property tests.

Everything here is deterministic given its parameters: strategies draw
*parameters* (shapes, seeds, densities) and the builders expand them with
``np.random.default_rng(seed)``, which keeps hypothesis shrinking effective
(a failing example is a small tuple, not a giant matrix) and failure
reproduction trivial (the printed tuple regenerates the exact input).
"""

import itertools

import numpy as np
from hypothesis import HealthCheck
from hypothesis import strategies as st

from repro.interval.array import IntervalMatrix

#: Endpoint dtypes the dtype-parametrized tiers sweep.
DTYPES = (np.float64, np.float32)


def common_settings(max_examples=25):
    """The suite's shared ``@settings`` kwargs: example-count bounded, no
    per-example deadline (BLAS warm-up spikes would flake), slow-input
    health check suppressed (matrix builds are legitimately not instant)."""
    return dict(
        max_examples=max_examples,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )


def bounded_floats(min_value=-1e3, max_value=1e3, width=64):
    """Finite, bounded, non-subnormal float draws.

    The bound keeps products and sums well inside both float32 and float64
    range (no overflow-to-inf artifacts hiding real bugs), and excluding
    subnormals keeps float32 arithmetic on the fast, correctly-rounded
    path that the error budgets are calibrated for.
    """
    return st.floats(min_value=min_value, max_value=max_value,
                     allow_nan=False, allow_infinity=False,
                     allow_subnormal=False, width=width)


#: (rows, inner, cols, seed) for a random dense interval product pair.
interval_matrix_params = st.tuples(
    st.integers(2, 6),       # rows
    st.integers(2, 6),       # inner dim
    st.integers(1, 5),       # cols
    st.integers(0, 10_000),  # seed
)

#: Tiny shapes whose brute-force vertex hull stays enumerable.
tiny_interval_matrix_params = st.tuples(
    st.integers(1, 2),       # rows
    st.integers(2, 3),       # inner dim
    st.integers(1, 2),       # cols
    st.integers(0, 10_000),  # seed
)

#: (rows, cols, interval intensity, seed) for one random interval matrix.
matrix_params = st.tuples(
    st.integers(6, 16),          # rows
    st.integers(6, 16),          # cols
    st.floats(0.0, 1.0),         # interval intensity
    st.integers(0, 10_000),      # seed
)

#: (rows, cols, seed, density) for a sparse integer interval matrix.
sparse_pair_params = st.tuples(
    st.integers(2, 8),        # rows
    st.integers(2, 6),        # cols
    st.integers(0, 10_000),   # seed
    st.floats(0.1, 0.7),      # density
)


def random_matrix(params, dtype=np.float64):
    """Expand :data:`matrix_params` into one random interval matrix."""
    from repro.interval.random import random_interval_matrix

    rows, cols, intensity, seed = params
    matrix = random_interval_matrix((rows, cols), interval_density=1.0,
                                    interval_intensity=intensity, rng=seed)
    if np.dtype(dtype) != matrix.dtype:
        matrix = matrix.astype(np.dtype(dtype), outward=True)
    return matrix


def random_interval_pair(params, mixed_sign=True, dtype=np.float64):
    """Expand :data:`interval_matrix_params` into a random product pair.

    Returns ``(a, b, rng)`` where ``a @ b`` is well-defined and ``rng`` has
    advanced past the draws, for follow-up sampling (Monte-Carlo members).
    With ``mixed_sign=False`` both operands are entrywise non-negative —
    the sign-consistent regime where ``endpoint4`` is exact.  A non-default
    ``dtype`` rounds endpoints outward, so the narrowed pair still encloses
    the float64 pair it was drawn as.
    """
    rows, inner, cols, seed = params
    rng = np.random.default_rng(seed)
    if mixed_sign:
        a_lo = rng.normal(size=(rows, inner))
        b_lo = rng.normal(size=(inner, cols))
    else:  # guaranteed entrywise non-negative operands
        a_lo = rng.random((rows, inner)) * 3.0
        b_lo = rng.random((inner, cols)) * 3.0
    a_hi = a_lo + rng.random((rows, inner)) * 2.0
    b_hi = b_lo + rng.random((inner, cols)) * 2.0
    a = IntervalMatrix(a_lo, a_hi)
    b = IntervalMatrix(b_lo, b_hi)
    if np.dtype(dtype) != a.dtype:
        a = a.astype(np.dtype(dtype), outward=True)
        b = b.astype(np.dtype(dtype), outward=True)
    return a, b, rng


def integer_interval_matrix(rng, rows, cols, density, dtype=np.float64):
    """Random integer-valued interval matrix with ``[0, 0]`` cells elsewhere.

    Integer endpoints keep every kernel product exactly representable in
    float64 (and, at these magnitudes, in float32), so sparse/dense and
    blocked/unblocked executions must agree to the byte — any difference
    is a real bug, not summation-order noise.
    """
    mask = rng.random((rows, cols)) < density
    lower = np.where(mask, rng.integers(-8, 9, (rows, cols)), 0).astype(dtype)
    width = np.where(mask, rng.integers(0, 5, (rows, cols)), 0).astype(dtype)
    return IntervalMatrix(lower, lower + width)


def sparse_integer_pair(params, dtype=np.float64):
    """Expand :data:`sparse_pair_params` into (dense matrix, sparse view)."""
    from repro.interval.sparse import SparseIntervalMatrix

    rows, cols, seed, density = params
    dense = integer_interval_matrix(np.random.default_rng(seed), rows, cols,
                                    density, dtype=dtype)
    return dense, SparseIntervalMatrix.from_dense(dense)


def brute_force_hull(a, b):
    """Interval hull of ``a @ b`` by enumerating every endpoint vertex.

    Valid because the product is multilinear in the entries, so its extrema
    over the box of member matrices are attained at vertices.  Exponential in
    the number of entries — tiny shapes only.  Vertices are enumerated (and
    multiplied) in float64 regardless of the operands' storage dtype, so the
    result also serves as the high-precision reference hull the float32
    enclosure tests compare against.
    """
    lower = np.full((a.shape[0], b.shape[1]), np.inf)
    upper = np.full((a.shape[0], b.shape[1]), -np.inf)
    a_vertices = itertools.product(
        *[(a.lower.flat[i], a.upper.flat[i]) for i in range(a.size)])
    a_vertices = [np.array(v, dtype=float).reshape(a.shape) for v in a_vertices]
    b_vertices = itertools.product(
        *[(b.lower.flat[i], b.upper.flat[i]) for i in range(b.size)])
    b_vertices = [np.array(v, dtype=float).reshape(b.shape) for v in b_vertices]
    for am in a_vertices:
        for bm in b_vertices:
            product = am @ bm
            lower = np.minimum(lower, product)
            upper = np.maximum(upper, product)
    return lower, upper
