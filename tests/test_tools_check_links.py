"""Tests for the stdlib docs link checker behind the CI docs-check job."""

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_links.py"
_spec = importlib.util.spec_from_file_location("check_links", _TOOL)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


@pytest.fixture
def doc_tree(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "GUIDE.md").write_text(
        "See [the readme](../README.md) and [ops](OPERATIONS.md#serving).\n"
        "External [link](https://example.com) and [anchor](#local) are fine.\n"
        "```bash\n[not a link](nowhere.md)\n```\n"
    )
    (tmp_path / "docs" / "OPERATIONS.md").write_text("# ops\n")
    (tmp_path / "README.md").write_text(
        "[guide](docs/GUIDE.md) and [src](src/pkg/)\n")
    (tmp_path / "src" / "pkg").mkdir(parents=True)
    return tmp_path


def test_clean_tree_passes(doc_tree, capsys):
    assert check_links.main(["check_links.py", str(doc_tree)]) == 0
    assert "all relative links resolve" in capsys.readouterr().out


def test_broken_link_fails_with_diagnostic(doc_tree, capsys):
    (doc_tree / "docs" / "GUIDE.md").write_text("[gone](MISSING.md)\n")
    assert check_links.main(["check_links.py", str(doc_tree)]) == 1
    err = capsys.readouterr().err
    assert "GUIDE.md" in err and "MISSING.md" in err


def test_fragments_and_code_blocks_are_handled(doc_tree):
    # A fragment on an existing file resolves; fenced pseudo-links are not
    # checked at all.
    broken = check_links.check_file(doc_tree / "docs" / "GUIDE.md", doc_tree)
    assert broken == []


def test_fragment_on_missing_file_is_broken(doc_tree):
    (doc_tree / "docs" / "GUIDE.md").write_text("[x](NOPE.md#frag)\n")
    broken = check_links.check_file(doc_tree / "docs" / "GUIDE.md", doc_tree)
    assert len(broken) == 1 and broken[0][0] == "NOPE.md#frag"


def test_titled_and_angle_bracket_links_are_checked(doc_tree):
    guide = doc_tree / "docs" / "GUIDE.md"
    guide.write_text('[ok](OPERATIONS.md "Ops guide")\n'
                     "[also ok](<OPERATIONS.md>)\n")
    assert check_links.check_file(guide, doc_tree) == []
    guide.write_text('[broken](MISSING.md "title")\n'
                     "[broken too](<GONE.md> 'title')\n")
    assert [t for t, _ in check_links.check_file(guide, doc_tree)] \
        == ["MISSING.md", "GONE.md"]


def test_repo_docs_are_link_clean():
    """The repository's own README + docs tree must stay link-clean."""
    root = Path(__file__).resolve().parent.parent
    failures = [
        (str(path.relative_to(root)), target)
        for path in check_links.collect_files(root)
        for target, _ in check_links.check_file(path, root)
    ]
    assert failures == []
