"""Tests for the model store (persistence layer of the serving subsystem)."""

import json
import threading

import numpy as np
import pytest

from repro import io as repro_io
from repro.core import registry
from repro.serve.store import ModelRecord, ModelStore, ModelStoreError


@pytest.fixture
def store(tmp_path):
    return ModelStore(tmp_path / "models")


@pytest.fixture
def fitted(small_interval_matrix):
    decomposition = registry.get("isvd4").fit(small_interval_matrix, 4, target="b")
    return small_interval_matrix, decomposition


class TestSaveLoad:
    def test_round_trip_preserves_factors_and_metadata(self, store, fitted):
        matrix, decomposition = fitted
        record = store.save("movies", decomposition, matrix=matrix)
        loaded, loaded_record = store.load("movies")

        assert loaded_record == record
        assert record.method == "ISVD4"
        assert record.target == "b"
        assert record.rank == 4
        assert record.shape == matrix.shape
        assert record.fingerprint == repro_io.interval_fingerprint(matrix)
        assert record.created_at > 0
        np.testing.assert_allclose(loaded.u_scalar(), decomposition.u_scalar())
        np.testing.assert_allclose(loaded.v_scalar(), decomposition.v_scalar())
        np.testing.assert_allclose(loaded.sigma_scalar(), decomposition.sigma_scalar())

    def test_save_without_matrix_has_no_fingerprint(self, store, fitted):
        _, decomposition = fitted
        record = store.save("anon", decomposition)
        assert record.fingerprint is None
        assert store.record("anon").fingerprint is None

    def test_explicit_fingerprint_wins(self, store, fitted):
        _, decomposition = fitted
        record = store.save("pinned", decomposition, fingerprint="abc123")
        assert record.fingerprint == "abc123"

    def test_save_replaces_existing_model(self, store, fitted):
        matrix, decomposition = fitted
        store.save("m", decomposition, matrix=matrix)
        other = registry.get("isvd0").fit(matrix, 3, target="c")
        store.save("m", other, matrix=matrix)
        loaded, record = store.load("m")
        assert record.method == "ISVD0" and record.rank == 3
        assert loaded.rank == 3

    def test_load_unknown_model_raises_with_available_names(self, store, fitted):
        matrix, decomposition = fitted
        store.save("present", decomposition)
        with pytest.raises(ModelStoreError, match="present"):
            store.load("absent")

    def test_record_round_trips_through_dict(self, store, fitted):
        _, decomposition = fitted
        record = store.save("m", decomposition)
        assert ModelRecord.from_dict(record.to_dict()) == record
        # The dict form is JSON-serializable as-is (the HTTP API emits it).
        assert json.loads(json.dumps(record.to_dict())) == record.to_dict()


class TestListingAndDeletion:
    def test_list_is_sorted_and_complete(self, store, fitted):
        matrix, decomposition = fitted
        for name in ("zeta", "alpha", "mid"):
            store.save(name, decomposition, matrix=matrix)
        assert [r.name for r in store.list()] == ["alpha", "mid", "zeta"]
        assert len(store) == 3

    def test_list_skips_incomplete_models(self, store, fitted):
        matrix, decomposition = fitted
        store.save("whole", decomposition)
        # A metadata file without factors (e.g. a crashed publisher) is ignored.
        (store.directory / "broken.json").write_text(
            json.dumps(store.record("whole").to_dict()))
        assert [r.name for r in store.list()] == ["whole"]
        assert store.exists("whole") and not store.exists("broken")

    def test_delete_removes_both_files(self, store, fitted):
        _, decomposition = fitted
        store.save("m", decomposition)
        store.delete("m")
        assert not store.exists("m")
        assert list(store.directory.iterdir()) == []

    def test_delete_unknown_raises(self, store):
        with pytest.raises(ModelStoreError):
            store.delete("ghost")

    def test_read_paths_do_not_create_the_directory(self, tmp_path):
        # A mistyped --store path must surface as an empty store, not
        # silently materialize a directory on every read-only command.
        store = ModelStore(tmp_path / "typo")
        assert store.list() == []
        assert len(store) == 0
        assert not store.exists("m")
        assert not (tmp_path / "typo").exists()

    def test_list_skips_foreign_json(self, store, fitted):
        _, decomposition = fitted
        store.save("real", decomposition)
        (store.directory / "package.json").write_text('{"name": "not-a-model"}')
        (store.directory / "broken2.json").write_text("{not json")
        (store.directory / "package.npz").write_bytes(b"junk")
        (store.directory / "broken2.npz").write_bytes(b"junk")
        assert [r.name for r in store.list()] == ["real"]

    def test_record_of_foreign_json_raises_store_error(self, store, fitted):
        _, decomposition = fitted
        store.save("real", decomposition)
        (store.directory / "foreign.json").write_text('{"name": "x"}')
        with pytest.raises(ModelStoreError, match="metadata"):
            store.record("foreign")


class TestNamesAndAtomicity:
    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden", "sp ace"])
    def test_invalid_names_rejected(self, store, fitted, bad):
        _, decomposition = fitted
        with pytest.raises(ModelStoreError, match="invalid model name"):
            store.save(bad, decomposition)

    def test_no_temp_files_survive_a_save(self, store, fitted):
        matrix, decomposition = fitted
        store.save("m", decomposition, matrix=matrix)
        leftovers = [p.name for p in store.directory.iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []

    def test_atomic_write_cleans_up_on_error(self, tmp_path):
        target = tmp_path / "out.npz"
        with pytest.raises(RuntimeError):
            with repro_io.atomic_write(target) as tmp:
                tmp.write_bytes(b"partial")
                raise RuntimeError("writer crashed")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_atomic_write_keeps_npz_suffix(self, tmp_path):
        # numpy.savez appends ".npz" to paths without the suffix; the temp
        # path must keep it so the final replace targets the written file.
        with repro_io.atomic_write(tmp_path / "cell.npz") as tmp:
            assert tmp.suffix == ".npz"
            np.savez(tmp, x=np.arange(3))
        assert (tmp_path / "cell.npz").exists()

    def test_concurrent_publishers_leave_a_complete_model(self, store, fitted):
        matrix, decomposition = fitted
        other = registry.get("isvd0").fit(matrix, 3, target="c")
        errors = []

        def publish(dec):
            try:
                for _ in range(10):
                    store.save("contested", dec, matrix=matrix)
            except Exception as error:  # pragma: no cover - failure diagnostics
                errors.append(error)

        threads = [threading.Thread(target=publish, args=(dec,))
                   for dec in (decomposition, other)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        loaded, record = store.load("contested")
        # Atomic replacement: both files parse completely — a reader can race
        # the writers and still never observe a truncated NPZ or JSON file.
        assert record.method in ("ISVD4", "ISVD0")
        assert loaded.rank in (3, 4)
