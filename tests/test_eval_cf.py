"""Tests for the collaborative-filtering evaluation helpers."""

import numpy as np
import pytest

from repro.core.ipmf import PMF
from repro.core.isvd import isvd
from repro.datasets.ratings import user_category_interval_matrix
from repro.eval.cf import rating_prediction_rmse, reconstruction_rating_rmse
from repro.interval.array import IntervalMatrix


class TestRatingPredictionRmse:
    def test_perfect_model_scores_zero(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset

        class PerfectModel:
            def predict(self):
                return dataset.ratings.copy()

        _, test_mask = dataset.holdout_split(0.2, rng=0)
        assert rating_prediction_rmse(PerfectModel(), dataset.ratings, test_mask) == 0.0

    def test_predictions_are_clipped(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset

        class WildModel:
            def predict(self):
                return np.full_like(dataset.ratings, 100.0)

        _, test_mask = dataset.holdout_split(0.2, rng=0)
        score = rating_prediction_rmse(WildModel(), dataset.ratings, test_mask)
        # Clipping to 5 bounds the worst-case error by |5 - 1| = 4.
        assert score <= 4.0

    def test_empty_test_mask_raises(self, tiny_ratings_dataset):
        model = PMF(rank=2, epochs=1).fit(tiny_ratings_dataset.ratings)
        with pytest.raises(ValueError):
            rating_prediction_rmse(model, tiny_ratings_dataset.ratings,
                                   np.zeros_like(tiny_ratings_dataset.ratings, dtype=bool))

    def test_fitted_pmf_produces_finite_score(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset
        train_mask, test_mask = dataset.holdout_split(0.2, rng=0)
        model = PMF(rank=4, epochs=15, seed=0).fit(dataset.ratings * train_mask,
                                                   mask=train_mask)
        score = rating_prediction_rmse(model, dataset.ratings, test_mask)
        assert 0.0 < score < 4.0


class TestClipRange:
    def _wild_model(self, dataset):
        class WildModel:
            def predict(self):
                return np.full_like(dataset.ratings, 100.0)

        return WildModel()

    def test_none_disables_clipping(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset
        _, test_mask = dataset.holdout_split(0.2, rng=0)
        unclipped = rating_prediction_rmse(self._wild_model(dataset), dataset.ratings,
                                           test_mask, clip_range=None)
        clipped = rating_prediction_rmse(self._wild_model(dataset), dataset.ratings,
                                         test_mask)
        # Without clipping the constant-100 predictor keeps its full error.
        assert unclipped > 90.0 > clipped

    def test_none_disables_clipping_for_reconstruction(self):
        # A non-star-rating domain: values far outside [1, 5].
        reconstruction = IntervalMatrix.from_scalar(np.full((3, 3), 40.0))
        truth = np.full((3, 3), 40.0)
        mask = np.ones((3, 3), dtype=bool)
        assert reconstruction_rating_rmse(reconstruction, truth, mask,
                                          clip_range=None) == pytest.approx(0.0)
        # The star-scale default would clip 40 -> 5 and report a large error.
        assert reconstruction_rating_rmse(reconstruction, truth, mask) == pytest.approx(35.0)

    def test_misordered_clip_range_raises(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset
        _, test_mask = dataset.holdout_split(0.2, rng=0)
        with pytest.raises(ValueError, match="clip_range"):
            rating_prediction_rmse(self._wild_model(dataset), dataset.ratings,
                                   test_mask, clip_range=(5.0, 1.0))
        reconstruction = IntervalMatrix.from_scalar(dataset.ratings)
        with pytest.raises(ValueError, match="clip_range"):
            reconstruction_rating_rmse(reconstruction, dataset.ratings,
                                       dataset.observed_mask, clip_range=(5.0, 1.0))

    def test_nan_clip_bounds_raise_instead_of_poisoning_predictions(self, tiny_ratings_dataset):
        # Regression: `nan > nan` is False, so NaN bounds slipped past the
        # misordered-range check and np.clip propagated NaN into every
        # prediction (and thence into the reported RMSE).
        dataset = tiny_ratings_dataset
        _, test_mask = dataset.holdout_split(rng=0)
        for bad in ((float("nan"), 5.0), (1.0, float("nan")),
                    (float("nan"), float("nan")), (float("-inf"), float("inf"))):
            with pytest.raises(ValueError, match="finite"):
                rating_prediction_rmse(self._wild_model(dataset), dataset.ratings,
                                       test_mask, clip_range=bad)
            with pytest.raises(ValueError, match="finite"):
                reconstruction_rating_rmse(
                    IntervalMatrix.from_scalar(dataset.ratings), dataset.ratings,
                    dataset.observed_mask, clip_range=bad)

    def test_degenerate_clip_range_allowed(self):
        reconstruction = IntervalMatrix.from_scalar(np.full((2, 2), 9.0))
        truth = np.full((2, 2), 3.0)
        mask = np.ones((2, 2), dtype=bool)
        assert reconstruction_rating_rmse(reconstruction, truth, mask,
                                          clip_range=(3.0, 3.0)) == pytest.approx(0.0)


class TestReconstructionRatingRmse:
    def test_accepts_decomposition(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        decomposition = isvd(matrix, rank=4, method="isvd4", target="b")
        mask = matrix.midpoint() != 0.0
        score = reconstruction_rating_rmse(decomposition, matrix.midpoint(), mask)
        assert 0.0 <= score < 4.0

    def test_accepts_interval_matrix(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        mask = matrix.midpoint() != 0.0
        clipped_truth = np.clip(matrix.midpoint(), 1.0, 5.0)
        score = reconstruction_rating_rmse(matrix, clipped_truth, mask)
        assert score == pytest.approx(0.0, abs=1e-9)

    def test_scalar_truth_wrapped(self):
        reconstruction = IntervalMatrix.from_scalar(np.full((2, 2), 3.0))
        truth = np.full((2, 2), 4.0)
        mask = np.ones((2, 2), dtype=bool)
        assert reconstruction_rating_rmse(reconstruction, truth, mask) == pytest.approx(1.0)


class TestMethodKeyPrediction:
    def test_accepts_any_registered_method_key(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        mask = matrix.midpoint() != 0.0
        for method in ("isvd4", "isvd0", "interval-pca"):
            score = reconstruction_rating_rmse(matrix, matrix.midpoint(), mask,
                                               method=method, rank=4)
            assert 0.0 <= score < 5.0

    def test_method_key_requires_rank(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        mask = matrix.midpoint() != 0.0
        with pytest.raises(ValueError, match="rank"):
            reconstruction_rating_rmse(matrix, matrix.midpoint(), mask, method="isvd4")

    def test_method_key_matches_explicit_decomposition(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        mask = matrix.midpoint() != 0.0
        explicit = reconstruction_rating_rmse(
            isvd(matrix, rank=4, method="isvd4", target="b"), matrix.midpoint(), mask)
        via_key = reconstruction_rating_rmse(matrix, matrix.midpoint(), mask,
                                             method="isvd4", rank=4, target="b")
        assert via_key == pytest.approx(explicit)
