"""Tests for the uniform synthetic data generators (Table 1)."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    density_sweep,
    generate_trials,
    intensity_sweep,
    make_uniform_interval_matrix,
    matrix_density_sweep,
    rank_sweep,
    shape_sweep,
)


class TestSyntheticConfig:
    def test_defaults_match_paper(self):
        config = SyntheticConfig()
        assert config.shape == (40, 250)
        assert config.matrix_density == 0.0
        assert config.interval_density == 1.0
        assert config.interval_intensity == 1.0
        assert config.rank == 20

    def test_with_replaces_fields(self):
        config = SyntheticConfig().with_(rank=5, interval_density=0.5)
        assert config.rank == 5 and config.interval_density == 0.5
        assert config.shape == (40, 250)

    def test_describe_mentions_key_parameters(self):
        text = SyntheticConfig().describe()
        assert "40x250" in text and "rank=20" in text

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            SyntheticConfig(shape=(10, 10), rank=20)

    def test_invalid_density_raises(self):
        with pytest.raises(ValueError):
            SyntheticConfig(matrix_density=1.5)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            SyntheticConfig(shape=(0, 10))


class TestGeneration:
    def test_matrix_shape_matches_config(self):
        config = SyntheticConfig(shape=(12, 20), rank=5)
        matrix = make_uniform_interval_matrix(config, rng=0)
        assert matrix.shape == (12, 20)

    def test_default_config_is_fully_interval_valued(self):
        matrix = make_uniform_interval_matrix(SyntheticConfig(shape=(30, 30), rank=5), rng=0)
        assert (matrix.span() > 0).mean() > 0.9

    def test_zero_intensity_gives_scalar_matrix(self):
        config = SyntheticConfig(shape=(10, 10), rank=3, interval_intensity=0.0)
        assert make_uniform_interval_matrix(config, rng=0).is_scalar()

    def test_generate_trials_count_and_independence(self):
        config = SyntheticConfig(shape=(8, 8), rank=2)
        trials = list(generate_trials(config, trials=4, seed=1))
        assert len(trials) == 4
        assert not trials[0].allclose(trials[1])

    def test_generate_trials_reproducible(self):
        config = SyntheticConfig(shape=(8, 8), rank=2)
        a = list(generate_trials(config, trials=2, seed=9))
        b = list(generate_trials(config, trials=2, seed=9))
        assert a[0] == b[0] and a[1] == b[1]

    def test_generate_trials_invalid_count_raises(self):
        with pytest.raises(ValueError):
            list(generate_trials(trials=0))


class TestSweeps:
    def test_density_sweep_varies_only_density(self):
        configs = density_sweep()
        assert len({c.interval_density for c in configs}) == len(configs)
        assert len({c.shape for c in configs}) == 1

    def test_intensity_sweep(self):
        configs = intensity_sweep(intensities=(0.1, 0.9))
        assert [c.interval_intensity for c in configs] == [0.1, 0.9]

    def test_matrix_density_sweep(self):
        configs = matrix_density_sweep()
        assert configs[0].matrix_density == 0.0

    def test_shape_sweep_clips_rank(self):
        base = SyntheticConfig(rank=40)
        configs = shape_sweep(base, shapes=((25, 400), (400, 250)))
        assert configs[0].rank == 25
        assert configs[1].rank == 40

    def test_rank_sweep(self):
        configs = rank_sweep(ranks=(5, 10))
        assert [c.rank for c in configs] == [5, 10]
