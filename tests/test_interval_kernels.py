"""Tests of the pluggable interval-product kernel subsystem.

The load-bearing facts checked here:

* the paper's ``endpoint4`` construction under-covers on mixed-sign operands
  (the ``[0, 0]`` vs ``[-4, 4]`` counterexample) — the confirmed bug the
  kernel registry exists to make explicit and fixable;
* ``exact`` is the interval hull (brute-force vertex enumeration agrees);
* ``exact`` and ``rump`` enclose every Monte-Carlo-sampled realization of a
  random interval product (the soundness property ``endpoint4`` lacks);
* ``endpoint4`` equals ``exact`` on sign-consistent operands, which is why
  the paper's figures are unaffected by the bug on non-negative data;
* the kernel threads end to end: isvd, reconstruct, fold-in, engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import (
    brute_force_hull,
    common_settings,
    interval_matrix_params,
    random_interval_pair,
    tiny_interval_matrix_params,
)

from repro.core.isvd import isvd
from repro.core.reconstruct import reconstruct, reconstruct_target_a
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import (
    DEFAULT_KERNEL,
    KernelInfo,
    available_kernels,
    get_kernel,
    kernel_infos,
)
from repro.interval.linalg import interval_dot, interval_matmul
from repro.interval.random import random_interval_matrix
from repro.interval.scalar import Interval, IntervalError

COMMON_SETTINGS = common_settings(max_examples=25)

#: The issue's counterexample: one interval row, one scalar column.
COUNTER_A = IntervalMatrix([[-1.0, -1.0]], [[1.0, 1.0]])
COUNTER_B = IntervalMatrix.from_scalar([[2.0], [-2.0]])

_random_pair = random_interval_pair


class TestRegistry:
    def test_three_kernels_registered(self):
        assert available_kernels() == ["endpoint4", "exact", "rump"]

    def test_default_is_paper_faithful_endpoint4(self):
        info = get_kernel(None)
        assert info.key == DEFAULT_KERNEL == "endpoint4"
        assert info.paper_faithful and not info.sound

    def test_capability_metadata(self):
        by_key = {info.key: info for info in kernel_infos()}
        assert not by_key["endpoint4"].sound
        assert by_key["exact"].sound and by_key["exact"].tight
        assert by_key["rump"].sound and not by_key["rump"].tight
        assert [i for i in kernel_infos() if i.paper_faithful] == [by_key["endpoint4"]]

    def test_get_by_key_case_insensitive(self):
        assert get_kernel("RUMP").key == "rump"

    def test_get_passes_info_through(self):
        info = get_kernel("exact")
        assert get_kernel(info) is info

    def test_unknown_kernel_raises_with_choices(self):
        with pytest.raises(IntervalError, match="endpoint4"):
            get_kernel("midpoint")

    def test_infos_are_immutable(self):
        with pytest.raises(AttributeError):
            get_kernel("rump").sound = False


class TestFourEndpointEnclosureBug:
    """Regression: the confirmed under-coverage of the paper's construction."""

    def test_endpoint4_collapses_to_degenerate_zero(self):
        result = interval_matmul(COUNTER_A, COUNTER_B, kernel="endpoint4")
        assert result.lower[0, 0] == 0.0 and result.upper[0, 0] == 0.0

    def test_default_kernel_reproduces_the_bug(self):
        # Byte-identical reproduction requires the default to stay endpoint4,
        # bug included; this pins that contract.
        result = interval_matmul(COUNTER_A, COUNTER_B)
        assert result.lower[0, 0] == 0.0 and result.upper[0, 0] == 0.0

    def test_exact_recovers_the_true_range(self):
        result = interval_matmul(COUNTER_A, COUNTER_B, kernel="exact")
        assert result.lower[0, 0] == -4.0 and result.upper[0, 0] == 4.0

    def test_rump_encloses_the_true_range(self):
        result = interval_matmul(COUNTER_A, COUNTER_B, kernel="rump")
        assert result.lower[0, 0] <= -4.0 and result.upper[0, 0] >= 4.0

    def test_monte_carlo_escapes_endpoint4(self):
        rng = np.random.default_rng(42)
        e4 = interval_matmul(COUNTER_A, COUNTER_B, kernel="endpoint4")
        exact = interval_matmul(COUNTER_A, COUNTER_B, kernel="exact")
        escaped = False
        for _ in range(200):
            sample = rng.uniform(COUNTER_A.lower, COUNTER_A.upper)
            product = sample @ COUNTER_B.lower
            assert exact.contains(IntervalMatrix.from_scalar(product), tol=1e-12)
            if not e4.contains(IntervalMatrix.from_scalar(product), tol=1e-12):
                escaped = True
        assert escaped, "sampled products should fall outside the endpoint4 interval"


class TestExactIsTheHull:
    @settings(**COMMON_SETTINGS)
    @given(tiny_interval_matrix_params)
    def test_matches_brute_force_vertex_enumeration(self, params):
        a, b, _ = _random_pair(params)
        lower, upper = brute_force_hull(a, b)
        result = interval_matmul(a, b, kernel="exact")
        np.testing.assert_allclose(result.lower, lower, atol=1e-10)
        np.testing.assert_allclose(result.upper, upper, atol=1e-10)


class TestSoundnessProperty:
    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params, st.sampled_from(["exact", "rump"]))
    def test_kernels_enclose_monte_carlo_realizations(self, params, kernel):
        a, b, rng = _random_pair(params)
        result = interval_matmul(a, b, kernel=kernel)
        for _ in range(25):
            a_sample = rng.uniform(a.lower, a.upper)
            b_sample = rng.uniform(b.lower, b.upper)
            product = IntervalMatrix.from_scalar(a_sample @ b_sample)
            assert result.contains(product, tol=1e-9)

    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params)
    def test_nesting_endpoint4_in_exact_in_rump(self, params):
        a, b, _ = _random_pair(params)
        e4 = interval_matmul(a, b, kernel="endpoint4")
        exact = interval_matmul(a, b, kernel="exact")
        rump = interval_matmul(a, b, kernel="rump")
        # The four endpoint products are achievable member products, so the
        # unsound interval sits inside the hull; rump over-approximates it.
        assert exact.contains(e4, tol=1e-9)
        assert rump.contains(exact, tol=1e-9)

    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params)
    def test_all_kernels_valid_and_same_shape(self, params):
        a, b, _ = _random_pair(params)
        for kernel in available_kernels():
            result = interval_matmul(a, b, kernel=kernel)
            assert result.shape == (a.shape[0], b.shape[1])
            assert result.is_valid()


class TestSignConsistentEquivalence:
    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params)
    def test_endpoint4_equals_exact_on_nonnegative_operands(self, params):
        a, b, _ = _random_pair(params, mixed_sign=False)
        assert (a.lower >= 0).all() and (b.lower >= 0).all()
        e4 = interval_matmul(a, b, kernel="endpoint4")
        exact = interval_matmul(a, b, kernel="exact")
        assert e4.allclose(exact, atol=1e-10)

    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params)
    def test_endpoint4_equals_exact_on_nonpositive_left_operand(self, params):
        a, b, _ = _random_pair(params, mixed_sign=False)
        a = IntervalMatrix(-a.upper, -a.lower)
        e4 = interval_matmul(a, b, kernel="endpoint4")
        exact = interval_matmul(a, b, kernel="exact")
        assert e4.allclose(exact, atol=1e-10)

    def test_degenerate_operands_all_kernels_agree_exactly(self):
        rng = np.random.default_rng(5)
        a = IntervalMatrix.from_scalar(rng.normal(size=(4, 3)))
        b = IntervalMatrix.from_scalar(rng.normal(size=(3, 5)))
        expected = a.lower @ b.lower
        for kernel in available_kernels():
            result = interval_matmul(a, b, kernel=kernel)
            np.testing.assert_allclose(result.lower, expected, atol=1e-12)
            np.testing.assert_allclose(result.upper, expected, atol=1e-12)


class TestShapesAndPrimitives:
    def test_vector_operands_match_numpy_shapes(self):
        matrix = IntervalMatrix.from_scalar(np.arange(6.0).reshape(2, 3))
        vector = IntervalMatrix.from_scalar(np.ones(3))
        for kernel in available_kernels():
            assert interval_matmul(matrix, vector, kernel=kernel).shape == (2,)
        row = IntervalMatrix.from_scalar(np.ones(2))
        for kernel in available_kernels():
            assert interval_matmul(row, matrix, kernel=kernel).shape == (3,)

    def test_interval_dot_default_is_exact(self):
        x = IntervalMatrix(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        y = IntervalMatrix.from_scalar(np.array([2.0, -2.0]))
        assert interval_dot(x, y) == Interval(-4.0, 4.0)

    def test_interval_dot_endpoint4_under_covers(self):
        x = IntervalMatrix(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        y = IntervalMatrix.from_scalar(np.array([2.0, -2.0]))
        assert interval_dot(x, y, kernel="endpoint4") == Interval(0.0, 0.0)

    def test_custom_matmul_primitive_is_honoured(self):
        calls = []

        def counting_matmul(x, y):
            calls.append((x.shape, y.shape))
            return np.matmul(x, y)

        a, b, _ = _random_pair((3, 4, 2, 0))
        for kernel in available_kernels():
            baseline = interval_matmul(a, b, kernel=kernel)
            calls.clear()
            result = interval_matmul(a, b, matmul=counting_matmul, kernel=kernel)
            assert calls, f"kernel {kernel} bypassed the custom matmul"
            assert result.allclose(baseline)


class TestEndToEndThreading:
    def test_isvd_accepts_kernel_and_default_is_unchanged(self):
        matrix = random_interval_matrix((10, 8), interval_density=1.0,
                                        interval_intensity=0.8, rng=3)
        default = isvd(matrix, 4, method="isvd4", target="a")
        endpoint4 = isvd(matrix, 4, method="isvd4", target="a", kernel="endpoint4")
        assert default.u.allclose(endpoint4.u, atol=0.0, rtol=0.0)
        for kernel in ("exact", "rump"):
            other = isvd(matrix, 4, method="isvd4", target="a", kernel=kernel)
            assert other.shape == matrix.shape
            assert other.u.sorted_endpoints().is_valid()

    def test_sound_kernels_widen_isvd_u(self):
        # Mixed-sign singular-vector inverses are exactly where endpoint4's
        # cancellation bites, so sound kernels can only produce wider U.
        matrix = random_interval_matrix((12, 9), interval_density=1.0,
                                        interval_intensity=1.0, rng=11)
        narrow = isvd(matrix, 3, method="isvd3", target="a", kernel="endpoint4")
        wide = isvd(matrix, 3, method="isvd3", target="a", kernel="exact")
        assert wide.u.mean_span() >= narrow.u.mean_span() - 1e-12

    def test_reconstruct_accepts_kernel(self):
        matrix = random_interval_matrix((8, 6), interval_density=1.0,
                                        interval_intensity=0.5, rng=7)
        decomposition = isvd(matrix, 3, method="isvd3", target="a")
        default = reconstruct(decomposition)
        assert default.allclose(reconstruct_target_a(decomposition, kernel="endpoint4"))
        for kernel in ("exact", "rump"):
            result = reconstruct(decomposition, kernel=kernel)
            assert result.shape == matrix.shape
            assert result.contains(default, tol=1e-9)

    def test_registry_fit_threads_kernel_option(self):
        from repro.core import registry

        matrix = random_interval_matrix((9, 7), interval_density=1.0,
                                        interval_intensity=0.8, rng=2)
        info = registry.get("isvd4")
        assert info.kernel_aware
        via_registry = info.fit(matrix, 3, target="a", kernel="rump")
        direct = isvd(matrix, 3, method="isvd4", target="a", kernel="rump")
        assert via_registry.u.allclose(direct.u, atol=0.0, rtol=0.0)

    def test_only_interval_product_methods_are_kernel_aware(self):
        from repro.core import registry

        aware = {info.key for info in registry.infos() if info.kernel_aware}
        assert aware == {"isvd2", "isvd3", "isvd4"}

    def test_foldin_latent_features_respect_kernel(self):
        from repro.serve.foldin import FoldInProjector

        matrix = random_interval_matrix((10, 8), interval_density=1.0,
                                        interval_intensity=0.8, rng=4)
        decomposition = isvd(matrix, 3, method="isvd3", target="a")
        default = FoldInProjector(decomposition).latent_features(matrix.row(0))
        rump = FoldInProjector(decomposition, kernel="rump").latent_features(matrix.row(0))
        endpoint4 = FoldInProjector(decomposition, kernel="endpoint4")
        assert default.allclose(endpoint4.latent_features(matrix.row(0)),
                                atol=0.0, rtol=0.0)
        assert rump.contains(default, tol=1e-9)

    def test_engine_kernel_reaches_decompositions_and_cache_key(self, tmp_path):
        from repro.experiments.engine import ExperimentEngine

        matrix = random_interval_matrix((10, 8), interval_density=1.0,
                                        interval_intensity=0.8, rng=9)
        plain = ExperimentEngine(cache_dir=tmp_path)
        rump = ExperimentEngine(cache_dir=tmp_path, kernel="rump")
        base, hit = plain.decompose(matrix, "isvd4", 3, target="a")
        assert not hit
        widened, hit = rump.decompose(matrix, "isvd4", 3, target="a")
        assert not hit, "kernel must be part of the cache key"
        assert widened.u.mean_span() >= base.u.mean_span() - 1e-12
        again, hit = rump.decompose(matrix, "isvd4", 3, target="a")
        assert hit
        assert again.u.allclose(widened.u)

    def test_engine_normalizes_explicit_default_kernel(self, tmp_path):
        from repro.experiments.engine import ExperimentEngine

        matrix = random_interval_matrix((8, 6), interval_density=1.0,
                                        interval_intensity=0.5, rng=6)
        plain = ExperimentEngine(cache_dir=tmp_path)
        explicit = ExperimentEngine(cache_dir=tmp_path, kernel="endpoint4")
        assert explicit.kernel is None
        plain.decompose(matrix, "isvd4", 3, target="a")
        _, hit = explicit.decompose(matrix, "isvd4", 3, target="a")
        assert hit, "explicit endpoint4 must reuse the default run's cache entries"

    def test_engine_rejects_unknown_kernel_at_construction(self):
        from repro.experiments.engine import ExperimentEngine

        with pytest.raises(IntervalError, match="unknown interval kernel"):
            ExperimentEngine(kernel="typo")

    def test_engine_does_not_pass_kernel_to_unaware_methods(self):
        from repro.experiments.engine import ExperimentEngine

        matrix = random_interval_matrix((8, 6), interval_density=1.0,
                                        interval_intensity=0.5, rng=1)
        engine = ExperimentEngine(kernel="rump")
        # isvd1 never forms interval products; the engine must not feed the
        # option into its fit (nor poison its cache keys).
        decomposition, _ = engine.decompose(matrix, "isvd1", 3, target="b")
        assert decomposition.method == "ISVD1"
