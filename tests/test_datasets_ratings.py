"""Tests for the synthetic ratings datasets and interval constructions (supp. F.2)."""

import numpy as np
import pytest

from repro.datasets.ratings import (
    SOCIAL_MEDIA_PRESETS,
    RatingsDataset,
    make_ratings_dataset,
    rating_interval_matrix,
    user_category_interval_matrix,
)


class TestPresets:
    def test_paper_presets_exist(self):
        assert set(SOCIAL_MEDIA_PRESETS) == {"ciao", "epinions", "movielens"}

    def test_category_counts_match_paper(self):
        assert SOCIAL_MEDIA_PRESETS["ciao"].n_categories == 28
        assert SOCIAL_MEDIA_PRESETS["epinions"].n_categories == 27
        assert SOCIAL_MEDIA_PRESETS["movielens"].n_categories == 19

    def test_full_sizes_recorded(self):
        assert SOCIAL_MEDIA_PRESETS["movielens"].full_n_users == 943
        assert SOCIAL_MEDIA_PRESETS["movielens"].full_n_items == 1682


class TestGeneration:
    def test_shapes_and_values(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset
        assert dataset.ratings.shape == (40, 80)
        observed = dataset.ratings[dataset.observed_mask]
        assert observed.min() >= 1.0 and observed.max() <= 5.0

    def test_density_close_to_requested(self, tiny_ratings_dataset):
        assert 0.2 < tiny_ratings_dataset.density < 0.4

    def test_every_category_has_items(self, tiny_ratings_dataset):
        assert set(tiny_ratings_dataset.item_categories) == set(range(8))

    def test_preset_geometry(self):
        dataset = make_ratings_dataset(preset="ciao", n_users=50, n_items=100, seed=0)
        assert dataset.n_categories == 28
        assert dataset.name == "ciao"

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            make_ratings_dataset(preset="netflix")

    def test_explicit_zero_geometry_raises_not_preset_fallback(self):
        # Regression: `or`-fallbacks treated an explicit 0 as "use the preset
        # default" — make_ratings_dataset("movielens", n_users=0) silently
        # yielded 400 users instead of rejecting the impossible geometry.
        for kwargs in ({"n_users": 0}, {"n_items": 0}, {"n_categories": 0}):
            with pytest.raises(ValueError, match="positive integer"):
                make_ratings_dataset(preset="movielens", **kwargs)

    def test_negative_and_fractional_geometry_raise(self):
        with pytest.raises(ValueError, match="n_users"):
            make_ratings_dataset(preset="movielens", n_users=-5)
        with pytest.raises(ValueError, match="n_items"):
            make_ratings_dataset(preset="movielens", n_items=2.5)

    def test_custom_requires_all_parameters(self):
        with pytest.raises(ValueError):
            make_ratings_dataset(preset=None, n_users=10)

    def test_too_many_categories_raises(self):
        with pytest.raises(ValueError):
            make_ratings_dataset(preset=None, n_users=10, n_items=5, n_categories=10,
                                 density=0.5)

    def test_reproducible(self):
        a = make_ratings_dataset(preset="movielens", n_users=20, n_items=30, seed=3)
        b = make_ratings_dataset(preset="movielens", n_users=20, n_items=30, seed=3)
        np.testing.assert_array_equal(a.ratings, b.ratings)


class TestHoldoutSplit:
    def test_masks_partition_observed_cells(self, tiny_ratings_dataset):
        train, test = tiny_ratings_dataset.holdout_split(0.25, rng=0)
        observed = tiny_ratings_dataset.observed_mask
        assert not (train & test).any()
        np.testing.assert_array_equal(train | test, observed)

    def test_test_fraction_roughly_respected(self, tiny_ratings_dataset):
        train, test = tiny_ratings_dataset.holdout_split(0.3, rng=0)
        fraction = test.sum() / (train.sum() + test.sum())
        assert 0.2 < fraction < 0.4

    def test_invalid_fraction_raises(self, tiny_ratings_dataset):
        with pytest.raises(ValueError):
            tiny_ratings_dataset.holdout_split(0.0)


class TestUserCategoryMatrix:
    def test_shape(self, tiny_ratings_dataset):
        matrix = user_category_interval_matrix(tiny_ratings_dataset)
        assert matrix.shape == (40, 8)

    def test_intervals_are_min_max_of_ratings(self, tiny_ratings_dataset):
        dataset = tiny_ratings_dataset
        matrix = user_category_interval_matrix(dataset)
        user, category = 0, int(dataset.item_categories[np.flatnonzero(dataset.observed_mask[0])[0]])
        items = np.flatnonzero((dataset.item_categories == category) & dataset.observed_mask[user])
        ratings = dataset.ratings[user, items]
        assert matrix.lower[user, category] == ratings.min()
        assert matrix.upper[user, category] == ratings.max()

    def test_unrated_categories_are_scalar_zero(self):
        ratings = np.zeros((3, 4))
        ratings[0, 0] = 5.0
        dataset = RatingsDataset(ratings=ratings, item_categories=np.array([0, 0, 1, 1]),
                                 n_categories=2)
        matrix = user_category_interval_matrix(dataset)
        assert matrix.lower[1, 0] == matrix.upper[1, 0] == 0.0
        assert matrix.upper[0, 0] == 5.0

    def test_result_is_valid(self, tiny_ratings_dataset):
        assert user_category_interval_matrix(tiny_ratings_dataset).is_valid()


class TestRatingIntervalMatrix:
    def test_shape_and_validity(self, tiny_ratings_dataset):
        matrix = rating_interval_matrix(tiny_ratings_dataset, alpha=0.5)
        assert matrix.shape == tiny_ratings_dataset.ratings.shape
        assert matrix.is_valid()

    def test_unobserved_cells_stay_scalar_zero(self, tiny_ratings_dataset):
        matrix = rating_interval_matrix(tiny_ratings_dataset, alpha=0.5)
        unobserved = ~tiny_ratings_dataset.observed_mask
        np.testing.assert_array_equal(matrix.lower[unobserved], 0.0)
        np.testing.assert_array_equal(matrix.upper[unobserved], 0.0)

    def test_ratings_are_interval_midpoints(self, tiny_ratings_dataset):
        matrix = rating_interval_matrix(tiny_ratings_dataset, alpha=0.5)
        observed = tiny_ratings_dataset.observed_mask
        np.testing.assert_allclose(matrix.midpoint()[observed],
                                   tiny_ratings_dataset.ratings[observed], atol=1e-9)

    def test_alpha_zero_gives_scalar_matrix(self, tiny_ratings_dataset):
        matrix = rating_interval_matrix(tiny_ratings_dataset, alpha=0.0)
        assert matrix.is_scalar(tol=1e-12)

    def test_larger_alpha_wider_intervals(self, tiny_ratings_dataset):
        narrow = rating_interval_matrix(tiny_ratings_dataset, alpha=0.25)
        wide = rating_interval_matrix(tiny_ratings_dataset, alpha=1.0)
        assert wide.mean_span() > narrow.mean_span()

    def test_negative_alpha_raises(self, tiny_ratings_dataset):
        with pytest.raises(ValueError):
            rating_interval_matrix(tiny_ratings_dataset, alpha=-1.0)

    def test_delta_matches_union_std_definition(self):
        """The half-width equals alpha * std of the union of row/column ratings."""
        ratings = np.array([
            [5.0, 3.0, 0.0],
            [4.0, 0.0, 2.0],
            [0.0, 1.0, 0.0],
        ])
        dataset = RatingsDataset(ratings=ratings, item_categories=np.array([0, 1, 2]),
                                 n_categories=3)
        alpha = 0.5
        matrix = rating_interval_matrix(dataset, alpha=alpha)
        # Cell (0, 0): row 0 has {5, 3}, column 0 has {5, 4}; union multiset {5, 3, 4}.
        union = np.array([5.0, 3.0, 4.0])
        expected_delta = alpha * union.std()
        assert matrix.upper[0, 0] - ratings[0, 0] == pytest.approx(expected_delta)
