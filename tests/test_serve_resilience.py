"""Unit tests of the resilience primitives (fake clocks, no processes).

:class:`Deadline`, :class:`RetryPolicy` and :class:`CircuitBreaker` are
mechanism, not policy — they must be provably correct on their own before
the worker supervisor composes them, so everything here runs against
injected clocks and seeded RNGs: no sleeps, no sockets, no workers.
"""

import random
import threading

import pytest

from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.5)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_absolute_instant_is_shared_across_layers(self):
        # Two layers computing remaining() against the same Deadline agree
        # exactly — no slack accumulates from re-deriving durations.
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        clock.advance(3.0)
        assert deadline.at == pytest.approx(1010.0)
        assert Deadline(deadline.at, clock=clock).remaining() \
            == deadline.remaining()

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(0.0)
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(-1.0)


class TestDeadlineScope:
    def test_none_scope_is_a_no_op(self):
        assert current_deadline() is None
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert current_deadline() is None
        assert current_deadline() is None

    def test_scope_sets_and_restores_the_thread_local(self):
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
            assert deadline.remaining() <= 5.0
        assert current_deadline() is None

    def test_nested_scope_keeps_the_tighter_deadline(self):
        with deadline_scope(1.0) as outer:
            with deadline_scope(100.0) as inner:
                # The inner scope asked for more time than the outer allows:
                # the outer (tighter) deadline wins.
                assert inner is outer
                assert current_deadline() is outer
            with deadline_scope(0.001) as tighter:
                assert tighter is not outer
                assert tighter.at < outer.at
            assert current_deadline() is outer

    def test_scopes_are_thread_local(self):
        seen = []

        def probe():
            seen.append(current_deadline())

        with deadline_scope(5.0):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        # The worker thread never saw the request thread's deadline — which
        # is exactly why the router passes deadlines into thunks explicitly.
        assert seen == [None]


class TestRetryPolicy:
    def test_exponential_growth_capped_without_jitter(self):
        policy = RetryPolicy(attempts=5, backoff=0.1, multiplier=2.0,
                             max_backoff=0.35, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)  # capped
        assert policy.delay(3) == pytest.approx(0.35)

    def test_jitter_spreads_within_the_band_and_never_negative(self):
        policy = RetryPolicy(backoff=0.1, multiplier=1.0, jitter=0.5,
                             rng=random.Random(42))
        delays = [policy.delay(0) for _ in range(200)]
        assert all(0.05 <= delay <= 0.15 for delay in delays)
        assert max(delays) - min(delays) > 0.01  # actually spread

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match=">= 0"):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match=">= 0"):
            RetryPolicy().delay(-1)


class TestCircuitBreaker:
    def test_trips_open_at_threshold_within_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, window=10.0, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure("crash 1")
        breaker.record_failure("crash 2")
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        breaker.record_failure("crash 3")
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.last_failure == "crash 3"

    def test_window_aging_forgives_old_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, window=10.0, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure("old")
        breaker.record_failure("old")
        clock.advance(11.0)  # both age out of the window
        breaker.record_failure("new")
        assert breaker.state == BREAKER_CLOSED

    def test_cooldown_then_single_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure("crash")
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        # The first allow() after the cooldown claims the half-open probe;
        # concurrent callers are still refused until the probe resolves.
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()

    def test_probe_success_closes_and_clears_the_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, window=100.0, cooldown=1.0,
                                 clock=clock)
        breaker.record_failure("a")
        breaker.record_failure("b")
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        # The window was cleared: one fresh failure does not re-trip.
        breaker.record_failure("c")
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure("crash")
        clock.advance(5.0)
        assert breaker.allow()  # half-open
        breaker.record_failure("probe died")
        assert breaker.state == BREAKER_OPEN
        assert breaker.retry_after() == pytest.approx(5.0)  # fresh cooldown
        assert not breaker.allow()

    def test_closed_state_success_does_not_erase_the_window(self):
        # A worker that crashes, respawns fine, crashes again... is exactly
        # the loop the breaker exists to stop: only the half-open probe (or
        # window aging) forgives — but record_success() is only ever called
        # by the probe path, so failures simply accumulate here.
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, window=100.0, cooldown=1.0,
                                 clock=clock)
        for i in range(3):
            assert breaker.allow()  # each respawn is permitted...
            breaker.record_failure(f"crash {i}")
        assert breaker.state == BREAKER_OPEN  # ...but the loop still trips it

    def test_snapshot_is_json_shaped(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, window=10.0, cooldown=4.0,
                                 clock=clock)
        breaker.record_failure("boom")
        breaker.record_failure("boom again")
        snapshot = breaker.snapshot()
        assert snapshot["state"] == BREAKER_OPEN
        assert snapshot["recent_failures"] == 2
        assert snapshot["threshold"] == 2
        assert snapshot["retry_after"] == pytest.approx(4.0)
        assert snapshot["last_failure"] == "boom again"
        import json
        json.dumps(snapshot)  # must be wire-serializable for /healthz

    def test_allow_claims_are_race_free(self):
        # Many threads racing the end of a cooldown: exactly one wins the
        # half-open probe.
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=1.0,
                                 clock=clock)
        breaker.record_failure("crash")
        clock.advance(1.0)
        wins = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            if breaker.allow():
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="positive"):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError, match="positive"):
            CircuitBreaker(cooldown=-1)
