"""Tests for the interval linear-algebra kernels (supplementary Algorithms 1-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.interval.array import IntervalMatrix
from repro.interval.linalg import (
    average_replacement_matrix,
    average_replacement_vector,
    diag_interval,
    diagonal_of,
    interval_dot,
    interval_euclidean_distance,
    interval_frobenius_norm,
    interval_matmul,
    interval_self_dot,
    inverse_core,
    norm_mat,
    safe_inverse,
)
from repro.interval.scalar import Interval, IntervalError


class TestIntervalMatmul:
    def test_matches_scalar_matmul_for_degenerate_intervals(self, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 3))
        result = interval_matmul(IntervalMatrix.from_scalar(a), IntervalMatrix.from_scalar(b))
        np.testing.assert_allclose(result.lower, a @ b, atol=1e-10)
        np.testing.assert_allclose(result.upper, a @ b, atol=1e-10)

    def test_shape(self, rng):
        a = IntervalMatrix.from_scalar(rng.normal(size=(4, 5)))
        b = IntervalMatrix.from_scalar(rng.normal(size=(5, 3)))
        assert interval_matmul(a, b).shape == (4, 3)

    def test_incompatible_shapes_raise(self):
        with pytest.raises(IntervalError):
            interval_matmul(IntervalMatrix.zeros((2, 3)), IntervalMatrix.zeros((4, 2)))

    def test_encloses_endpoint_products(self, rng):
        values = rng.uniform(0, 1, size=(3, 4))
        radius = rng.uniform(0, 0.2, size=(3, 4))
        a = IntervalMatrix(values - radius, values + radius)
        b_values = rng.uniform(0, 1, size=(4, 2))
        b = IntervalMatrix.from_scalar(b_values)
        product = interval_matmul(a, b)
        for member in (a.lower, a.upper, a.midpoint()):
            inside = member @ b_values
            assert np.all(product.lower - 1e-9 <= inside)
            assert np.all(inside <= product.upper + 1e-9)

    def test_operator_form(self, rng):
        a = IntervalMatrix.from_scalar(rng.normal(size=(2, 3)))
        b = IntervalMatrix.from_scalar(rng.normal(size=(3, 2)))
        assert (a @ b).allclose(interval_matmul(a, b))

    def test_rmatmul_with_ndarray(self, rng):
        a = rng.normal(size=(2, 3))
        b = IntervalMatrix.from_scalar(rng.normal(size=(3, 2)))
        result = a @ b
        assert isinstance(result, IntervalMatrix)
        np.testing.assert_allclose(result.lower, a @ b.lower, atol=1e-10)

    def test_result_always_valid(self, rng):
        a = IntervalMatrix(rng.normal(size=(3, 3)) - 0.5, rng.normal(size=(3, 3)) + 0.5, check=False).sorted_endpoints()
        b = IntervalMatrix(rng.normal(size=(3, 3)) - 0.5, rng.normal(size=(3, 3)) + 0.5, check=False).sorted_endpoints()
        assert interval_matmul(a, b).is_valid()


class TestDotProducts:
    def test_interval_dot_matches_scalar(self):
        x = IntervalMatrix.from_scalar(np.array([1.0, 2.0, 3.0]))
        y = IntervalMatrix.from_scalar(np.array([4.0, 5.0, 6.0]))
        assert interval_dot(x, y) == Interval(32.0, 32.0)

    def test_interval_dot_requires_matching_1d(self):
        with pytest.raises(IntervalError):
            interval_dot(IntervalMatrix.zeros((2,)), IntervalMatrix.zeros((3,)))

    def test_self_dot_scalar_iff_scalar_vector(self):
        """Theorem 2: x.x is scalar only when x is scalar-valued."""
        scalar_vector = IntervalMatrix.from_scalar(np.array([1.0, -2.0]))
        assert interval_self_dot(scalar_vector).is_scalar
        interval_vector = IntervalMatrix(np.array([1.0, -2.0]), np.array([1.5, -2.0]))
        assert not interval_self_dot(interval_vector).is_scalar

    def test_self_dot_nonnegative(self):
        vector = IntervalMatrix(np.array([-1.0, 0.5]), np.array([2.0, 1.0]))
        assert interval_self_dot(vector).lo >= 0.0

    def test_self_dot_requires_1d(self):
        with pytest.raises(IntervalError):
            interval_self_dot(IntervalMatrix.zeros((2, 2)))

    def test_frobenius_norm_helper(self):
        m = IntervalMatrix.from_scalar(np.array([[3.0, 4.0]]))
        assert interval_frobenius_norm(m).lo == pytest.approx(5.0)


class TestAverageReplacement:
    def test_matrix_fixes_misordered_entries(self):
        m = IntervalMatrix(np.array([[2.0, 1.0]]), np.array([[1.0, 3.0]]), check=False)
        fixed = average_replacement_matrix(m)
        assert fixed[0, 0] == Interval(1.5, 1.5)
        assert fixed[0, 1] == Interval(1.0, 3.0)

    def test_matrix_no_misordered_is_copy(self, small_interval_matrix):
        fixed = average_replacement_matrix(small_interval_matrix)
        assert fixed == small_interval_matrix
        assert fixed is not small_interval_matrix

    def test_result_is_valid(self):
        m = IntervalMatrix(np.array([[5.0]]), np.array([[-5.0]]), check=False)
        assert average_replacement_matrix(m).is_valid()

    def test_vector_variant(self):
        v = IntervalMatrix(np.array([3.0, 1.0]), np.array([1.0, 2.0]), check=False)
        fixed = average_replacement_vector(v)
        assert fixed[0] == Interval(2.0, 2.0)

    def test_vector_variant_requires_1d(self):
        with pytest.raises(IntervalError):
            average_replacement_vector(IntervalMatrix.zeros((2, 2)))


class TestInverseCore:
    def test_scalar_inverse_rule(self):
        """Section 4.4.2.1: the optimal inverse entry is 2 / (s_lo + s_hi)."""
        sigma = diag_interval(IntervalMatrix(np.array([2.0]), np.array([4.0])))
        inverse = inverse_core(sigma)
        assert inverse[0, 0] == pytest.approx(2.0 / 6.0)

    def test_zero_entry_maps_to_zero(self):
        sigma = diag_interval(IntervalMatrix(np.array([0.0]), np.array([0.0])))
        assert inverse_core(sigma)[0, 0] == 0.0

    def test_half_zero_entries(self):
        sigma = diag_interval(IntervalMatrix(np.array([0.0]), np.array([4.0])))
        assert inverse_core(sigma)[0, 0] == pytest.approx(0.5)

    def test_degenerate_interval_gives_exact_inverse(self):
        sigma = diag_interval(IntervalMatrix(np.array([2.0]), np.array([2.0])))
        assert inverse_core(sigma)[0, 0] == pytest.approx(0.5)

    def test_negative_diagonal_raises(self):
        sigma = IntervalMatrix(np.diag([-1.0]), np.diag([1.0]), check=False)
        with pytest.raises(IntervalError):
            inverse_core(sigma)

    def test_misordered_diagonal_raises_instead_of_inverting(self):
        # Regression: [5, 0] used to return 2 / (5 + 0) = 0.4 — inverting a
        # non-interval and masking the upstream bug that produced it.
        sigma = IntervalMatrix(np.diag([5.0]), np.diag([0.0]), check=False)
        with pytest.raises(IntervalError, match="lower > upper"):
            inverse_core(sigma)

    def test_misordered_entry_among_valid_ones_raises(self):
        sigma = IntervalMatrix(np.diag([1.0, 3.0]), np.diag([2.0, 1.0]), check=False)
        with pytest.raises(IntervalError, match="1 diagonal entries"):
            inverse_core(sigma)

    def test_requires_square(self):
        with pytest.raises(IntervalError):
            inverse_core(IntervalMatrix.zeros((2, 3)))

    def test_product_with_core_near_identity(self):
        diag = IntervalMatrix(np.array([1.0, 2.0, 5.0]), np.array([1.5, 2.5, 6.0]))
        sigma = diag_interval(diag)
        inverse = inverse_core(sigma)
        product = interval_matmul(sigma, IntervalMatrix.from_scalar(inverse))
        midpoints = np.diag(product.midpoint())
        np.testing.assert_allclose(midpoints, 1.0, atol=0.25)


class TestNormMat:
    def test_columns_become_unit_length(self, rng):
        matrix = rng.normal(size=(6, 4))
        normalized, norms = norm_mat(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=0), 1.0, atol=1e-10)
        np.testing.assert_allclose(norms, np.linalg.norm(matrix, axis=0))

    def test_zero_column_untouched(self):
        matrix = np.zeros((3, 2))
        matrix[:, 1] = [3.0, 4.0, 0.0]
        normalized, norms = norm_mat(matrix)
        assert norms[0] == 0.0
        np.testing.assert_allclose(normalized[:, 0], 0.0)

    def test_reconstruction_identity(self, rng):
        matrix = rng.normal(size=(5, 3))
        normalized, norms = norm_mat(matrix)
        np.testing.assert_allclose(normalized * norms, matrix, atol=1e-10)

    def test_requires_2d(self):
        with pytest.raises(IntervalError):
            norm_mat(np.zeros(3))


class TestSafeInverse:
    def test_well_conditioned_square_uses_exact_inverse(self, rng):
        matrix = rng.normal(size=(4, 4)) + 4 * np.eye(4)
        np.testing.assert_allclose(safe_inverse(matrix), np.linalg.inv(matrix), atol=1e-8)

    def test_non_square_uses_pseudo_inverse(self, rng):
        matrix = rng.normal(size=(5, 3))
        pseudo = safe_inverse(matrix)
        assert pseudo.shape == (3, 5)
        np.testing.assert_allclose(matrix @ pseudo @ matrix, matrix, atol=1e-6)

    def test_singular_matrix_does_not_blow_up(self):
        matrix = np.ones((3, 3))
        pseudo = safe_inverse(matrix)
        assert np.all(np.isfinite(pseudo))

    def test_cutoff_zeroes_small_singular_values(self):
        matrix = np.diag([1.0, 1e-6])
        pseudo = safe_inverse(matrix, condition_threshold=1.0, cutoff=0.1)
        assert pseudo[1, 1] == 0.0

    def test_requires_2d(self):
        with pytest.raises(IntervalError):
            safe_inverse(np.zeros(3))


class TestDiagonalHelpers:
    def test_diag_interval_roundtrip(self):
        values = IntervalMatrix(np.array([1.0, 2.0]), np.array([1.5, 2.5]))
        matrix = diag_interval(values)
        assert matrix.shape == (2, 2)
        recovered = diagonal_of(matrix)
        assert recovered == values

    def test_diag_interval_requires_vector(self):
        with pytest.raises(IntervalError):
            diag_interval(IntervalMatrix.zeros((2, 2)))

    def test_diagonal_of_requires_square(self):
        with pytest.raises(IntervalError):
            diagonal_of(IntervalMatrix.zeros((2, 3)))


class TestIntervalDistance:
    def test_scalar_vectors_scale_of_euclidean(self):
        a = IntervalMatrix.from_scalar(np.array([0.0, 0.0]))
        b = IntervalMatrix.from_scalar(np.array([3.0, 4.0]))
        assert interval_euclidean_distance(a, b) == pytest.approx(5.0 * np.sqrt(2))

    def test_zero_distance_to_self(self, rng):
        base = rng.normal(size=4)
        vector = IntervalMatrix(base, base + rng.random(4))
        assert interval_euclidean_distance(vector, vector) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(IntervalError):
            interval_euclidean_distance(IntervalMatrix.zeros((3,)), IntervalMatrix.zeros((4,)))


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, (3, 4), elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, (3, 4), elements=st.floats(0, 2)),
           hnp.arrays(np.float64, (4, 2), elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, (4, 2), elements=st.floats(0, 2)))
    def test_matmul_soundness(self, a_lo, a_rad, b_lo, b_rad):
        a = IntervalMatrix(a_lo, a_lo + a_rad)
        b = IntervalMatrix(b_lo, b_lo + b_rad)
        product = interval_matmul(a, b)
        # The product of the midpoint members must be enclosed.
        inside = a.midpoint() @ b.midpoint()
        assert np.all(product.lower - 1e-6 <= inside)
        assert np.all(inside <= product.upper + 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, (4,), elements=st.floats(0.1, 10)),
           hnp.arrays(np.float64, (4,), elements=st.floats(0, 5)))
    def test_inverse_core_entries_between_endpoint_inverses(self, lo, rad):
        sigma = diag_interval(IntervalMatrix(lo, lo + rad))
        inverse = inverse_core(sigma)
        for i in range(4):
            assert 1.0 / (lo[i] + rad[i]) - 1e-9 <= inverse[i, i] <= 1.0 / lo[i] + 1e-9
