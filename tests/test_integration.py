"""End-to-end integration tests across the public API.

These tests chain the library the way a downstream user would: generate data,
decompose it, reconstruct, evaluate, and compare against the paper's headline
qualitative claims on small workloads.
"""

import numpy as np
import pytest

import repro
from repro import (
    AIPMF,
    IPMF,
    IntervalMatrix,
    PMF,
    harmonic_mean_accuracy,
    isvd,
    reconstruct,
)
from repro.baselines import lp_isvd
from repro.datasets import (
    make_anonymized_matrix,
    make_face_dataset,
    make_ratings_dataset,
    make_uniform_interval_matrix,
    rating_interval_matrix,
    user_category_interval_matrix,
)
from repro.datasets.synthetic import SyntheticConfig
from repro.eval import kmeans_nmi, nn_classification_f1, rating_prediction_rmse


class TestPackageSurface:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_quickstart_docstring_flow(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, size=(20, 30))
        matrix = IntervalMatrix(values - 0.05, values + 0.05)
        decomposition = isvd(matrix, rank=5, method="isvd4", target="b")
        assert harmonic_mean_accuracy(matrix, decomposition) > 0


class TestHeadlineClaims:
    """Small-scale checks of the paper's main qualitative findings."""

    def test_alignment_beats_naive_on_wide_intervals(self):
        """ISVD4-b (aligned) >= ISVD0 (naive average) on the paper's default-style data."""
        config = SyntheticConfig(shape=(30, 80), rank=12)
        scores = {"isvd0": [], "isvd4": []}
        for seed in range(3):
            matrix = make_uniform_interval_matrix(config, rng=seed)
            scores["isvd0"].append(harmonic_mean_accuracy(
                matrix, isvd(matrix, config.rank, method="isvd0", target="c")))
            scores["isvd4"].append(harmonic_mean_accuracy(
                matrix, isvd(matrix, config.rank, method="isvd4", target="b")))
        assert np.mean(scores["isvd4"]) >= np.mean(scores["isvd0"])

    def test_option_b_beats_option_a_on_uniform_data(self):
        matrix = make_uniform_interval_matrix(SyntheticConfig(shape=(30, 60), rank=10), rng=4)
        option_a = harmonic_mean_accuracy(matrix, isvd(matrix, 10, method="isvd4", target="a"))
        option_b = harmonic_mean_accuracy(matrix, isvd(matrix, 10, method="isvd4", target="b"))
        assert option_b >= option_a - 0.02

    def test_isvd_beats_lp_on_anonymized_data(self):
        matrix = make_anonymized_matrix(shape=(25, 50), profile="high", rng=5)
        isvd_score = harmonic_mean_accuracy(matrix, isvd(matrix, 10, method="isvd3", target="b"))
        lp_score = harmonic_mean_accuracy(matrix, lp_isvd(matrix, 10, target="b"))
        assert isvd_score >= lp_score

    def test_face_pipeline_classification_beats_chance(self):
        dataset = make_face_dataset(n_subjects=6, images_per_subject=6, resolution=12, seed=9)
        decomposition = isvd(dataset.intervals, rank=10, method="isvd2", target="b")
        features = decomposition.projection()
        train, test = dataset.train_test_split(0.5, rng=9)
        score = nn_classification_f1(
            features[train, :], dataset.labels[train],
            features[test, :], dataset.labels[test],
        )
        assert score > 1.0 / 6.0  # decidedly better than random guessing

    def test_face_pipeline_clustering_beats_chance(self):
        dataset = make_face_dataset(n_subjects=5, images_per_subject=6, resolution=12, seed=10)
        decomposition = isvd(dataset.intervals, rank=8, method="isvd2", target="b")
        nmi = kmeans_nmi(decomposition.projection(), dataset.labels, seed=0)
        assert nmi > 0.2

    def test_social_media_pipeline(self):
        dataset = make_ratings_dataset(preset="ciao", n_users=60, n_items=120, seed=11)
        matrix = user_category_interval_matrix(dataset)
        full_rank = dataset.n_categories
        full = harmonic_mean_accuracy(matrix, isvd(matrix, full_rank, method="isvd4", target="b"))
        low = harmonic_mean_accuracy(matrix, isvd(matrix, 2, method="isvd4", target="b"))
        assert full > low

    def test_cf_pipeline_interval_models_train(self):
        dataset = make_ratings_dataset(preset="movielens", n_users=50, n_items=100,
                                       n_categories=8, density=0.3, seed=12)
        train_mask, test_mask = dataset.holdout_split(0.25, rng=12)
        interval = rating_interval_matrix(dataset, alpha=0.5)
        train_interval = IntervalMatrix(
            np.where(train_mask, interval.lower, 0.0),
            np.where(train_mask, interval.upper, 0.0),
        )
        kwargs = dict(rank=5, epochs=20, learning_rate=0.01, batch_size=16, seed=12)
        pmf = PMF(**kwargs).fit(dataset.ratings * train_mask, mask=train_mask)
        aipmf = AIPMF(**kwargs).fit(train_interval, mask=train_mask)
        pmf_rmse = rating_prediction_rmse(pmf, dataset.ratings, test_mask)
        aipmf_rmse = rating_prediction_rmse(aipmf, dataset.ratings, test_mask)
        assert pmf_rmse < 2.0 and aipmf_rmse < 2.0


class TestRoundTripConsistency:
    @pytest.mark.parametrize("method,target", [
        ("isvd1", "a"), ("isvd2", "b"), ("isvd3", "b"), ("isvd4", "a"), ("isvd4", "c"),
    ])
    def test_decompose_reconstruct_roundtrip(self, method, target):
        matrix = make_uniform_interval_matrix(SyntheticConfig(shape=(15, 25), rank=10), rng=13)
        decomposition = isvd(matrix, 10, method=method, target=target)
        reconstruction = reconstruct(decomposition)
        assert reconstruction.shape == matrix.shape
        assert reconstruction.is_valid()
        assert harmonic_mean_accuracy(matrix, reconstruction) > 0.3
