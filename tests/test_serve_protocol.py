"""Fuzz and unit tests of the worker wire protocol.

The two properties the serving layer depends on, probed with hypothesis:

* **round-trip** — ``decode_frame(encode_frame(h, a))`` returns the same
  header and byte-identical arrays, for arbitrary JSON headers and
  arbitrary dtypes/shapes;
* **loud failure** — truncated, oversized, bit-flipped or garbage input
  raises :class:`ProtocolError` (or returns ``None`` for a clean EOF at a
  frame boundary); it never hangs, never allocates per a corrupt length
  prefix, and never returns partial data.
"""

import io
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    MAGIC,
    MAX_ARRAYS,
    MAX_HEADER_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

FUZZ_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

headers = st.dictionaries(
    st.text(max_size=20), json_scalars, max_size=8)

array_dtypes = st.sampled_from(
    ["float64", "float32", "int64", "int32", "uint8", "bool"])


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(array_dtypes))
    shape = draw(st.lists(st.integers(0, 6), min_size=0, max_size=3))
    size = int(np.prod(shape)) if shape else 1
    raw = draw(st.binary(min_size=size * dtype.itemsize,
                         max_size=size * dtype.itemsize))
    array = np.frombuffer(raw, dtype=np.uint8).copy().view(np.uint8)
    # Build from raw bytes so float arrays cover NaN/inf/subnormal payloads
    # too — the wire must round-trip *bits*, not values.
    return np.frombuffer(array.tobytes()[:size * dtype.itemsize],
                         dtype=dtype).reshape(shape).copy()


class TestRoundTrip:
    @settings(**FUZZ_SETTINGS)
    @given(header=headers, payload=st.lists(arrays(), max_size=4))
    def test_encode_decode_is_identity(self, header, payload):
        decoded_header, decoded = decode_frame(encode_frame(header, payload))
        assert decoded_header == header
        assert len(decoded) == len(payload)
        for original, roundtripped in zip(payload, decoded):
            assert original.dtype == roundtripped.dtype
            assert original.shape == roundtripped.shape
            assert original.tobytes() == roundtripped.tobytes()

    @settings(**FUZZ_SETTINGS)
    @given(header=headers, payload=st.lists(arrays(), max_size=3))
    def test_stream_round_trip_and_clean_eof(self, header, payload):
        stream = io.BytesIO()
        write_frame(stream, header, payload)
        write_frame(stream, {"second": True})
        stream.seek(0)
        first = read_frame(stream)
        assert first is not None and first[0] == header
        second = read_frame(stream)
        assert second == ({"second": True}, [])
        # Clean EOF at a frame boundary is the orderly-shutdown signal.
        assert read_frame(stream) is None

    def test_interval_endpoints_bit_exact(self):
        rng = np.random.default_rng(0)
        lower = rng.standard_normal((7, 5))
        upper = lower + rng.random((7, 5))
        _, decoded = decode_frame(encode_frame({"op": "x"}, [lower, upper]))
        assert decoded[0].tobytes() == lower.tobytes()
        assert decoded[1].tobytes() == upper.tobytes()


class TestLoudFailure:
    @settings(**FUZZ_SETTINGS)
    @given(garbage=st.binary(max_size=200))
    def test_garbage_never_hangs_or_partially_decodes(self, garbage):
        # Arbitrary bytes: either they happen to be a valid frame (only if
        # they start with the magic) or they raise ProtocolError.
        try:
            decode_frame(garbage)
        except ProtocolError:
            return
        assert garbage[:4] == MAGIC

    @settings(**FUZZ_SETTINGS)
    @given(header=headers, payload=st.lists(arrays(), max_size=3),
           cut=st.floats(0.0, 1.0))
    def test_truncation_anywhere_raises(self, header, payload, cut):
        frame = encode_frame(header, payload)
        truncated = frame[: int(cut * (len(frame) - 1))]
        with pytest.raises(ProtocolError):
            decode_frame(truncated)

    @settings(**FUZZ_SETTINGS)
    @given(header=headers, payload=st.lists(arrays(), max_size=3),
           position=st.floats(0.0, 1.0), flip=st.integers(1, 255))
    def test_stream_bit_flips_raise_or_decode_never_hang(
            self, header, payload, position, flip):
        frame = bytearray(encode_frame(header, payload))
        index = min(int(position * len(frame)), len(frame) - 1)
        frame[index] ^= flip
        stream = io.BytesIO(bytes(frame))
        try:
            read_frame(stream)
        except ProtocolError:
            pass  # loud failure is the contract; hanging would time out

    def test_mid_frame_eof_is_an_error_not_none(self):
        frame = encode_frame({"op": "ping"})
        stream = io.BytesIO(frame[:-1])
        with pytest.raises(ProtocolError, match="ended"):
            read_frame(stream)

    def test_declared_oversized_body_rejected_before_allocation(self):
        # 1 EiB declared body: must raise on the prefix, not try to read it.
        prelude = MAGIC + struct.pack(">Q", 2 ** 60)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(io.BytesIO(prelude))
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(prelude)

    def test_oversized_array_length_inside_body_rejected(self):
        body = (struct.pack(">I", 2) + b"{}" + struct.pack(">I", 1)
                + struct.pack(">Q", 2 ** 50))
        frame = MAGIC + struct.pack(">Q", len(body)) + body
        with pytest.raises(ProtocolError, match="truncated frame body"):
            decode_frame(frame)

    def test_trailing_bytes_are_an_error(self):
        frame = bytearray(encode_frame({"op": "ping"}))
        frame[4:12] = struct.pack(">Q",
                                  struct.unpack(">Q", frame[4:12])[0] + 2)
        with pytest.raises(ProtocolError, match="trailing|truncated"):
            decode_frame(bytes(frame) + b"xx")

    def test_bad_magic_raises(self):
        frame = b"XXXX" + encode_frame({})[4:]
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(frame)
        with pytest.raises(ProtocolError, match="magic"):
            read_frame(io.BytesIO(frame))

    def test_non_dict_header_rejected_both_directions(self):
        with pytest.raises(ProtocolError, match="dict"):
            encode_frame(["not", "a", "dict"])  # type: ignore[arg-type]
        body = struct.pack(">I", 2) + b"[]" + struct.pack(">I", 0)
        frame = MAGIC + struct.pack(">Q", len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(frame)

    def test_object_dtype_arrays_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="not wire-encodable"):
            encode_frame({}, [np.array([{"a": 1}], dtype=object)])

    def test_pickled_payload_refused_on_decode(self):
        # A hand-built frame smuggling a pickled (object-dtype) npy payload
        # must be rejected — allow_pickle stays False on the read side.
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer,
                                  np.array([{"a": 1}], dtype=object),
                                  allow_pickle=True)
        payload = buffer.getvalue()
        body = (struct.pack(">I", 2) + b"{}" + struct.pack(">I", 1)
                + struct.pack(">Q", len(payload)) + payload)
        frame = MAGIC + struct.pack(">Q", len(body)) + body
        with pytest.raises(ProtocolError, match="not a valid npy"):
            decode_frame(frame)

    def test_header_and_array_count_bounds_enforced(self):
        with pytest.raises(ProtocolError, match="header"):
            encode_frame({"k": "x" * (MAX_HEADER_BYTES + 1)})
        with pytest.raises(ProtocolError, match="arrays"):
            encode_frame({}, [np.zeros(1)] * (MAX_ARRAYS + 1))
        body = struct.pack(">I", 2) + b"{}" + struct.pack(">I", MAX_ARRAYS + 1)
        frame = MAGIC + struct.pack(">Q", len(body)) + body
        with pytest.raises(ProtocolError, match="arrays"):
            decode_frame(frame)

    def test_frame_body_budget_enforced_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({}, [np.zeros(1024)], max_bytes=128)


class TestModuleConstants:
    def test_magic_is_four_bytes(self):
        assert len(MAGIC) == 4
        assert protocol.MAX_FRAME_BYTES > protocol.MAX_HEADER_BYTES
