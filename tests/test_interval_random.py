"""Tests for the random interval-matrix generators (Table 1 data protocol)."""

import numpy as np
import pytest

from repro.interval.random import (
    default_rng,
    intervalize,
    random_interval_matrix,
    random_interval_vector,
    random_low_rank_matrix,
)
from repro.interval.scalar import IntervalError


class TestDefaultRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert default_rng(rng) is rng

    def test_seed_reproducibility(self):
        a = default_rng(7).random(5)
        b = default_rng(7).random(5)
        np.testing.assert_array_equal(a, b)


class TestIntervalize:
    def test_zero_density_keeps_scalars(self, rng):
        values = rng.uniform(0, 1, size=(5, 5))
        matrix = intervalize(values, interval_density=0.0, rng=rng)
        assert matrix.is_scalar()

    def test_full_density_makes_intervals(self, rng):
        values = rng.uniform(0.5, 1.0, size=(20, 20))
        matrix = intervalize(values, interval_density=1.0, interval_intensity=1.0, rng=rng)
        assert matrix.span().mean() > 0.0

    def test_zero_cells_stay_scalar(self, rng):
        values = np.zeros((4, 4))
        matrix = intervalize(values, interval_density=1.0, rng=rng)
        assert matrix.is_scalar()

    def test_intensity_bounds_span(self, rng):
        values = rng.uniform(0.5, 1.0, size=(30, 30))
        intensity = 0.3
        matrix = intervalize(values, interval_intensity=intensity, rng=rng)
        assert np.all(matrix.span() <= intensity * np.abs(values) + 1e-12)

    def test_midpoints_equal_original_values(self, rng):
        values = rng.uniform(0.5, 1.0, size=(10, 10))
        matrix = intervalize(values, rng=rng)
        np.testing.assert_allclose(matrix.midpoint(), values, atol=1e-12)

    def test_invalid_density_raises(self, rng):
        with pytest.raises(IntervalError):
            intervalize(np.ones((2, 2)), interval_density=1.5, rng=rng)

    def test_invalid_intensity_raises(self, rng):
        with pytest.raises(IntervalError):
            intervalize(np.ones((2, 2)), interval_intensity=-0.5, rng=rng)


class TestRandomIntervalMatrix:
    def test_shape(self, rng):
        assert random_interval_matrix((6, 9), rng=rng).shape == (6, 9)

    def test_matrix_density_controls_zero_fraction(self, rng):
        matrix = random_interval_matrix((60, 60), matrix_density=0.5, rng=rng)
        zero_fraction = float((matrix.midpoint() == 0.0).mean())
        assert 0.35 < zero_fraction < 0.65

    def test_value_range_respected(self, rng):
        matrix = random_interval_matrix((20, 20), value_range=(2.0, 3.0),
                                        interval_intensity=0.0, rng=rng)
        assert matrix.lower.min() >= 2.0 and matrix.upper.max() <= 3.0

    def test_invalid_matrix_density_raises(self, rng):
        with pytest.raises(IntervalError):
            random_interval_matrix((3, 3), matrix_density=-0.1, rng=rng)

    def test_invalid_value_range_raises(self, rng):
        with pytest.raises(IntervalError):
            random_interval_matrix((3, 3), value_range=(2.0, 1.0), rng=rng)

    def test_reproducible_with_seed(self):
        a = random_interval_matrix((5, 5), rng=42)
        b = random_interval_matrix((5, 5), rng=42)
        assert a == b


class TestRandomLowRank:
    def test_rank_is_respected(self, rng):
        matrix = random_low_rank_matrix((20, 30), rank=3, rng=rng)
        assert np.linalg.matrix_rank(matrix, tol=1e-8) == 3

    def test_nonnegative_option(self, rng):
        matrix = random_low_rank_matrix((10, 10), rank=2, noise=0.1, nonnegative=True, rng=rng)
        assert matrix.min() >= 0.0

    def test_invalid_rank_raises(self, rng):
        with pytest.raises(IntervalError):
            random_low_rank_matrix((5, 5), rank=10, rng=rng)


class TestRandomIntervalVector:
    def test_shape_and_validity(self, rng):
        vector = random_interval_vector(10, rng=rng)
        assert vector.shape == (10,)
        assert vector.is_valid()
