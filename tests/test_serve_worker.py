"""Tests of the multi-process shard workers: parity, restarts, no orphans.

The headline property mirrors the in-process sharding suite: the
:class:`~repro.serve.worker.WorkerShardedQueryEngine` returns **byte
identical** answers to the single :class:`~repro.serve.query.QueryEngine`
and to the in-process :class:`~repro.serve.shard.ShardedQueryEngine`, for
every query type — the process boundary and the npy wire never change a
bit.  On top of that: workers restart after being killed, generation
pinning fails loudly when a reshard races a spawn, and shutdown leaves no
worker process behind.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import registry
from repro.interval.array import IntervalMatrix
from repro.interval.sparse import SparseIntervalMatrix
from repro.serve.query import QueryEngine
from repro.serve.shard import ShardedModelStore, ShardedQueryEngine, ShardPlanner
from repro.serve.worker import (
    ShardWorkerSupervisor,
    WorkerError,
    WorkerShardedQueryEngine,
)


@pytest.fixture
def fitted(small_interval_matrix):
    decomposition = registry.get("isvd4").fit(small_interval_matrix, 4, target="b")
    return small_interval_matrix, decomposition


@pytest.fixture
def published(tmp_path, fitted):
    matrix, decomposition = fitted
    store = ShardedModelStore(tmp_path / "models")
    store.save_sharded("m", decomposition, 3, matrix=matrix)
    return store, matrix, decomposition


@pytest.fixture
def worker_engine(published):
    store, _, _ = published
    engine = WorkerShardedQueryEngine(store, "m")
    yield engine
    engine.close()


def _assert_same_result(expected, actual):
    np.testing.assert_array_equal(expected.indices, actual.indices)
    np.testing.assert_array_equal(expected.scores, actual.scores)


def _pids(engine):
    return [worker["pid"] for worker in engine.liveness()]


def _assert_all_dead(pids):
    deadline = time.monotonic() + 10.0
    remaining = set(pids)
    while remaining and time.monotonic() < deadline:
        for pid in list(remaining):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                remaining.discard(pid)
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"worker processes survived shutdown: {remaining}"


class TestParity:
    def test_every_query_type_is_byte_identical(self, published, worker_engine):
        _, matrix, decomposition = published
        single = QueryEngine(decomposition)
        threaded = ShardedQueryEngine(ShardPlanner(3).split(decomposition))
        try:
            for reference in (single, threaded):
                _assert_same_result(reference.top_k_items(matrix, 5),
                                    worker_engine.top_k_items(matrix, 5))
                _assert_same_result(reference.nearest_neighbors(matrix, 4),
                                    worker_engine.nearest_neighbors(matrix, 4))
                np.testing.assert_array_equal(
                    reference.reconstruct_rows(matrix),
                    worker_engine.reconstruct_rows(matrix))
                np.testing.assert_array_equal(
                    reference.neighbor_squared_distances(matrix),
                    worker_engine.neighbor_squared_distances(matrix))
                np.testing.assert_array_equal(
                    reference.neighbor_distances(matrix),
                    worker_engine.neighbor_distances(matrix))
                np.testing.assert_array_equal(
                    reference.scores_for_users(),
                    worker_engine.scores_for_users())
                indices = [0, 11, 7, 7, -1, 5]
                np.testing.assert_array_equal(
                    reference.scores_for_users(indices),
                    worker_engine.scores_for_users(indices))
                _assert_same_result(reference.top_k_for_users(indices, 3),
                                    worker_engine.top_k_for_users(indices, 3))
        finally:
            threaded.close()

    def test_single_row_and_batched_queries_agree(self, published, worker_engine):
        _, matrix, _ = published
        batched = worker_engine.top_k_items(matrix, 4)
        for i in range(matrix.shape[0]):
            row = matrix.row(i)
            one = worker_engine.top_k_items(
                IntervalMatrix(row.lower.reshape(1, -1),
                               row.upper.reshape(1, -1), check=False), 4)
            np.testing.assert_array_equal(batched.indices[i], one.indices[0])
            np.testing.assert_array_equal(batched.scores[i], one.scores[0])

    def test_sparse_rows_answer_through_the_shared_projector(
            self, published, worker_engine):
        _, matrix, decomposition = published
        dense_rows = matrix.midpoint()[:4].copy()
        dense_rows[:, ::3] = 0.0  # unrated items leave the pattern
        sparse = SparseIntervalMatrix.from_dense(
            IntervalMatrix.from_scalar(dense_rows))
        single = QueryEngine(decomposition)
        _assert_same_result(single.top_k_items(sparse, 5),
                            worker_engine.top_k_items(sparse, 5))
        np.testing.assert_array_equal(single.reconstruct_rows(sparse),
                                      worker_engine.reconstruct_rows(sparse))
        _assert_same_result(single.nearest_neighbors(sparse, 3),
                            worker_engine.nearest_neighbors(sparse, 3))

    def test_candidates_merge_contract(self, published, worker_engine):
        _, matrix, decomposition = published
        threaded = ShardedQueryEngine(ShardPlanner(3).split(decomposition))
        try:
            _assert_same_result(
                threaded.nearest_neighbor_candidates(matrix, 4),
                worker_engine.nearest_neighbor_candidates(matrix, 4))
        finally:
            threaded.close()

    def test_engine_metadata_matches(self, published, worker_engine):
        _, _, decomposition = published
        assert worker_engine.n_shards == 3
        assert worker_engine.n_users == int(decomposition.shape[0])
        assert worker_engine.n_items == int(decomposition.shape[1])
        assert worker_engine.generation == 1


class TestSupervision:
    def test_liveness_reports_every_worker(self, worker_engine):
        report = worker_engine.liveness()
        assert [w["shard"] for w in report] == [0, 1, 2]
        assert all(w["alive"] for w in report)
        assert all(isinstance(w["pid"], int) for w in report)
        assert all(w["restarts"] == 0 for w in report)

    def test_killed_worker_restarts_and_answers(self, published, worker_engine):
        _, matrix, decomposition = published
        expected = QueryEngine(decomposition).top_k_items(matrix, 5)
        victim = _pids(worker_engine)[1]
        os.kill(victim, signal.SIGKILL)
        # The next query restarts the worker transparently (call-path
        # restart) and still answers byte-identically.
        _assert_same_result(expected, worker_engine.top_k_items(matrix, 5))
        report = worker_engine.liveness()
        assert all(w["alive"] for w in report)
        assert report[1]["restarts"] >= 1
        assert report[1]["pid"] != victim

    def test_monitor_respawns_crashed_worker_without_traffic(
            self, published):
        store, _, _ = published
        engine = WorkerShardedQueryEngine(store, "m", monitor_interval=0.05)
        try:
            victim = _pids(engine)[2]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                report = engine.liveness()
                if report[2]["alive"] and report[2]["pid"] != victim:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("monitor did not respawn the killed worker")
        finally:
            engine.close()

    def test_concurrent_restart_race_spawns_exactly_one_worker(
            self, published):
        # Two callers and the background monitor all notice the same corpse
        # at once; the per-shard restart lock must collapse the race to
        # exactly one spawn per death — a double spawn would leak a worker
        # process outside the supervisor's bookkeeping.
        import threading

        store, _, _ = published
        engine = WorkerShardedQueryEngine(store, "m", monitor_interval=0.05,
                                          breaker_threshold=100)
        supervisor = engine.supervisor
        spawned = []
        real_spawn = supervisor._spawn

        def counting_spawn(shard):
            handle = real_spawn(shard)
            spawned.append(handle.pid)
            return handle

        supervisor._spawn = counting_spawn
        try:
            for round_index in range(6):
                victim = supervisor._handles[1]
                os.kill(victim.pid, signal.SIGKILL)
                # Wait for the kernel to finish the kill, so no caller can
                # race a still-live victim into a clean (spawn-free) reply.
                deadline = time.monotonic() + 5.0
                while victim.process.poll() is None \
                        and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert victim.process.poll() is not None

                barrier = threading.Barrier(2)
                errors = []

                def racer():
                    barrier.wait()
                    try:
                        reply, _ = supervisor.call(1, {"op": "ping"})
                        assert reply["ok"]
                    except Exception as error:  # noqa: BLE001
                        errors.append(repr(error))

                threads = [threading.Thread(target=racer) for _ in range(2)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert errors == []
                # Let the monitor take a few extra looks at the new worker:
                # it must adopt, not re-spawn.
                time.sleep(0.15)
                assert len(spawned) == round_index + 1, \
                    f"round {round_index}: spawns {spawned}"
            assert supervisor.liveness()[1]["restarts"] == 6
        finally:
            engine.close()
        _assert_all_dead(spawned)

    def test_close_leaves_no_orphan_processes(self, published):
        store, matrix, _ = published
        engine = WorkerShardedQueryEngine(store, "m")
        pids = _pids(engine)
        assert len(pids) == 3
        engine.top_k_items(matrix, 3)  # exercise before shutdown
        engine.close()
        _assert_all_dead(pids)
        # Closed engines fail loudly instead of hanging.
        with pytest.raises(WorkerError):
            engine.top_k_items(matrix, 3)
        engine.close()  # idempotent

    def test_supervisor_closed_socket_reaps_worker(self, published):
        # End-of-stream is the worker's shutdown signal: no shutdown frame
        # needed, so even an abruptly-dying supervisor leaves no orphans.
        store, _, _ = published
        manifest = store.manifest("m")
        supervisor = ShardWorkerSupervisor(store.directory, "m", manifest)
        supervisor.start()
        pids = [w["pid"] for w in supervisor.liveness()]
        for handle in supervisor._handles:
            # A dying process closes every descriptor: both the socket and
            # the buffered stream wrapping it (which holds its own ref).
            handle.stream.close()
            handle.connection.close()
        _assert_all_dead(pids)
        supervisor.close()


class TestGenerationPinning:
    def test_stale_generation_spawn_fails_loudly(self, published, fitted):
        store, _, decomposition = published
        stale_manifest = store.manifest("m")
        store.save_sharded("m", decomposition, 3)  # bump to generation 2
        supervisor = ShardWorkerSupervisor(store.directory, "m",
                                           stale_manifest)
        try:
            with pytest.raises(WorkerError, match="stale manifest generation"):
                supervisor.start()
        finally:
            supervisor.close()

    def test_engine_pinned_generation_survives_one_reshard(
            self, published, fitted):
        # The generation an engine spawned against stays on disk through
        # the *next* publish (kept-previous-generation GC), so in-flight
        # engines keep restarting workers and answering.
        store, matrix, decomposition = published
        engine = WorkerShardedQueryEngine(store, "m")
        try:
            expected = QueryEngine(decomposition).top_k_items(matrix, 5)
            store.save_sharded("m", decomposition, 2)  # generation 2
            os.kill(_pids(engine)[0], signal.SIGKILL)
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            assert engine.generation == 1
        finally:
            engine.close()


class TestServingAppWorkers:
    def test_app_serves_worker_backend_with_byte_parity(
            self, published):
        from repro.serve.http import ServingApp

        store, matrix, decomposition = published
        app = ServingApp(store, workers=True)
        try:
            engine = app.engine("m")
            assert isinstance(engine, WorkerShardedQueryEngine)
            payload = {"model": "m", "k": 3,
                       "lower": matrix.lower.tolist(),
                       "upper": matrix.upper.tolist()}
            reference = ServingApp(store)  # in-process backend
            try:
                assert app.recommend(dict(payload)) \
                    == reference.recommend(dict(payload))
                assert app.neighbors(dict(payload)) \
                    == reference.neighbors(dict(payload))
            finally:
                reference.close()
            health = app.healthz()
            assert health["status"] == "ok"
            serving = health["serving"]["m"]
            assert serving["backend"] == "workers"
            assert serving["generation"] == 1
            assert [w["alive"] for w in serving["workers"]] == [True] * 3
        finally:
            app.close()

    def test_app_close_reaps_workers_and_republish_tracks_generation(
            self, published):
        from repro.serve.http import ServingApp

        store, matrix, decomposition = published
        app = ServingApp(store, workers=True)
        engine = app.engine("m")
        pids = _pids(engine)
        # A reshard bumps the generation; the app swaps engines (new
        # worker fleet) on the next request.
        store.save_sharded("m", decomposition, 2, matrix=matrix)
        fresh = app.engine("m")
        assert fresh is not engine
        assert fresh.generation == 2 and fresh.n_shards == 2
        _assert_all_dead(pids)  # the displaced fleet was reaped
        health = app.healthz()
        assert health["serving"]["m"]["generation"] == 2
        fresh_pids = _pids(fresh)  # liveness resets once the app closes
        app.close()
        _assert_all_dead(fresh_pids)
