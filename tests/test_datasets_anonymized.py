"""Tests for the anonymized (generalization) data generator (Section 6.1.1)."""

import numpy as np
import pytest

from repro.datasets.anonymized import (
    GENERALIZATION_LEVELS,
    PRIVACY_PROFILES,
    AnonymizationProfile,
    generalization_interval,
    generalize_matrix,
    make_anonymized_matrix,
)


class TestGeneralizationLevels:
    def test_paper_levels(self):
        assert GENERALIZATION_LEVELS == {"L1": 100, "L2": 50, "L3": 20, "L4": 5}

    def test_paper_profiles_present(self):
        assert set(PRIVACY_PROFILES) == {"high", "medium", "low"}

    def test_profile_weights_sum_to_one(self):
        for profile in PRIVACY_PROFILES.values():
            assert sum(profile.weights.values()) == pytest.approx(1.0)

    def test_high_privacy_weights_match_paper(self):
        assert PRIVACY_PROFILES["high"].weights["L4"] == pytest.approx(0.40)
        assert PRIVACY_PROFILES["low"].weights["L1"] == pytest.approx(0.40)


class TestProfileValidation:
    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            AnonymizationProfile("x", {"L9": 1.0})

    def test_weights_not_summing_to_one_raises(self):
        with pytest.raises(ValueError):
            AnonymizationProfile("x", {"L1": 0.5, "L2": 0.4})

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            AnonymizationProfile("x", {"L1": 1.5, "L2": -0.5})

    def test_level_fractions_ordered(self):
        profile = PRIVACY_PROFILES["medium"]
        levels = [level for level, _ in profile.level_fractions()]
        assert levels == ["L1", "L2", "L3", "L4"]


class TestGeneralizationInterval:
    def test_value_inside_its_bucket(self):
        lo, hi = generalization_interval(0.37, buckets=10, domain=(0.0, 1.0))
        assert lo <= 0.37 <= hi
        assert hi - lo == pytest.approx(0.1)

    def test_value_at_domain_edge(self):
        lo, hi = generalization_interval(1.0, buckets=5, domain=(0.0, 1.0))
        assert lo == pytest.approx(0.8) and hi == pytest.approx(1.0)

    def test_invalid_domain_raises(self):
        with pytest.raises(ValueError):
            generalization_interval(0.5, buckets=10, domain=(1.0, 0.0))

    def test_invalid_buckets_raises(self):
        with pytest.raises(ValueError):
            generalization_interval(0.5, buckets=0, domain=(0.0, 1.0))


class TestGeneralizeMatrix:
    def test_intervals_contain_original_values(self, rng):
        values = rng.uniform(0, 1, size=(20, 20))
        matrix = generalize_matrix(values, PRIVACY_PROFILES["medium"], domain=(0, 1), rng=rng)
        assert np.all(matrix.lower <= values + 1e-12)
        assert np.all(values <= matrix.upper + 1e-12)

    def test_zero_cells_stay_scalar_zero(self, rng):
        values = rng.uniform(0, 1, size=(10, 10))
        values[0, :] = 0.0
        matrix = generalize_matrix(values, PRIVACY_PROFILES["high"], domain=(0, 1), rng=rng)
        np.testing.assert_array_equal(matrix.lower[0, :], 0.0)
        np.testing.assert_array_equal(matrix.upper[0, :], 0.0)

    def test_higher_privacy_wider_intervals(self):
        rng_values = np.random.default_rng(0)
        values = rng_values.uniform(0, 1, size=(60, 60))
        high = generalize_matrix(values, PRIVACY_PROFILES["high"], domain=(0, 1), rng=1)
        low = generalize_matrix(values, PRIVACY_PROFILES["low"], domain=(0, 1), rng=1)
        assert high.mean_span() > low.mean_span()

    def test_domain_inferred_when_missing(self, rng):
        values = rng.uniform(2.0, 3.0, size=(10, 10))
        matrix = generalize_matrix(values, PRIVACY_PROFILES["medium"], rng=rng)
        assert matrix.lower.min() >= 2.0 - 1e-9
        assert matrix.upper.max() <= 3.0 + 1e-9


class TestMakeAnonymizedMatrix:
    def test_shape_and_validity(self):
        matrix = make_anonymized_matrix(shape=(15, 25), profile="medium", rng=0)
        assert matrix.shape == (15, 25)
        assert matrix.is_valid()

    def test_accepts_profile_object(self):
        matrix = make_anonymized_matrix(shape=(5, 5), profile=PRIVACY_PROFILES["low"], rng=0)
        assert matrix.shape == (5, 5)

    def test_unknown_profile_name_raises(self):
        with pytest.raises(ValueError):
            make_anonymized_matrix(profile="ultra")

    def test_matrix_density_introduces_zeros(self):
        matrix = make_anonymized_matrix(shape=(40, 40), profile="medium",
                                        matrix_density=0.5, rng=0)
        assert float((matrix.midpoint() == 0.0).mean()) > 0.3

    def test_reproducible(self):
        a = make_anonymized_matrix(shape=(10, 10), profile="high", rng=7)
        b = make_anonymized_matrix(shape=(10, 10), profile="high", rng=7)
        assert a == b
