"""Tests for the LP eigen-decomposition competitor and interval PCA baselines."""

import numpy as np
import pytest

from repro.baselines.interval_pca import CentersPCA, MidpointRadiusPCA
from repro.baselines.lp_eig import (
    LPBaselineError,
    deif_eigenvalue_bounds,
    eigenvector_bounds,
    lp_isvd,
)
from repro.core.accuracy import harmonic_mean_accuracy
from repro.core.isvd import isvd
from repro.interval.array import IntervalMatrix
from repro.interval.linalg import interval_matmul
from repro.interval.random import random_interval_matrix


@pytest.fixture(scope="module")
def narrow_matrix():
    """Interval matrix with tiny interval widths (where LP bounds are informative)."""
    return random_interval_matrix((15, 12), interval_intensity=0.01, rng=3)


@pytest.fixture(scope="module")
def wide_matrix():
    """Interval matrix with large interval widths (where LP bounds collapse)."""
    return random_interval_matrix((15, 12), interval_intensity=1.0, rng=3)


class TestEigenvalueBounds:
    def test_bounds_enclose_center_eigenvalues(self, narrow_matrix):
        gram = interval_matmul(narrow_matrix.T, narrow_matrix)
        bounds = deif_eigenvalue_bounds(gram, 5)
        center_vals = np.linalg.eigvalsh(0.5 * (gram.midpoint() + gram.midpoint().T))[::-1][:5]
        assert np.all(bounds.lower <= center_vals + 1e-8)
        assert np.all(center_vals <= bounds.upper + 1e-8)

    def test_scalar_matrix_gives_degenerate_bounds(self, rng):
        matrix = IntervalMatrix.from_scalar(rng.normal(size=(6, 6)))
        gram = interval_matmul(matrix.T, matrix)
        bounds = deif_eigenvalue_bounds(gram, 3)
        np.testing.assert_allclose(bounds.span(), 0.0, atol=1e-8)

    def test_wider_intervals_give_wider_bounds(self, narrow_matrix, wide_matrix):
        narrow_bounds = deif_eigenvalue_bounds(
            interval_matmul(narrow_matrix.T, narrow_matrix), 3
        )
        wide_bounds = deif_eigenvalue_bounds(
            interval_matmul(wide_matrix.T, wide_matrix), 3
        )
        assert wide_bounds.mean_span() > narrow_bounds.mean_span()


class TestEigenvectorBounds:
    def test_narrow_bounds_tight_around_center(self, narrow_matrix):
        gram = interval_matmul(narrow_matrix.T, narrow_matrix)
        _, vectors, lower, upper = eigenvector_bounds(gram, 3)
        assert np.all(lower <= vectors + 1e-9)
        assert np.all(vectors <= upper + 1e-9)
        assert float((upper - lower)[:, 0].mean()) < 0.5

    def test_wide_bounds_become_vacuous(self, wide_matrix):
        gram = interval_matmul(wide_matrix.T, wide_matrix)
        _, _, lower, upper = eigenvector_bounds(gram, 5)
        # At least one trailing eigenvector bound should collapse to the unit box.
        assert np.any((lower == -1.0) & (upper == 1.0))

    def test_lp_mode_runs_on_small_matrix(self):
        matrix = random_interval_matrix((8, 6), interval_intensity=0.05, rng=4)
        gram = interval_matmul(matrix.T, matrix)
        values, vectors, lower, upper = eigenvector_bounds(gram, 2, mode="lp")
        assert lower.shape == upper.shape == (6, 2)
        assert np.all(lower <= upper + 1e-9)

    def test_unknown_mode_raises(self, narrow_matrix):
        gram = interval_matmul(narrow_matrix.T, narrow_matrix)
        with pytest.raises(LPBaselineError):
            eigenvector_bounds(gram, 2, mode="bogus")

    def test_non_square_raises(self):
        with pytest.raises(LPBaselineError):
            eigenvector_bounds(IntervalMatrix.zeros((3, 4)), 2)

    def test_bad_rank_raises(self, narrow_matrix):
        gram = interval_matmul(narrow_matrix.T, narrow_matrix)
        with pytest.raises(LPBaselineError):
            eigenvector_bounds(gram, 100)


class TestLPDecomposition:
    @pytest.mark.parametrize("target", ["a", "b", "c"])
    def test_targets_supported(self, narrow_matrix, target):
        decomposition = lp_isvd(narrow_matrix, 4, target=target)
        assert decomposition.method == "LP"
        assert decomposition.rank == 4

    def test_reasonable_on_narrow_intervals(self, narrow_matrix):
        decomposition = lp_isvd(narrow_matrix, 10, target="b")
        assert harmonic_mean_accuracy(narrow_matrix, decomposition) > 0.5

    def test_much_worse_than_isvd_on_wide_intervals(self, wide_matrix):
        """Reproduces the paper's finding: LP is not competitive for wide intervals."""
        lp_score = harmonic_mean_accuracy(wide_matrix, lp_isvd(wide_matrix, 10, target="b"))
        isvd_score = harmonic_mean_accuracy(
            wide_matrix, isvd(wide_matrix, 10, method="isvd4", target="b")
        )
        assert lp_score < isvd_score

    def test_bad_rank_raises(self, narrow_matrix):
        with pytest.raises(LPBaselineError):
            lp_isvd(narrow_matrix, 0)


class TestCentersPCA:
    def test_fit_transform_shape(self, small_interval_matrix):
        scores = CentersPCA(n_components=3).fit_transform(small_interval_matrix)
        assert scores.shape == (small_interval_matrix.shape[0], 3)

    def test_scalar_input_matches_plain_pca_projection(self, rng):
        data = rng.normal(size=(30, 8))
        matrix = IntervalMatrix.from_scalar(data)
        pca = CentersPCA(n_components=2).fit(matrix)
        scores = pca.transform(matrix)
        assert scores.is_scalar(tol=1e-9)
        # Variance captured by the first component is the largest.
        variances = scores.midpoint().var(axis=0)
        assert variances[0] >= variances[1]

    def test_explained_variance_sorted(self, small_interval_matrix):
        pca = CentersPCA(n_components=3).fit(small_interval_matrix)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_unfitted_transform_raises(self, small_interval_matrix):
        with pytest.raises(RuntimeError):
            CentersPCA(n_components=2).transform(small_interval_matrix)

    def test_invalid_components_raises(self):
        with pytest.raises(ValueError):
            CentersPCA(n_components=0)


class TestMidpointRadiusPCA:
    def test_fit_transform_shape(self, small_interval_matrix):
        scores = MidpointRadiusPCA(n_components=3).fit_transform(small_interval_matrix)
        assert scores.shape == (small_interval_matrix.shape[0], 3)

    def test_radius_information_changes_components(self, rng):
        data = rng.normal(size=(40, 6))
        scalar = IntervalMatrix.from_scalar(data)
        wide = IntervalMatrix(data, data + np.abs(rng.normal(size=data.shape)))
        pca_scalar = MidpointRadiusPCA(n_components=2).fit(scalar)
        pca_wide = MidpointRadiusPCA(n_components=2).fit(wide)
        assert not np.allclose(pca_scalar.components_, pca_wide.components_)

    def test_unfitted_transform_raises(self, small_interval_matrix):
        with pytest.raises(RuntimeError):
            MidpointRadiusPCA(n_components=2).transform(small_interval_matrix)
