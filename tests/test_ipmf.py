"""Tests for PMF, I-PMF and AI-PMF (Section 5)."""

import numpy as np
import pytest

from repro.core.ipmf import AIPMF, IPMF, PMF
from repro.datasets.ratings import rating_interval_matrix
from repro.eval.cf import rating_prediction_rmse
from repro.interval.array import IntervalMatrix


@pytest.fixture(scope="module")
def rating_setup(tiny_ratings_dataset):
    train_mask, test_mask = tiny_ratings_dataset.holdout_split(0.25, rng=1)
    interval = rating_interval_matrix(tiny_ratings_dataset, alpha=0.5)
    train_interval = IntervalMatrix(
        np.where(train_mask, interval.lower, 0.0),
        np.where(train_mask, interval.upper, 0.0),
    )
    return tiny_ratings_dataset, train_mask, test_mask, train_interval


MODEL_KWARGS = dict(learning_rate=0.01, reg_u=0.05, reg_v=0.05, epochs=25,
                    batch_size=16, seed=2)


class TestPMF:
    def test_loss_decreases(self, rating_setup):
        dataset, train_mask, _, _ = rating_setup
        model = PMF(rank=4, **MODEL_KWARGS).fit(dataset.ratings * train_mask, mask=train_mask)
        assert model.history.improved()

    def test_predict_shape(self, rating_setup):
        dataset, train_mask, _, _ = rating_setup
        model = PMF(rank=4, **MODEL_KWARGS).fit(dataset.ratings * train_mask, mask=train_mask)
        assert model.predict().shape == dataset.ratings.shape

    def test_beats_global_mean_slightly_or_matches(self, rating_setup):
        dataset, train_mask, test_mask, _ = rating_setup
        model = PMF(rank=6, **MODEL_KWARGS).fit(dataset.ratings * train_mask, mask=train_mask)
        model_rmse = rating_prediction_rmse(model, dataset.ratings, test_mask)
        mean_rating = dataset.ratings[train_mask].mean()
        baseline = np.sqrt(np.mean((dataset.ratings[test_mask] - mean_rating) ** 2))
        assert model_rmse <= baseline * 1.10

    def test_centering_stores_global_mean(self, rating_setup):
        dataset, train_mask, _, _ = rating_setup
        model = PMF(rank=3, **MODEL_KWARGS).fit(dataset.ratings * train_mask, mask=train_mask)
        assert 1.0 <= model.global_mean <= 5.0

    def test_centering_can_be_disabled(self, rating_setup):
        dataset, train_mask, _, _ = rating_setup
        model = PMF(rank=3, center=False, **MODEL_KWARGS).fit(
            dataset.ratings * train_mask, mask=train_mask
        )
        assert model.global_mean == 0.0

    def test_default_mask_is_nonzero_cells(self, rating_setup):
        dataset, train_mask, _, _ = rating_setup
        model = PMF(rank=3, **MODEL_KWARGS).fit(dataset.ratings * train_mask)
        assert model.predict().shape == dataset.ratings.shape

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            PMF(rank=2).predict()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PMF(rank=0)
        with pytest.raises(ValueError):
            PMF(rank=2, learning_rate=0.0)
        with pytest.raises(ValueError):
            PMF(rank=2, epochs=0)

    def test_mask_shape_mismatch_raises(self, rating_setup):
        dataset, _, _, _ = rating_setup
        with pytest.raises(ValueError):
            PMF(rank=2, **MODEL_KWARGS).fit(dataset.ratings, mask=np.ones((2, 2), dtype=bool))


class TestIPMF:
    def test_loss_decreases(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = IPMF(rank=4, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        assert model.history.improved()

    def test_predict_interval_is_valid(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = IPMF(rank=4, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        assert model.predict_interval().is_valid()

    def test_predict_is_midpoint_of_interval(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = IPMF(rank=4, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        np.testing.assert_allclose(model.predict(), model.predict_interval().midpoint())

    def test_shared_u_separate_v(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = IPMF(rank=4, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        assert model.u.shape[1] == 4
        assert not np.allclose(model.v_lower, model.v_upper)

    def test_ipmf_does_not_align_during_training(self):
        assert IPMF.align_during_training is False
        assert AIPMF.align_during_training is True

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            IPMF(rank=2).predict()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            IPMF(rank=0)
        with pytest.raises(ValueError):
            IPMF(rank=2, learning_rate=-1.0)


class TestAIPMF:
    def test_loss_decreases(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = AIPMF(rank=4, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        assert model.history.improved()

    def test_prediction_quality_not_worse_than_ipmf(self, rating_setup):
        """The paper's claim: alignment never hurts I-PMF's rating prediction much."""
        dataset, train_mask, test_mask, train_interval = rating_setup
        ipmf = IPMF(rank=6, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        aipmf = AIPMF(rank=6, **MODEL_KWARGS).fit(train_interval, mask=train_mask)
        ipmf_rmse = rating_prediction_rmse(ipmf, dataset.ratings, test_mask)
        aipmf_rmse = rating_prediction_rmse(aipmf, dataset.ratings, test_mask)
        assert aipmf_rmse <= ipmf_rmse * 1.15

    def test_method_names(self):
        assert IPMF.method_name == "I-PMF"
        assert AIPMF.method_name == "AI-PMF"

    def test_greedy_alignment_variant_runs(self, rating_setup):
        _, train_mask, _, train_interval = rating_setup
        model = AIPMF(rank=3, align_method="greedy", **MODEL_KWARGS).fit(
            train_interval, mask=train_mask
        )
        assert model.predict().shape == train_interval.shape
