"""Tests for the experiment report formatter and shared runner plumbing."""

import numpy as np
import pytest

from repro.experiments.report import format_series, format_table
from repro.experiments.runner import (
    DEFAULT_METHOD_GRID,
    ExperimentResult,
    MethodSpec,
    average_hmean,
    evaluate_grid,
    isvd_grid,
    rank_order,
)
from repro.interval.random import random_interval_matrix


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert text.splitlines()[0] == "T"
        assert "2.500" in text
        assert "-" in text

    def test_precision(self):
        text = format_table(["v"], [[0.123456]], precision=2)
        assert "0.12" in text

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [1000]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series("ISVD4", [1, 2], [0.5, 0.6])
        assert text.startswith("ISVD4:")
        assert "1:0.500" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult(name="demo", headers=["method", "score"])
        result.add_row("ISVD4", 0.9)
        result.add_row("ISVD0", 0.5)
        assert result.column("score") == [0.9, 0.5]

    def test_to_text_includes_notes(self):
        result = ExperimentResult(name="demo", headers=["x"])
        result.add_row(1)
        result.add_note("hello")
        assert "note: hello" in result.to_text()

    def test_as_dict_rows(self):
        result = ExperimentResult(name="demo", headers=["method", "score"])
        result.add_row("a", 1.0)
        assert result.as_dict_rows() == [{"method": "a", "score": 1.0}]


class TestMethodGrids:
    def test_default_grid_is_option_b_family(self):
        labels = [spec.label for spec in DEFAULT_METHOD_GRID]
        assert labels == ["ISVD0", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"]

    def test_isvd_grid_counts(self):
        specs = isvd_grid(targets=("a", "b", "c"), include_lp=False)
        # 4 per target + ISVD0 under c.
        assert len(specs) == 13

    def test_isvd_grid_with_lp(self):
        specs = isvd_grid(targets=("b",), include_lp=True)
        assert any(spec.method == "lp" for spec in specs)

    def test_spec_decompose_runs(self):
        matrix = random_interval_matrix((10, 12), interval_intensity=0.3, rng=0)
        spec = MethodSpec("ISVD4-b", "isvd4", "b")
        decomposition = spec.decompose(matrix, 4)
        assert decomposition.method == "ISVD4"
        assert spec.option == "b"

    def test_lp_spec_decompose_runs(self):
        matrix = random_interval_matrix((10, 12), interval_intensity=0.3, rng=0)
        decomposition = MethodSpec("LP-b", "lp", "b").decompose(matrix, 4)
        assert decomposition.method == "LP"


class TestEvaluation:
    def test_average_hmean_in_unit_interval(self):
        matrices = [random_interval_matrix((10, 12), interval_intensity=0.5, rng=s)
                    for s in range(3)]
        score = average_hmean(matrices, MethodSpec("ISVD4-b", "isvd4", "b"), 5)
        assert 0.0 <= score <= 1.0

    def test_evaluate_grid_keys(self):
        matrices = [random_interval_matrix((8, 10), interval_intensity=0.5, rng=0)]
        scores = evaluate_grid(matrices, DEFAULT_METHOD_GRID, 4)
        assert set(scores) == {spec.label for spec in DEFAULT_METHOD_GRID}

    def test_rank_clipped_to_matrix_size(self):
        matrices = [random_interval_matrix((6, 8), interval_intensity=0.5, rng=0)]
        score = average_hmean(matrices, MethodSpec("ISVD1-b", "isvd1", "b"), 100)
        assert 0.0 <= score <= 1.0

    def test_rank_order(self):
        order = rank_order({"a": 0.9, "b": 0.5, "c": 0.7})
        assert order == {"a": 1, "c": 2, "b": 3}

    def test_rank_order_breaks_ties_by_label(self):
        # Tied scores must not depend on dict insertion order.
        forward = rank_order({"b": 0.5, "a": 0.5, "c": 0.9})
        backward = rank_order({"a": 0.5, "c": 0.9, "b": 0.5})
        assert forward == backward == {"c": 1, "a": 2, "b": 3}

    def test_rank_order_all_tied_is_alphabetical(self):
        order = rank_order({"z": 1.0, "m": 1.0, "a": 1.0})
        assert order == {"a": 1, "m": 2, "z": 3}
