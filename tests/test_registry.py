"""Tests for the unified factorizer registry."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.isvd import isvd
from repro.core.result import IntervalDecomposition
from repro.interval.random import random_interval_matrix

EXPECTED_KEYS = {
    "isvd0", "isvd1", "isvd2", "isvd3", "isvd4",
    "nmf", "inmf", "pmf", "ipmf", "aipmf",
    "lp", "interval-pca",
}


@pytest.fixture(scope="module")
def matrix():
    return random_interval_matrix((12, 16), interval_intensity=0.4, rng=0)


class TestLookup:
    def test_every_algorithm_family_is_registered(self):
        assert EXPECTED_KEYS.issubset(set(registry.available()))

    def test_get_returns_info_with_matching_key(self):
        for key in EXPECTED_KEYS:
            assert registry.get(key).key == key

    def test_get_is_case_insensitive(self):
        assert registry.get("ISVD4").key == "isvd4"

    def test_unknown_key_raises_with_available_list(self):
        with pytest.raises(registry.RegistryError, match="isvd4"):
            registry.get("no-such-method")

    def test_infos_sorted_by_key(self):
        keys = [info.key for info in registry.infos()]
        assert keys == sorted(keys)


class TestCapabilities:
    def test_isvd0_is_scalar_only_target_c(self):
        info = registry.get("isvd0")
        assert info.scalar_only and info.targets == ("c",)
        assert not info.stochastic

    def test_isvd_family_supports_all_targets(self):
        for key in ("isvd1", "isvd2", "isvd3", "isvd4"):
            info = registry.get(key)
            assert info.supports_target("a")
            assert info.supports_target("b")
            assert info.supports_target("c")

    def test_nmf_family_requires_nonnegative(self):
        assert registry.get("nmf").requires_nonnegative
        assert registry.get("inmf").requires_nonnegative
        assert not registry.get("isvd4").requires_nonnegative

    def test_iterative_models_are_stochastic(self):
        for key in ("nmf", "inmf", "pmf", "ipmf", "aipmf"):
            assert registry.get(key).stochastic

    def test_cost_classes(self):
        assert registry.get("isvd4").cost == "closed-form"
        assert registry.get("aipmf").cost == "iterative"
        assert registry.get("lp").cost == "expensive"


class TestFit:
    def test_unsupported_target_raises(self, matrix):
        with pytest.raises(registry.RegistryError, match="targets"):
            registry.get("isvd0").fit(matrix, 3, target="b")
        with pytest.raises(registry.RegistryError, match="targets"):
            registry.get("inmf").fit(matrix.clip_nonnegative(), 3, target="c")

    def test_every_key_fits_on_its_default_target(self, matrix):
        for key in EXPECTED_KEYS:
            info = registry.get(key)
            data = matrix.clip_nonnegative() if info.requires_nonnegative else matrix
            decomposition = info.fit(data, 4, seed=7)
            assert isinstance(decomposition, IntervalDecomposition)
            assert decomposition.shape == matrix.shape
            assert decomposition.target.value == info.default_target

    def test_registry_matches_direct_isvd_call(self, matrix):
        via_registry = registry.get("isvd4").fit(matrix, 5, target="b")
        direct = isvd(matrix, 5, method="isvd4", target="b")
        assert np.allclose(via_registry.u, direct.u)
        assert via_registry.sigma.allclose(direct.sigma)
        assert np.allclose(via_registry.v, direct.v)

    def test_stochastic_fit_is_seed_deterministic(self, matrix):
        data = matrix.clip_nonnegative()
        first = registry.get("inmf").fit(data, 3, seed=11)
        second = registry.get("inmf").fit(data, 3, seed=11)
        other = registry.get("inmf").fit(data, 3, seed=12)
        assert np.allclose(first.u, second.u)
        assert not np.allclose(first.u, other.u)

    def test_decompose_convenience(self, matrix):
        decomposition = registry.decompose(matrix, "isvd1", 3, target="a")
        assert decomposition.method == "ISVD1"

    def test_default_target_must_be_supported(self):
        with pytest.raises(registry.RegistryError):
            registry.register(registry.FactorizerInfo(
                key="broken", display_name="X", targets=("a",), default_target="b",
                cost="closed-form", summary="invalid", _fit=lambda *a, **k: None,
            ))

    def test_projection_features_for_any_key(self, matrix):
        # Every decomposition, scalar or interval, exposes U x Sigma features.
        for key in ("isvd0", "inmf", "interval-pca"):
            info = registry.get(key)
            data = matrix.clip_nonnegative() if info.requires_nonnegative else matrix
            features = info.fit(data, 3, seed=1).projection()
            assert features.shape[0] == matrix.shape[0]
