"""Tests of the asyncio serving front end.

Three properties anchor the suite:

* **byte parity** — every response body (success *and* error paths) is
  byte-identical to the threaded server's over the same store;
* **slow-client isolation** — clients trickling their requests occupy
  coroutines, not executor threads, so healthy clients keep (almost) full
  throughput while a crowd of slow clients is connected;
* **hitless reshard** — a query loop running across a live republish sees
  zero non-200 responses and byte-identical bodies throughout, served by
  the worker-process backend.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.core import registry
from repro.interval.random import random_interval_matrix
from repro.serve.async_http import AsyncServingServer, create_async_server
from repro.serve.http import ServingApp, create_server
from repro.serve.shard import ShardedModelStore
from repro.serve.store import ModelStore


def _request(address, method, path, payload=None):
    """One HTTP exchange; returns (status, raw body bytes)."""
    connection = http.client.HTTPConnection(*address, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


@pytest.fixture(scope="module")
def model_matrix():
    matrix = random_interval_matrix((20, 12), interval_intensity=0.5, rng=42)
    decomposition = registry.get("isvd4").fit(matrix, 5, target="b")
    return matrix, decomposition


@pytest.fixture(scope="module")
def both_servers(tmp_path_factory, model_matrix):
    """The async and the threaded server over one shared store."""
    matrix, decomposition = model_matrix
    store = ModelStore(tmp_path_factory.mktemp("store"))
    store.save("m1", decomposition, matrix=matrix)

    threaded = create_server(store, port=0, max_batch=8, batch_delay=0.001)
    threaded_address = threaded.server_address[:2]
    thread = threading.Thread(target=threaded.serve_forever, daemon=True)
    thread.start()

    asynchronous = create_async_server(store, port=0, max_batch=8,
                                       batch_delay=0.001)
    async_address = asynchronous.start_background()
    try:
        yield {"matrix": matrix, "async": async_address,
               "threaded": threaded_address}
    finally:
        asynchronous.stop()
        threaded.shutdown()
        threaded.server_close()
        threaded.app.close()
        thread.join(timeout=5)


class TestByteParityWithThreadedServer:
    def _assert_both(self, servers, method, path, payload=None):
        expected = _request(servers["threaded"], method, path, payload)
        actual = _request(servers["async"], method, path, payload)
        assert actual == expected  # status AND body, byte for byte
        return actual

    def test_models_and_healthz(self, both_servers):
        self._assert_both(both_servers, "GET", "/models")
        status, body = _request(both_servers["async"], "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_recommend_and_neighbors(self, both_servers):
        matrix = both_servers["matrix"]
        payload = {"model": "m1", "k": 4,
                   "lower": matrix.lower.tolist(),
                   "upper": matrix.upper.tolist()}
        self._assert_both(both_servers, "POST", "/recommend", payload)
        self._assert_both(both_servers, "POST", "/neighbors",
                          dict(payload, k=3))

    def test_error_paths_match(self, both_servers):
        matrix = both_servers["matrix"]
        rows = {"lower": matrix.lower.tolist(),
                "upper": matrix.upper.tolist()}
        for method, path, payload in [
            ("POST", "/recommend", {"model": "absent", "k": 2, **rows}),
            ("POST", "/recommend", {"model": "m1"}),  # no rows
            ("POST", "/recommend", {"model": "m1", "k": 0, **rows}),
            ("POST", "/nowhere", {"model": "m1"}),
            ("GET", "/nowhere", None),
        ]:
            status, _ = self._assert_both(both_servers, method, path, payload)
            assert status in (400, 404)

    def test_keep_alive_carries_multiple_requests(self, both_servers):
        connection = http.client.HTTPConnection(*both_servers["async"],
                                                timeout=10)
        try:
            for _ in range(3):
                connection.request("GET", "/models")
                response = connection.getresponse()
                assert response.status == 200
                response.read()  # drain so the connection is reusable
        finally:
            connection.close()


class TestProtocolErrors:
    def _raw(self, address, data, timeout=10):
        with socket.create_connection(address, timeout=timeout) as raw:
            raw.sendall(data)
            raw.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)

    def test_malformed_request_line_is_400(self, both_servers):
        reply = self._raw(both_servers["async"], b"NONSENSE\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")

    def test_bad_json_body_is_400(self, both_servers):
        body = b"{not json"
        head = (f"POST /recommend HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        reply = self._raw(both_servers["async"], head + body)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_non_object_json_body_is_400(self, both_servers):
        body = b"[1, 2, 3]"
        head = (f"POST /recommend HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        reply = self._raw(both_servers["async"], head + body)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_invalid_content_length_is_400(self, both_servers):
        reply = self._raw(both_servers["async"],
                          b"POST /recommend HTTP/1.1\r\nHost: x\r\n"
                          b"Content-Length: banana\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")

    def test_oversized_body_is_413_before_reading_it(self, both_servers):
        reply = self._raw(both_servers["async"],
                          b"POST /recommend HTTP/1.1\r\nHost: x\r\n"
                          b"Content-Length: 99999999999\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 413")

    def test_chunked_bodies_are_rejected(self, both_servers):
        reply = self._raw(both_servers["async"],
                          b"POST /recommend HTTP/1.1\r\nHost: x\r\n"
                          b"Transfer-Encoding: chunked\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")

    def test_clean_disconnect_gets_no_error_response(self, both_servers):
        # Opening and closing without sending anything is not an error the
        # server should answer (or log a traceback for).
        with socket.create_connection(both_servers["async"], timeout=10):
            pass
        status, _ = _request(both_servers["async"], "GET", "/models")
        assert status == 200  # server is unbothered


class TestSlowClientsDoNotStarveHealthyOnes:
    N_SLOW = 8
    WINDOW = 1.5  # seconds per measurement

    def _measure_throughput(self, address, payload, n_threads=4):
        """Completed healthy requests across a fixed wall-clock window."""
        body = json.dumps(payload).encode()
        stop = time.monotonic() + self.WINDOW
        counts = [0] * n_threads

        def client(slot):
            connection = http.client.HTTPConnection(*address, timeout=30)
            try:
                while time.monotonic() < stop:
                    connection.request(
                        "POST", "/recommend", body=body,
                        headers={"Content-Type": "application/json"})
                    response = connection.getresponse()
                    assert response.status == 200
                    response.read()
                    counts[slot] += 1
            finally:
                connection.close()

        threads = [threading.Thread(target=client, args=(slot,))
                   for slot in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return sum(counts)

    def test_healthy_throughput_survives_a_crowd_of_slow_clients(
            self, tmp_path, model_matrix):
        matrix, decomposition = model_matrix
        store = ModelStore(tmp_path / "models")
        store.save("m1", decomposition, matrix=matrix)
        # A small executor: if slow clients reached it, 8 of them would
        # starve all 4 threads and healthy throughput would collapse.
        server = AsyncServingServer(
            ServingApp(store, max_batch=8, batch_delay=0.001),
            port=0, executor_threads=4)
        address = server.start_background()
        payload = {"model": "m1", "k": 3,
                   "lower": matrix.lower[:1].tolist(),
                   "upper": matrix.upper[:1].tolist()}
        slow_sockets = []
        try:
            baseline = self._measure_throughput(address, payload)
            # Slow clients: a valid request head opening, then… nothing.
            # Each holds a coroutine inside the head-read timeout forever
            # (from the test's perspective).
            for _ in range(self.N_SLOW):
                slow = socket.create_connection(address, timeout=30)
                slow.sendall(b"POST /recommend HTTP/1.1\r\nHost: x\r\n")
                slow_sockets.append(slow)
            time.sleep(0.1)  # let the server park them all
            contended = self._measure_throughput(address, payload)
        finally:
            for slow in slow_sockets:
                slow.close()
            server.stop()
        assert baseline > 0
        assert contended >= 0.8 * baseline, (
            f"slow clients cut healthy throughput to {contended}/{baseline} "
            f"requests per {self.WINDOW}s window"
        )


class TestHitlessReshard:
    def test_zero_non_200_and_identical_bodies_across_republish(
            self, tmp_path, model_matrix):
        matrix, decomposition = model_matrix
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m1", decomposition, 2, matrix=matrix)
        server = create_async_server(store, port=0, max_batch=8,
                                     batch_delay=0.001, workers=True)
        address = server.start_background()
        payload = {"model": "m1", "k": 4,
                   "lower": matrix.lower.tolist(),
                   "upper": matrix.upper.tolist()}
        failures = []
        bodies = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    status, body = _request(address, "POST", "/recommend",
                                            payload)
                except Exception as error:  # noqa: BLE001 - recorded, asserted
                    failures.append(repr(error))
                    return
                if status != 200:
                    failures.append((status, body))
                    return
                bodies.append(body)

        try:
            # Pin down the pre-reshard answer first.
            status, reference = _request(address, "POST", "/recommend",
                                         payload)
            assert status == 200
            client = threading.Thread(target=hammer)
            client.start()
            try:
                # Republish the same factors mid-traffic: generation 1 -> 2.
                # The swap must be invisible except for generation metadata.
                store.save_sharded("m1", decomposition, 2, matrix=matrix)
                # Keep querying until the app has demonstrably swapped to
                # the new generation, then a little longer.
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    status, body = _request(address, "GET", "/healthz")
                    assert status == 200
                    serving = json.loads(body)["serving"]
                    if serving.get("m1", {}).get("generation") == 2:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("app never served generation 2")
            finally:
                stop.set()
                client.join(timeout=60)
            assert not failures, f"non-200 during reshard: {failures[:3]}"
            assert bodies, "the query loop never completed a request"
            assert all(body == reference for body in bodies), \
                "a response changed bytes across the reshard"
        finally:
            server.stop()
