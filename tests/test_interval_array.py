"""Tests for IntervalMatrix: construction, indexing, elementwise ops, aggregations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.interval.array import IntervalMatrix, stack_columns
from repro.interval.scalar import Interval, IntervalError


def interval_matrix_strategy(max_side=6):
    shape = st.tuples(st.integers(1, max_side), st.integers(1, max_side))
    return shape.flatmap(
        lambda s: st.tuples(
            hnp.arrays(np.float64, s, elements=st.floats(-10, 10)),
            hnp.arrays(np.float64, s, elements=st.floats(0, 5)),
        ).map(lambda arrays: IntervalMatrix(arrays[0], arrays[0] + arrays[1]))
    )


class TestConstruction:
    def test_basic(self):
        m = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.5]])
        assert m.shape == (1, 2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(IntervalError):
            IntervalMatrix(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_misordered_raises_with_check(self):
        with pytest.raises(IntervalError):
            IntervalMatrix([[2.0]], [[1.0]])

    def test_misordered_allowed_without_check(self):
        m = IntervalMatrix([[2.0]], [[1.0]], check=False)
        assert not m.is_valid()

    def test_nan_raises(self):
        with pytest.raises(IntervalError):
            IntervalMatrix([[np.nan]], [[1.0]])

    def test_from_scalar(self):
        m = IntervalMatrix.from_scalar([[1.0, 2.0]])
        assert m.is_scalar()

    def test_from_scalar_copies(self):
        values = np.ones((2, 2))
        m = IntervalMatrix.from_scalar(values)
        values[0, 0] = 5.0
        assert m.lower[0, 0] == 1.0

    def test_from_center(self):
        m = IntervalMatrix.from_center([[1.0]], [[0.5]])
        assert m.lower[0, 0] == 0.5 and m.upper[0, 0] == 1.5

    def test_from_center_negative_radius_raises(self):
        with pytest.raises(IntervalError):
            IntervalMatrix.from_center([[1.0]], [[-0.5]])

    def test_from_intervals(self):
        m = IntervalMatrix.from_intervals([[Interval(1, 2), Interval(3, 3)]])
        assert m.shape == (1, 2)
        assert m.upper[0, 0] == 2.0

    def test_from_intervals_ragged_raises(self):
        with pytest.raises(IntervalError):
            IntervalMatrix.from_intervals([[Interval(1, 2)], [Interval(1, 2), Interval(1, 2)]])

    def test_zeros(self):
        m = IntervalMatrix.zeros((3, 4))
        assert m.shape == (3, 4) and m.is_scalar()

    def test_coerce_passthrough(self, small_interval_matrix):
        assert IntervalMatrix.coerce(small_interval_matrix) is small_interval_matrix

    def test_coerce_ndarray(self):
        m = IntervalMatrix.coerce(np.ones((2, 2)))
        assert m.is_scalar()


class TestProperties:
    def test_shape_ndim_size(self, small_interval_matrix):
        assert small_interval_matrix.ndim == 2
        assert small_interval_matrix.size == 12 * 18

    def test_transpose(self, small_interval_matrix):
        assert small_interval_matrix.T.shape == (18, 12)

    def test_transpose_roundtrip(self, small_interval_matrix):
        assert small_interval_matrix.T.T == small_interval_matrix

    def test_midpoint_and_span(self):
        m = IntervalMatrix([[1.0]], [[3.0]])
        assert m.midpoint()[0, 0] == 2.0
        assert m.span()[0, 0] == 2.0
        assert m.radius()[0, 0] == 1.0

    def test_copy_is_independent(self, small_interval_matrix):
        copy = small_interval_matrix.copy()
        copy.lower[0, 0] = -100.0
        assert small_interval_matrix.lower[0, 0] != -100.0

    def test_is_scalar_with_tolerance(self):
        m = IntervalMatrix([[1.0]], [[1.0 + 1e-12]])
        assert not m.is_scalar()
        assert m.is_scalar(tol=1e-9)

    def test_misordered_mask(self):
        m = IntervalMatrix([[2.0, 1.0]], [[1.0, 2.0]], check=False)
        assert m.misordered_mask().tolist() == [[True, False]]

    def test_max_and_mean_span(self):
        m = IntervalMatrix([[0.0, 1.0]], [[1.0, 1.0]])
        assert m.max_span() == 1.0
        assert m.mean_span() == 0.5

    def test_repr_contains_shape(self, small_interval_matrix):
        assert "shape=(12, 18)" in repr(small_interval_matrix)


class TestIndexing:
    def test_scalar_index_returns_interval(self):
        m = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.5]])
        assert m[0, 1] == Interval(2.0, 2.5)

    def test_slice_returns_matrix(self, small_interval_matrix):
        block = small_interval_matrix[2:5, 3:7]
        assert isinstance(block, IntervalMatrix)
        assert block.shape == (3, 4)

    def test_setitem_interval(self):
        m = IntervalMatrix.zeros((2, 2))
        m[0, 0] = Interval(1, 2)
        assert m[0, 0] == Interval(1, 2)

    def test_setitem_matrix(self):
        m = IntervalMatrix.zeros((2, 2))
        m[0:1, :] = IntervalMatrix([[1.0, 2.0]], [[3.0, 4.0]])
        assert m.upper[0, 1] == 4.0

    def test_setitem_scalar_array(self):
        m = IntervalMatrix.zeros((2, 2))
        m[1, :] = np.array([5.0, 6.0])
        assert m[1, 1] == Interval(6.0, 6.0)

    def test_row_and_column(self, small_interval_matrix):
        assert small_interval_matrix.row(0).shape == (18,)
        assert small_interval_matrix.column(0).shape == (12,)


class TestElementwiseOps:
    def test_addition(self):
        a = IntervalMatrix([[1.0]], [[2.0]])
        b = IntervalMatrix([[3.0]], [[5.0]])
        assert (a + b)[0, 0] == Interval(4, 7)

    def test_subtraction(self):
        a = IntervalMatrix([[1.0]], [[2.0]])
        b = IntervalMatrix([[3.0]], [[5.0]])
        assert (a - b)[0, 0] == Interval(-4, -1)

    def test_hadamard_product_matches_scalar_rule(self):
        a = IntervalMatrix([[-2.0]], [[3.0]])
        b = IntervalMatrix([[-1.0]], [[4.0]])
        assert (a * b)[0, 0] == Interval(-2, 3) * Interval(-1, 4)

    def test_negation(self):
        m = IntervalMatrix([[1.0]], [[2.0]])
        assert (-m)[0, 0] == Interval(-2, -1)

    def test_scale_negative(self):
        m = IntervalMatrix([[1.0]], [[2.0]])
        assert m.scale(-1.0)[0, 0] == Interval(-2, -1)

    def test_add_scalar_ndarray(self):
        m = IntervalMatrix([[1.0]], [[2.0]])
        assert (m + np.array([[1.0]]))[0, 0] == Interval(2, 3)

    def test_radd_and_rsub(self):
        m = IntervalMatrix([[1.0]], [[2.0]])
        assert (np.array([[1.0]]) + m)[0, 0] == Interval(2, 3)
        assert (np.array([[1.0]]) - m)[0, 0] == Interval(-1, 0)

    def test_square_nonnegative(self):
        m = IntervalMatrix([[-2.0, 1.0]], [[1.0, 3.0]])
        squared = m.square()
        assert squared[0, 0] == Interval(0, 4)
        assert squared[0, 1] == Interval(1, 9)

    def test_clip_nonnegative(self):
        m = IntervalMatrix([[-1.0]], [[2.0]])
        clipped = m.clip_nonnegative()
        assert clipped[0, 0] == Interval(0, 2)

    def test_sorted_endpoints(self):
        m = IntervalMatrix([[2.0]], [[1.0]], check=False)
        assert m.sorted_endpoints()[0, 0] == Interval(1, 2)


class TestAggregations:
    def test_frobenius_norm_scalar_case(self):
        m = IntervalMatrix.from_scalar([[3.0, 4.0]])
        norm = m.frobenius_norm()
        assert norm.lo == pytest.approx(5.0)
        assert norm.hi == pytest.approx(5.0)

    def test_frobenius_norm_interval_case(self):
        m = IntervalMatrix([[0.0]], [[2.0]])
        assert m.frobenius_norm() == Interval(0.0, 2.0)

    def test_sum(self):
        m = IntervalMatrix([[1.0, 2.0]], [[2.0, 3.0]])
        assert m.sum() == Interval(3.0, 5.0)


class TestSetOperations:
    def test_contains(self):
        outer = IntervalMatrix([[0.0]], [[3.0]])
        inner = IntervalMatrix([[1.0]], [[2.0]])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_hull(self):
        a = IntervalMatrix([[0.0]], [[1.0]])
        b = IntervalMatrix([[2.0]], [[3.0]])
        assert a.hull(b)[0, 0] == Interval(0, 3)

    def test_allclose_and_eq(self, small_interval_matrix):
        other = small_interval_matrix.copy()
        assert small_interval_matrix.allclose(other)
        assert small_interval_matrix == other

    def test_eq_against_non_matrix(self, small_interval_matrix):
        assert (small_interval_matrix == 3) is False or (small_interval_matrix == 3) is NotImplemented

    def test_unhashable(self, small_interval_matrix):
        with pytest.raises(TypeError):
            hash(small_interval_matrix)

    def test_to_intervals_roundtrip(self):
        m = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.5]])
        entries = m.to_intervals()
        rebuilt = IntervalMatrix.from_intervals(entries)
        assert rebuilt == m

    def test_to_intervals_requires_2d(self):
        vector = IntervalMatrix(np.zeros(3), np.ones(3))
        with pytest.raises(IntervalError):
            vector.to_intervals()


class TestStackColumns:
    def test_stack(self):
        columns = [IntervalMatrix(np.zeros(3), np.ones(3)) for _ in range(4)]
        stacked = stack_columns(columns)
        assert stacked.shape == (3, 4)

    def test_stack_empty_raises(self):
        with pytest.raises(IntervalError):
            stack_columns([])


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(interval_matrix_strategy())
    def test_midpoint_between_bounds(self, m):
        assert np.all(m.lower - 1e-9 <= m.midpoint())
        assert np.all(m.midpoint() <= m.upper + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(interval_matrix_strategy())
    def test_span_nonnegative(self, m):
        assert np.all(m.span() >= 0)

    @settings(max_examples=30, deadline=None)
    @given(interval_matrix_strategy())
    def test_addition_preserves_validity(self, m):
        assert (m + m).is_valid()

    @settings(max_examples=30, deadline=None)
    @given(interval_matrix_strategy())
    def test_hull_contains_operands(self, m):
        shifted = m + IntervalMatrix.from_scalar(np.ones(m.shape))
        hull = m.hull(shifted)
        assert hull.contains(m) and hull.contains(shifted)

    @settings(max_examples=30, deadline=None)
    @given(interval_matrix_strategy())
    def test_hadamard_encloses_midpoint_product(self, m):
        product = m * m
        midpoint_product = m.midpoint() * m.midpoint()
        assert np.all(product.lower - 1e-6 <= midpoint_product)
        assert np.all(midpoint_product <= product.upper + 1e-6)


class TestScalarAccessOrdering:
    """Scalar indexing: endpoint swapping is reserved for unchecked matrices."""

    def test_unchecked_matrix_normalizes_misordered_entry(self):
        m = IntervalMatrix([[2.0]], [[1.0]], check=False)
        assert m[0, 0] == Interval(1.0, 2.0)

    def test_checked_matrix_raises_after_invalid_mutation(self):
        m = IntervalMatrix([[1.0]], [[2.0]])
        m.lower[0, 0] = 5.0  # direct endpoint mutation breaks the invariant
        with pytest.raises(IntervalError, match="mutated"):
            m[0, 0]

    def test_checked_matrix_valid_entries_unaffected(self):
        m = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.5]])
        assert m[0, 1] == Interval(2.0, 2.5)

    def test_flag_propagates_through_views(self):
        unchecked = IntervalMatrix([[2.0, 0.0]], [[1.0, 1.0]], check=False)
        assert unchecked.T[0, 0] == Interval(1.0, 2.0)
        assert unchecked.copy()[0, 0] == Interval(1.0, 2.0)
        assert unchecked.row(0)[0] == Interval(1.0, 2.0)
        checked = IntervalMatrix([[1.0]], [[2.0]])
        checked.lower[0, 0] = 5.0
        # The transpose of a validated matrix stays validated, so the
        # mutation-detection of scalar access applies through it too.
        with pytest.raises(IntervalError):
            checked.T[0, 0]
